//! The broker's live instruments (see [`crate::config::MetricsConfig`]).
//!
//! All instruments live in one [`MetricsRegistry`] owned by the broker and
//! exposed through `Broker::metrics()`. Histogram samples are nanoseconds.
//!
//! | name | kind | meaning |
//! |---|---|---|
//! | `broker.waiting_ns` | histogram | publish-enqueue → dispatch start (the paper's `W`) |
//! | `broker.service_ns` | histogram | dispatch start → fan-out complete (the paper's `B`) |
//! | `broker.sojourn_ns` | histogram | publish-enqueue → fan-out complete (`W + B`) |
//! | `broker.backlog` | histogram | publish-queue depth sampled at each dispatch (PASTA: its window mean estimates the time-average queue length `L`) |
//! | `broker.queue_depth` | gauge | latest publish-queue depth |
//! | `broker.in_flight` | gauge | messages popped but not yet fanned out (0/1 per dispatcher) |
//! | `broker.waiting_ns{shard="i"}` | histogram | shard `i`'s waiting times (sharded dispatch only) |
//! | `broker.service_ns{shard="i"}` | histogram | shard `i`'s service times (sharded dispatch only) |
//! | `broker.sojourn_ns{shard="i"}` | histogram | shard `i`'s sojourn times (sharded dispatch only) |
//! | `broker.backlog{shard="i"}` | histogram | shard `i`'s queue depth at dispatch (sharded dispatch only) |
//! | `broker.queue_depth{shard="i"}` | gauge | shard `i`'s latest queue depth (sharded dispatch only) |
//! | `broker.in_flight{shard="i"}` | gauge | shard `i`'s in-flight message (sharded dispatch only) |
//! | `broker.stage.rcv_ns` | histogram | receive stage (`t_rcv`), sampled |
//! | `broker.stage.journal_ns` | histogram | write-ahead append (`t_store`), sampled |
//! | `broker.stage.filter_ns` | histogram | filter-scan stage (`n_fltr · t_fltr`), sampled |
//! | `broker.stage.fanout_ns` | histogram | copy/transmit stage (`R · t_tx`), sampled |
//! | `journal.append_ns` | histogram | every journal append (always on, from `rjms-journal`) |
//! | `journal.fsync_ns` | histogram | every explicit fsync (always on, from `rjms-journal`) |

use rjms_metrics::clock;
use rjms_metrics::{labeled, Gauge, Histogram, LocalHistogram, MetricsRegistry};
use std::sync::Arc;
use std::time::Instant;

/// Dispatcher-local staging flushed into the shared histograms every this
/// many samples (and whenever the dispatcher goes idle), bounding snapshot
/// staleness under load to a few milliseconds.
pub(crate) const FLUSH_EVERY: u64 = 1024;

/// The dispatcher's instruments plus the registry they are published in.
pub(crate) struct BrokerMetrics {
    pub(crate) registry: MetricsRegistry,
    pub(crate) waiting: Arc<Histogram>,
    pub(crate) service: Arc<Histogram>,
    pub(crate) sojourn: Arc<Histogram>,
    pub(crate) backlog: Arc<Histogram>,
    pub(crate) stage_rcv: Arc<Histogram>,
    pub(crate) stage_journal: Arc<Histogram>,
    pub(crate) stage_filter: Arc<Histogram>,
    pub(crate) stage_fanout: Arc<Histogram>,
    /// Record the stage decomposition on every Nth message.
    pub(crate) stage_sample_every: u64,
    /// Tick-to-nanosecond scale of the instrumentation clock, resolved at
    /// construction so per-message conversions are a single multiply.
    pub(crate) ns_per_tick: f64,
}

impl BrokerMetrics {
    pub(crate) fn new(stage_sample_every: u64) -> Self {
        let registry = MetricsRegistry::new();
        Self {
            waiting: registry.histogram("broker.waiting_ns"),
            service: registry.histogram("broker.service_ns"),
            sojourn: registry.histogram("broker.sojourn_ns"),
            backlog: registry.histogram("broker.backlog"),
            stage_rcv: registry.histogram("broker.stage.rcv_ns"),
            stage_journal: registry.histogram("broker.stage.journal_ns"),
            stage_filter: registry.histogram("broker.stage.filter_ns"),
            stage_fanout: registry.histogram("broker.stage.fanout_ns"),
            stage_sample_every,
            ns_per_tick: clock::ns_per_tick(),
            registry,
        }
    }
}

/// One shard's labeled histogram triple plus its local staging. Only
/// allocated for sharded dispatch (`shards > 1`): the single-dispatcher
/// broker publishes no shard-labeled series, keeping its metric surface
/// byte-identical to the pre-shard layout.
struct ShardScratch {
    waiting: (LocalHistogram, Arc<Histogram>),
    service: (LocalHistogram, Arc<Histogram>),
    sojourn: (LocalHistogram, Arc<Histogram>),
    backlog: (LocalHistogram, Arc<Histogram>),
}

/// Single-writer staging for the per-message histograms: the dispatcher
/// records into plain local buckets and flushes into the shared atomic
/// instruments every [`FLUSH_EVERY`] samples and on idle, keeping the
/// per-message cost to non-atomic L1 increments.
pub(crate) struct DispatcherScratch {
    waiting: LocalHistogram,
    service: LocalHistogram,
    sojourn: LocalHistogram,
    /// Publish-queue depth at each dispatch. By PASTA, the depth an
    /// arriving (Poisson) message observes is distributed as the
    /// time-average queue length, so this histogram's window mean is a
    /// direct estimate of `L` for the Little's-law self-check.
    backlog: LocalHistogram,
    /// Latest queue depth, for at-a-glance gauges and history rings.
    depth_gauge: Arc<Gauge>,
    /// 1 while a message is being fanned out, 0 when the dispatcher idles.
    in_flight_gauge: Arc<Gauge>,
    /// Shard-labeled twins of the series, staged alongside the aggregates
    /// so each shard's own distribution stays observable.
    shard: Option<ShardScratch>,
}

impl DispatcherScratch {
    pub(crate) fn new(metrics: &BrokerMetrics) -> Self {
        Self {
            waiting: LocalHistogram::new(),
            service: LocalHistogram::new(),
            sojourn: LocalHistogram::new(),
            backlog: LocalHistogram::new(),
            depth_gauge: metrics.registry.gauge("broker.queue_depth"),
            in_flight_gauge: metrics.registry.gauge("broker.in_flight"),
            shard: None,
        }
    }

    /// Staging that additionally feeds shard `index`'s labeled series
    /// (`broker.waiting_ns{shard="i"}`, …) in the broker registry. The
    /// gauges are shard-labeled instead of aggregate — each dispatcher is
    /// the single writer of its own gauge pair, so shards never stomp one
    /// another's readings.
    pub(crate) fn for_shard(metrics: &BrokerMetrics, index: usize) -> Self {
        let label = index.to_string();
        let hist = |base: &str| metrics.registry.histogram(&labeled(base, &[("shard", &label)]));
        Self {
            depth_gauge: metrics
                .registry
                .gauge(&labeled("broker.queue_depth", &[("shard", &label)])),
            in_flight_gauge: metrics
                .registry
                .gauge(&labeled("broker.in_flight", &[("shard", &label)])),
            shard: Some(ShardScratch {
                waiting: (LocalHistogram::new(), hist("broker.waiting_ns")),
                service: (LocalHistogram::new(), hist("broker.service_ns")),
                sojourn: (LocalHistogram::new(), hist("broker.sojourn_ns")),
                backlog: (LocalHistogram::new(), hist("broker.backlog")),
            }),
            ..Self::new(metrics)
        }
    }

    /// Stages one message's waiting/service/sojourn sample.
    fn record(&mut self, waiting: u64, service: u64, sojourn: u64) {
        self.waiting.record(waiting);
        self.service.record(service);
        self.sojourn.record(sojourn);
        if let Some(shard) = &mut self.shard {
            shard.waiting.0.record(waiting);
            shard.service.0.record(service);
            shard.sojourn.0.record(sojourn);
        }
    }

    /// Stages the publish-queue depth observed when a message was popped
    /// (excluding the popped message itself, so it estimates the *waiting*
    /// line `L_q`) and marks the dispatcher busy. The gauge store is a
    /// single-writer relaxed write to a line nothing else touches.
    pub(crate) fn record_backlog(&mut self, depth: u64) {
        self.backlog.record(depth);
        self.depth_gauge.set(depth as i64);
        self.in_flight_gauge.set(1);
        if let Some(shard) = &mut self.shard {
            shard.backlog.0.record(depth);
        }
    }

    /// Marks the dispatcher idle: queue drained, nothing in flight.
    pub(crate) fn mark_idle(&self) {
        self.depth_gauge.set(0);
        self.in_flight_gauge.set(0);
    }

    /// Samples staged since the last flush.
    pub(crate) fn pending(&self) -> u64 {
        self.waiting.pending()
    }

    /// Publishes every staged sample into the shared instruments.
    pub(crate) fn flush(&mut self, metrics: &BrokerMetrics) {
        self.waiting.flush_into(&metrics.waiting);
        self.service.flush_into(&metrics.service);
        self.sojourn.flush_into(&metrics.sojourn);
        self.backlog.flush_into(&metrics.backlog);
        if let Some(shard) = &mut self.shard {
            shard.waiting.0.flush_into(&shard.waiting.1);
            shard.service.0.flush_into(&shard.service.1);
            shard.sojourn.0.flush_into(&shard.sojourn.1);
            shard.backlog.0.flush_into(&shard.backlog.1);
        }
    }
}

/// Dispatcher-local timing state for one message: created when the message
/// is popped, consumed when its fan-out completes. Timestamps are
/// instrumentation-clock ticks ([`clock::now`]); stage timing is only
/// armed on sampled messages, so the per-message cost on unsampled ones is
/// at most one tick read plus local histogram records.
pub(crate) struct DispatchTimer {
    dispatch_start: u64,
    /// Whether this message records the per-stage decomposition.
    pub(crate) sample_stages: bool,
    /// Accumulated filter-scan time on sampled messages.
    pub(crate) filter_elapsed: u64,
    /// Accumulated copy/transmit time on sampled messages.
    pub(crate) fanout_elapsed: u64,
}

impl DispatchTimer {
    /// Starts the timer, reusing `reuse` as the dispatch start when given.
    ///
    /// The dispatcher passes the previous message's fan-out end here when
    /// the next message was already queued: the two moments coincide up to
    /// loop bookkeeping, and reusing the reading halves the per-message
    /// clock cost of the metrics layer.
    pub(crate) fn start_at(reuse: Option<u64>, sample_stages: bool) -> Self {
        Self {
            dispatch_start: reuse.unwrap_or_else(clock::now),
            sample_stages,
            filter_elapsed: 0,
            fanout_elapsed: 0,
        }
    }

    pub(crate) fn dispatch_start(&self) -> u64 {
        self.dispatch_start
    }

    /// Finishes the message: stages waiting/service/sojourn into `scratch`
    /// and, on sampled messages, records the accumulated stage times
    /// directly (they are rare enough that atomics are fine). Returns the
    /// fan-out end reading so the dispatcher can reuse it as the next
    /// message's start.
    pub(crate) fn finish(
        self,
        metrics: &BrokerMetrics,
        scratch: &mut DispatcherScratch,
        enqueued_at: u64,
    ) -> u64 {
        let end = clock::now();
        // Saturating differences: cross-core tick skew must clamp to zero
        // rather than wrap into a 500-year sample.
        let to_ns = |ticks: u64| (ticks as f64 * metrics.ns_per_tick) as u64;
        let waiting = to_ns(self.dispatch_start.saturating_sub(enqueued_at));
        let service = to_ns(end.saturating_sub(self.dispatch_start));
        scratch.record(waiting, service, waiting.saturating_add(service));
        if self.sample_stages {
            metrics.stage_filter.record(self.filter_elapsed);
            metrics.stage_fanout.record(self.fanout_elapsed);
        }
        end
    }
}

/// Times one stage into `elapsed_ns` when `armed`; free otherwise.
#[inline]
pub(crate) fn time_stage<T>(armed: bool, elapsed_ns: &mut u64, work: impl FnOnce() -> T) -> T {
    if armed {
        let start = Instant::now();
        let out = work();
        *elapsed_ns += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        out
    } else {
        work()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn timer_records_waiting_service_sojourn() {
        let m = BrokerMetrics::new(1);
        let enqueued = clock::now();
        std::thread::sleep(Duration::from_millis(2));
        let timer = DispatchTimer::start_at(None, true);
        std::thread::sleep(Duration::from_millis(2));
        let mut scratch = DispatcherScratch::new(&m);
        timer.finish(&m, &mut scratch, enqueued);
        assert_eq!(scratch.pending(), 1);
        scratch.flush(&m);
        let snap = m.registry.snapshot();
        let waiting = snap.histogram("broker.waiting_ns").unwrap();
        let service = snap.histogram("broker.service_ns").unwrap();
        let sojourn = snap.histogram("broker.sojourn_ns").unwrap();
        assert!(waiting.max >= 2_000_000);
        assert!(service.max >= 2_000_000);
        assert!(sojourn.max >= waiting.max.max(service.max));
    }

    #[test]
    fn shard_scratch_feeds_labeled_twins() {
        let m = BrokerMetrics::new(1);
        let mut scratch = DispatcherScratch::for_shard(&m, 2);
        scratch.record(10, 20, 30);
        scratch.flush(&m);
        let snap = m.registry.snapshot();
        // Both the aggregate and the shard-labeled series carry the sample.
        assert_eq!(snap.histogram("broker.waiting_ns").unwrap().count, 1);
        assert_eq!(snap.histogram("broker.waiting_ns{shard=\"2\"}").unwrap().count, 1);
        assert_eq!(snap.histogram("broker.sojourn_ns{shard=\"2\"}").unwrap().max, 30);
        // Plain staging publishes no shard series.
        assert!(snap.histogram("broker.waiting_ns{shard=\"0\"}").is_none());
    }

    #[test]
    fn backlog_staging_feeds_histogram_and_gauges() {
        let m = BrokerMetrics::new(1);
        let mut scratch = DispatcherScratch::new(&m);
        scratch.record_backlog(3);
        scratch.record_backlog(5);
        assert_eq!(m.registry.gauge("broker.queue_depth").get(), 5);
        assert_eq!(m.registry.gauge("broker.in_flight").get(), 1);
        scratch.mark_idle();
        assert_eq!(m.registry.gauge("broker.queue_depth").get(), 0);
        assert_eq!(m.registry.gauge("broker.in_flight").get(), 0);
        scratch.flush(&m);
        let snap = m.registry.snapshot();
        let backlog = snap.histogram("broker.backlog").unwrap();
        assert_eq!(backlog.count, 2);
        assert_eq!(backlog.max, 5);
    }

    #[test]
    fn sharded_backlog_uses_labeled_series_and_gauges() {
        let m = BrokerMetrics::new(1);
        let mut scratch = DispatcherScratch::for_shard(&m, 1);
        scratch.record_backlog(7);
        scratch.flush(&m);
        let snap = m.registry.snapshot();
        // Aggregate and labeled histograms both carry the sample; the
        // gauges are labeled only (single writer per shard).
        assert_eq!(snap.histogram("broker.backlog").unwrap().count, 1);
        assert_eq!(snap.histogram("broker.backlog{shard=\"1\"}").unwrap().count, 1);
        assert_eq!(m.registry.gauge("broker.queue_depth{shard=\"1\"}").get(), 7);
        assert_eq!(m.registry.gauge("broker.in_flight{shard=\"1\"}").get(), 1);
    }

    #[test]
    fn stage_timing_only_when_armed() {
        let mut elapsed = 0u64;
        let out = time_stage(false, &mut elapsed, || 7);
        assert_eq!((out, elapsed), (7, 0));
        let out = time_stage(true, &mut elapsed, || {
            std::thread::sleep(Duration::from_millis(1));
            9
        });
        assert_eq!(out, 9);
        assert!(elapsed >= 1_000_000);
    }
}
