//! Broker error types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors returned by broker operations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BrokerError {
    /// The named topic does not exist. Topics must be created with
    /// [`crate::Broker::create_topic`] before use (JMS configures topics
    /// before system start).
    TopicNotFound {
        /// The missing topic name.
        topic: String,
    },
    /// The topic already exists.
    TopicExists {
        /// The duplicate topic name.
        topic: String,
    },
    /// The topic name is empty or contains control characters.
    InvalidTopicName {
        /// The rejected name.
        topic: String,
    },
    /// The broker has been shut down.
    Stopped,
    /// A durable subscription with this name is already connected.
    DurableNameInUse {
        /// The topic the durable subscription lives on.
        topic: String,
        /// The durable subscription name.
        name: String,
    },
    /// No durable subscription with this name exists on the topic.
    DurableNotFound {
        /// The topic searched.
        topic: String,
        /// The missing durable subscription name.
        name: String,
    },
    /// A durable subscription cannot be removed while it is connected.
    DurableStillConnected {
        /// The topic the durable subscription lives on.
        topic: String,
        /// The durable subscription name.
        name: String,
    },
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TopicNotFound { topic } => write!(f, "topic `{topic}` not found"),
            Self::TopicExists { topic } => write!(f, "topic `{topic}` already exists"),
            Self::InvalidTopicName { topic } => write!(f, "invalid topic name `{topic}`"),
            Self::Stopped => f.write_str("broker has been stopped"),
            Self::DurableNameInUse { topic, name } => {
                write!(f, "durable subscription `{name}` on `{topic}` is already connected")
            }
            Self::DurableNotFound { topic, name } => {
                write!(f, "durable subscription `{name}` not found on `{topic}`")
            }
            Self::DurableStillConnected { topic, name } => {
                write!(f, "durable subscription `{name}` on `{topic}` is still connected")
            }
        }
    }
}

impl std::error::Error for BrokerError {}

/// Error returned by a blocking receive when the broker shut down and the
/// queue is drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReceiveError;

impl fmt::Display for ReceiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("subscription closed: broker stopped and queue drained")
    }
}

impl std::error::Error for ReceiveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            BrokerError::TopicNotFound { topic: "t".into() }.to_string(),
            "topic `t` not found"
        );
        assert_eq!(BrokerError::Stopped.to_string(), "broker has been stopped");
        assert!(ReceiveError.to_string().contains("closed"));
    }
}
