//! Broker error types.
//!
//! Broker operations fail with the workspace-wide [`rjms_core::Error`]
//! (re-exported here as [`enum@Error`]); the per-crate `BrokerError` and
//! `ReceiveError` aliases deprecated in 0.2.0 have been removed. The
//! one broker-specific type is [`TryPublishError`], which hands the
//! rejected [`Message`] back to the caller on push-back.

use crate::message::Message;
use std::fmt;

pub use rjms_core::Error;

/// Error of a non-blocking publish: either the bounded publish queue is
/// full — push-back, with the message handed back untouched — or the
/// broker has stopped.
///
/// Replaces the old `Result<(), Option<Message>>` signature, which
/// overloaded `Option` to mean "full (here is your message)" vs "stopped".
#[derive(Debug)]
pub enum TryPublishError {
    /// The publish queue is full; the message comes back to the caller so
    /// it can retry or shed load (the paper's publisher-side queueing).
    Full(Message),
    /// Admission control denied the publish (flow control is enabled and
    /// the broker is over its model-derived arrival budget). The message
    /// comes back untouched together with the typed reason —
    /// [`Error::PublishShed`] or [`Error::PublishDeferred`].
    Denied {
        /// The rejected message, handed back untouched.
        message: Message,
        /// Why admission was denied.
        reason: Error,
    },
    /// The broker has been shut down.
    Stopped,
}

impl TryPublishError {
    /// Consumes the error, returning the rejected message if the queue was
    /// full or admission was denied.
    pub fn into_message(self) -> Option<Message> {
        match self {
            Self::Full(message) | Self::Denied { message, .. } => Some(message),
            Self::Stopped => None,
        }
    }
}

impl fmt::Display for TryPublishError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Full(_) => f.write_str("publish queue is full"),
            Self::Denied { reason, .. } => write!(f, "publish denied: {reason}"),
            Self::Stopped => f.write_str("broker has been stopped"),
        }
    }
}

impl std::error::Error for TryPublishError {}

impl From<TryPublishError> for Error {
    fn from(e: TryPublishError) -> Self {
        match e {
            TryPublishError::Full(_) => Error::QueueFull,
            TryPublishError::Denied { reason, .. } => reason,
            TryPublishError::Stopped => Error::Stopped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(Error::TopicNotFound { topic: "t".into() }.to_string(), "topic `t` not found");
        assert_eq!(Error::Stopped.to_string(), "broker has been stopped");
        assert!(Error::Disconnected.to_string().contains("closed"));
    }

    #[test]
    fn try_publish_error_hands_the_message_back() {
        let e = TryPublishError::Full(crate::message::Message::builder().build());
        assert!(e.to_string().contains("full"));
        assert!(e.into_message().is_some());
        assert!(TryPublishError::Stopped.into_message().is_none());
        assert!(matches!(Error::from(TryPublishError::Stopped), Error::Stopped));
        let full = TryPublishError::Full(crate::message::Message::builder().build());
        assert!(matches!(Error::from(full), Error::QueueFull));
    }

    #[test]
    fn denied_hands_the_message_and_reason_back() {
        let denied = TryPublishError::Denied {
            message: crate::message::Message::builder().build(),
            reason: Error::PublishShed { class: 0 },
        };
        assert!(denied.to_string().contains("shed"));
        assert!(matches!(Error::from(denied), Error::PublishShed { class: 0 }));
        let denied = TryPublishError::Denied {
            message: crate::message::Message::builder().build(),
            reason: Error::PublishDeferred { class: 1, retry_after_ms: 5 },
        };
        assert!(denied.into_message().is_some());
    }
}
