//! The per-topic workload observatory.
//!
//! The paper's Eq. 1 parameters (`n_fltr`, `E[R]`, the cost constants) are
//! *per-workload* quantities, but the broker's aggregate histograms blur
//! every topic into one stream. This module gives the dispatcher a bounded
//! per-topic accounting table: for each topic it accumulates the arrival
//! count, the realized filter evaluations and replication grade, and an
//! online [`CostRegression`] over the measured `(n_fltr, R, B)` triples —
//! enough to fit each topic's own cost constants and to compute each
//! shard's offered-load share (the input of the skew analyzer in
//! `rjms-obs`).
//!
//! Cardinality is capped exactly like the Prometheus exporter's per-topic
//! series: once `per_topic_cap` distinct topics have rows, further topics
//! collapse into a per-shard `__other__` bucket (so their load still lands
//! on the right shard in the skew analysis), and the collapse is counted.
//!
//! The dispatcher never touches the shared table on the per-message path:
//! it stages observations into a thread-local [`TopicObsScratch`] and
//! merges on the same idle/every-1024-messages cadence as the histogram
//! scratch, keeping the hot-path cost to a hash lookup and a dozen
//! floating-point adds (gated by the `ext_topic_obs_overhead` benchmark).

use parking_lot::Mutex;
use rjms_core::params::CostParams;
use rjms_core::regression::{CostRegression, FittedCosts, RegressionTolerance, RegressionVerdict};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Name of the overflow bucket rows (same label as the metrics exporter).
pub const OTHER_TOPIC: &str = "__other__";

/// Per-topic observatory settings.
///
/// Enabling the observatory auto-enables default metrics (the observatory
/// reads the dispatcher's per-message service timings).
///
/// # Examples
///
/// ```
/// use rjms_broker::config::{BrokerConfig, TopicObsConfig};
///
/// let config =
///     BrokerConfig::builder().topic_obs(TopicObsConfig::default().per_topic_cap(16)).build();
/// assert_eq!(config.topic_obs.unwrap().per_topic_cap, 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopicObsConfig {
    /// Maximum number of distinct topics with their own accounting row.
    /// Topic names are unbounded client-controlled input, so the table is
    /// capped: further topics collapse into a per-shard `__other__` row.
    pub per_topic_cap: usize,
    /// Max/mean shard-load ratio above which the skew analyzer flags the
    /// placement.
    pub flag_ratio: f64,
    /// Ratio the rebalance advisor's moves aim to get under.
    pub target_ratio: f64,
    /// Confidence gates for the per-topic regression verdicts.
    pub tolerance: RegressionTolerance,
}

impl Default for TopicObsConfig {
    fn default() -> Self {
        Self {
            per_topic_cap: 64,
            flag_ratio: 1.25,
            target_ratio: 1.10,
            tolerance: RegressionTolerance::default(),
        }
    }
}

impl TopicObsConfig {
    /// Sets the per-topic row cardinality cap.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is 0.
    pub fn per_topic_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "per_topic_cap must be > 0");
        self.per_topic_cap = cap;
        self
    }

    /// Sets the skew flagging threshold.
    ///
    /// # Panics
    ///
    /// Panics unless `ratio >= 1.0`.
    pub fn flag_ratio(mut self, ratio: f64) -> Self {
        assert!(ratio >= 1.0 && ratio.is_finite(), "flag_ratio must be >= 1, got {ratio}");
        self.flag_ratio = ratio;
        self
    }

    /// Sets the rebalance advisor's target ratio.
    ///
    /// # Panics
    ///
    /// Panics unless `ratio >= 1.0`.
    pub fn target_ratio(mut self, ratio: f64) -> Self {
        assert!(ratio >= 1.0 && ratio.is_finite(), "target_ratio must be >= 1, got {ratio}");
        self.target_ratio = ratio;
        self
    }

    /// Replaces the regression verdict tolerances.
    pub fn tolerance(mut self, tolerance: RegressionTolerance) -> Self {
        self.tolerance = tolerance;
        self
    }
}

/// One topic's accumulated workload observations.
#[derive(Debug, Clone, Default)]
struct TopicAccount {
    shard: usize,
    regression: CostRegression,
}

/// The shared accounting table, merged into by every dispatcher.
#[derive(Debug)]
struct ObsTable {
    topics: HashMap<String, TopicAccount>,
    /// Per-shard overflow buckets, so collapsed topics still contribute
    /// their load to the right shard.
    other: Vec<TopicAccount>,
    /// Distinct topic names that have been routed into `__other__`.
    overflowed: u64,
}

/// The broker's per-topic workload observatory: configuration, reference
/// params, and the shared table.
#[derive(Debug)]
pub(crate) struct TopicObservatory {
    config: TopicObsConfig,
    anchor: Option<CostParams>,
    shards: usize,
    started: Instant,
    table: Mutex<ObsTable>,
}

impl TopicObservatory {
    pub(crate) fn new(config: TopicObsConfig, anchor: Option<CostParams>, shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            config,
            anchor,
            shards,
            started: Instant::now(),
            table: Mutex::new(ObsTable {
                topics: HashMap::new(),
                other: (0..shards)
                    .map(|s| TopicAccount { shard: s, ..Default::default() })
                    .collect(),
                overflowed: 0,
            }),
        }
    }

    /// Merges a dispatcher's staged observations into the shared table,
    /// applying the cardinality cap. Returns how many *new* distinct
    /// topics were collapsed into `__other__` by this merge (so the caller
    /// can bump the broker-wide overflow counter).
    fn merge(&self, staged: &mut HashMap<String, TopicAccount>) -> u64 {
        if staged.is_empty() {
            return 0;
        }
        let mut newly_overflowed = 0;
        let mut table = self.table.lock();
        for (name, account) in staged.drain() {
            if let Some(row) = table.topics.get_mut(&name) {
                row.regression.merge(&account.regression);
            } else if table.topics.len() < self.config.per_topic_cap {
                table.topics.insert(name, account);
            } else {
                // Collapsed: fold into the shard's overflow bucket. Count
                // each merge of an unseen name once per dispatcher flush —
                // cheap and bounded, at the cost of over-counting a topic
                // that overflows from several dispatchers; the counter is
                // a "your cap is too small" signal, not an exact census.
                newly_overflowed += 1;
                let shard = account.shard.min(self.shards - 1);
                table.other[shard].regression.merge(&account.regression);
            }
        }
        table.overflowed += newly_overflowed;
        newly_overflowed
    }

    /// Snapshots the table into self-contained rows.
    pub(crate) fn snapshot(&self) -> TopicObservatorySnapshot {
        let elapsed = self.started.elapsed();
        let table = self.table.lock();
        let mut global = CostRegression::new();
        let mut topics: Vec<TopicObsRow> = table
            .topics
            .iter()
            .map(|(name, account)| self.row(name, account, elapsed, &mut global))
            .collect();
        for bucket in &table.other {
            if !bucket.regression.is_empty() {
                topics.push(self.row(OTHER_TOPIC, bucket, elapsed, &mut global));
            }
        }
        let overflowed = table.overflowed;
        drop(table);
        // Deterministic order: busiest first, name as tie-break.
        topics.sort_by(|a, b| b.messages.cmp(&a.messages).then_with(|| a.name.cmp(&b.name)));
        let global_row = self.summarize(OTHER_TOPIC, &global, elapsed);
        TopicObservatorySnapshot {
            elapsed,
            anchor: self.anchor,
            config: self.config,
            shards: self.shards,
            overflowed_topics: overflowed,
            global_fitted: global_row.fitted,
            global_verdict: global_row.verdict,
            topics,
        }
    }

    fn row(
        &self,
        name: &str,
        account: &TopicAccount,
        elapsed: Duration,
        global: &mut CostRegression,
    ) -> TopicObsRow {
        global.merge(&account.regression);
        let mut row = self.summarize(name, &account.regression, elapsed);
        row.shard = account.shard;
        row
    }

    fn summarize(&self, name: &str, reg: &CostRegression, elapsed: Duration) -> TopicObsRow {
        // Anchored fits need reference params; without any configured cost
        // model the zero anchor lets the slopes absorb the (native,
        // sub-microsecond) intercept, and no verdict is rendered.
        let fit_anchor = self.anchor.unwrap_or_else(|| CostParams::new(0.0, 0.0, 0.0));
        let messages = reg.len() + reg.rejected();
        let secs = elapsed.as_secs_f64();
        TopicObsRow {
            name: name.to_string(),
            shard: 0,
            messages,
            arrival_rate: if secs > 0.0 { messages as f64 / secs } else { 0.0 },
            mean_filters: reg.mean_filters(),
            mean_replication: reg.mean_replication(),
            mean_service_time: reg.mean_service_time(),
            fitted: reg.fit(&fit_anchor).ok(),
            verdict: self.anchor.map(|a| reg.assess(&a, &self.config.tolerance)),
        }
    }
}

/// Dispatcher-local staging for the observatory: plain `HashMap` writes on
/// the per-message path, merged into the shared table on the flush cadence.
#[derive(Debug, Default)]
pub(crate) struct TopicObsScratch {
    staged: HashMap<String, TopicAccount>,
    pending: u64,
}

impl TopicObsScratch {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Stages one dispatched message's observation.
    pub(crate) fn record(
        &mut self,
        topic: &str,
        shard: usize,
        evaluations: u32,
        copies: u32,
        service_secs: f64,
    ) {
        if !self.staged.contains_key(topic) {
            self.staged.insert(topic.to_string(), TopicAccount { shard, ..Default::default() });
        }
        let account = self.staged.get_mut(topic).expect("just inserted");
        account.regression.observe(evaluations, copies as f64, service_secs);
        self.pending += 1;
    }

    /// Staged observations since the last flush.
    pub(crate) fn pending(&self) -> u64 {
        self.pending
    }

    /// Merges everything staged into the shared table; returns the number
    /// of distinct topic names this flush collapsed into `__other__`.
    pub(crate) fn flush(&mut self, observatory: &TopicObservatory) -> u64 {
        self.pending = 0;
        observatory.merge(&mut self.staged)
    }
}

/// A point-in-time view of the observatory, self-contained for rendering.
#[derive(Debug, Clone)]
pub struct TopicObservatorySnapshot {
    /// Time since the broker started (the denominator of the rates).
    pub elapsed: Duration,
    /// The configured reference params the verdicts compare against
    /// (`None` when the broker runs at native speed with no flow model).
    pub anchor: Option<CostParams>,
    /// The observatory's configuration (cap and skew thresholds).
    pub config: TopicObsConfig,
    /// Number of dispatcher shards.
    pub shards: usize,
    /// Distinct topic-name collapses into `__other__` so far (a signal the
    /// cap is too small; may over-count topics seen by several shards).
    pub overflowed_topics: u64,
    /// The fit over *all* observations pooled (n_fltr varies across
    /// topics, so this is where the full 3-parameter fit is identifiable).
    pub global_fitted: Option<FittedCosts>,
    /// Verdict for the pooled fit (`None` without an anchor).
    pub global_verdict: Option<RegressionVerdict>,
    /// Per-topic rows, busiest first; overflow buckets appear as
    /// [`OTHER_TOPIC`] rows (one per shard with traffic).
    pub topics: Vec<TopicObsRow>,
}

/// One topic's observed workload and fitted cost constants.
#[derive(Debug, Clone)]
pub struct TopicObsRow {
    /// Topic name (or [`OTHER_TOPIC`]).
    pub name: String,
    /// The shard the topic is pinned to.
    pub shard: usize,
    /// Messages observed.
    pub messages: u64,
    /// Observed arrival rate `λ_t`, messages/s (over the broker's uptime).
    pub arrival_rate: f64,
    /// Mean filter evaluations per message (`n_fltr`).
    pub mean_filters: f64,
    /// Mean realized replication grade (`E[R]`).
    pub mean_replication: f64,
    /// Mean measured service time `E[B_t]`, seconds.
    pub mean_service_time: f64,
    /// The adaptive online fit (when identifiable).
    pub fitted: Option<FittedCosts>,
    /// Confidence-gated verdict vs the anchor (`None` without an anchor).
    pub verdict: Option<RegressionVerdict>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observatory(cap: usize, shards: usize) -> TopicObservatory {
        TopicObservatory::new(
            TopicObsConfig::default().per_topic_cap(cap),
            Some(CostParams::CORRELATION_ID),
            shards,
        )
    }

    fn drive(scratch: &mut TopicObsScratch, topic: &str, shard: usize, n: u32, r: u32, count: u32) {
        let truth = CostParams::CORRELATION_ID;
        for _ in 0..count {
            scratch.record(topic, shard, n, r, truth.mean_service_time(n, r as f64));
        }
    }

    #[test]
    fn staged_observations_land_in_the_table() {
        let obs = observatory(8, 2);
        let mut scratch = TopicObsScratch::new();
        drive(&mut scratch, "a", 0, 10, 3, 50);
        drive(&mut scratch, "b", 1, 40, 1, 20);
        assert_eq!(scratch.pending(), 70);
        assert_eq!(scratch.flush(&obs), 0);
        assert_eq!(scratch.pending(), 0);

        let snap = obs.snapshot();
        assert_eq!(snap.topics.len(), 2);
        assert_eq!(snap.topics[0].name, "a"); // busiest first
        assert_eq!(snap.topics[0].messages, 50);
        assert_eq!(snap.topics[0].shard, 0);
        assert!((snap.topics[0].mean_filters - 10.0).abs() < 1e-12);
        assert!((snap.topics[0].mean_replication - 3.0).abs() < 1e-12);
        assert_eq!(snap.overflowed_topics, 0);
    }

    #[test]
    fn cap_collapses_into_per_shard_other() {
        let obs = observatory(2, 2);
        let mut scratch = TopicObsScratch::new();
        drive(&mut scratch, "a", 0, 10, 1, 5);
        drive(&mut scratch, "b", 0, 10, 1, 5);
        scratch.flush(&obs);
        // Two more topics beyond the cap, on different shards.
        drive(&mut scratch, "c", 0, 10, 1, 7);
        drive(&mut scratch, "d", 1, 10, 1, 9);
        let collapsed = scratch.flush(&obs);
        assert_eq!(collapsed, 2);

        let snap = obs.snapshot();
        assert_eq!(snap.overflowed_topics, 2);
        let others: Vec<_> = snap.topics.iter().filter(|t| t.name == OTHER_TOPIC).collect();
        assert_eq!(others.len(), 2);
        let by_shard = |s: usize| others.iter().find(|t| t.shard == s).expect("bucket").messages;
        assert_eq!(by_shard(0), 7);
        assert_eq!(by_shard(1), 9);
    }

    #[test]
    fn per_topic_fit_converges_on_the_true_slopes() {
        let obs = observatory(8, 1);
        let truth = CostParams::CORRELATION_ID;
        let mut scratch = TopicObsScratch::new();
        // Vary R within the topic so the anchored 2-parameter fit is
        // identifiable.
        for i in 0..600u32 {
            let r = 1 + (i % 6);
            scratch.record("t", 0, 25, r, truth.mean_service_time(25, r as f64));
        }
        scratch.flush(&obs);
        let snap = obs.snapshot();
        let row = &snap.topics[0];
        let fitted = row.fitted.expect("identifiable").params;
        assert!((fitted.t_tx - truth.t_tx).abs() / truth.t_tx < 0.01);
        assert!(matches!(row.verdict, Some(RegressionVerdict::Stable(_))), "{:?}", row.verdict);
    }

    #[test]
    fn global_fit_pools_across_topics() {
        let obs = observatory(8, 1);
        let truth = CostParams::CORRELATION_ID;
        let mut scratch = TopicObsScratch::new();
        for (topic, n) in [("lo", 5u32), ("mid", 50), ("hi", 150)] {
            for i in 0..400u32 {
                let r = 1 + (i % 8);
                scratch.record(topic, 0, n, r, truth.mean_service_time(n, r as f64));
            }
        }
        scratch.flush(&obs);
        let snap = obs.snapshot();
        let global = snap.global_fitted.expect("identifiable").params;
        assert!((global.t_fltr - truth.t_fltr).abs() / truth.t_fltr < 0.01);
        assert!((global.t_tx - truth.t_tx).abs() / truth.t_tx < 0.01);
        assert!(matches!(snap.global_verdict, Some(RegressionVerdict::Stable(_))));
    }

    #[test]
    fn no_anchor_means_no_verdict_but_still_rates() {
        let obs = TopicObservatory::new(TopicObsConfig::default(), None, 1);
        let mut scratch = TopicObsScratch::new();
        drive(&mut scratch, "t", 0, 10, 2, 400);
        scratch.flush(&obs);
        let snap = obs.snapshot();
        assert!(snap.anchor.is_none());
        assert!(snap.topics[0].verdict.is_none());
        assert_eq!(snap.topics[0].messages, 400);
    }

    #[test]
    fn config_setters_validate() {
        let c = TopicObsConfig::default().per_topic_cap(5).flag_ratio(2.0).target_ratio(1.5);
        assert_eq!(c.per_topic_cap, 5);
        assert_eq!(c.flag_ratio, 2.0);
        assert_eq!(c.target_ratio, 1.5);
    }

    #[test]
    #[should_panic(expected = "per_topic_cap must be > 0")]
    fn zero_cap_rejected() {
        TopicObsConfig::default().per_topic_cap(0);
    }

    #[test]
    #[should_panic(expected = "flag_ratio must be >= 1")]
    fn sub_unity_flag_ratio_rejected() {
        TopicObsConfig::default().flag_ratio(0.9);
    }
}
