//! Hierarchical topic patterns.
//!
//! JMS itself leaves topic namespaces flat, but every production broker
//! (including FioranoMQ) supports dot-separated topic hierarchies with
//! wildcard subscriptions. This module implements the conventional syntax:
//!
//! * `.` separates segments (`sensors.temp.room1`),
//! * `*` matches exactly one segment (`sensors.*.room1`),
//! * `>` as the *final* segment matches one or more remaining segments
//!   (`sensors.>`).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// One segment of a topic pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
enum Segment {
    Literal(String),
    /// `*` — any single segment.
    AnyOne,
    /// `>` — one or more trailing segments.
    AnyRest,
}

/// A parsed topic pattern.
///
/// # Examples
///
/// ```
/// use rjms_broker::pattern::TopicPattern;
///
/// let p: TopicPattern = "sensors.*.temp".parse().unwrap();
/// assert!(p.matches("sensors.kitchen.temp"));
/// assert!(!p.matches("sensors.kitchen.humidity"));
/// assert!(!p.matches("sensors.temp"));
///
/// let rest: TopicPattern = "sensors.>".parse().unwrap();
/// assert!(rest.matches("sensors.kitchen.temp"));
/// assert!(!rest.matches("sensors"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TopicPattern {
    segments: Vec<Segment>,
    source: String,
}

impl TopicPattern {
    /// Whether the pattern contains any wildcard. A wildcard-free pattern
    /// matches exactly one topic name.
    pub fn is_literal(&self) -> bool {
        self.segments.iter().all(|s| matches!(s, Segment::Literal(_)))
    }

    /// Whether the pattern matches a topic name.
    pub fn matches(&self, topic: &str) -> bool {
        let parts: Vec<&str> = topic.split('.').collect();
        let mut i = 0;
        for (idx, seg) in self.segments.iter().enumerate() {
            match seg {
                Segment::AnyRest => {
                    // Must consume at least one remaining part.
                    debug_assert_eq!(idx, self.segments.len() - 1);
                    return i < parts.len();
                }
                Segment::AnyOne => {
                    if i >= parts.len() {
                        return false;
                    }
                    i += 1;
                }
                Segment::Literal(lit) => {
                    if parts.get(i) != Some(&lit.as_str()) {
                        return false;
                    }
                    i += 1;
                }
            }
        }
        i == parts.len()
    }
}

impl fmt::Display for TopicPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.source)
    }
}

/// Error parsing a topic pattern.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParseTopicPatternError {
    /// The rejected pattern.
    pub pattern: String,
    /// Why it was rejected.
    pub message: String,
}

impl fmt::Display for ParseTopicPatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid topic pattern `{}`: {}", self.pattern, self.message)
    }
}

impl std::error::Error for ParseTopicPatternError {}

impl FromStr for TopicPattern {
    type Err = ParseTopicPatternError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |message: &str| ParseTopicPatternError {
            pattern: s.to_owned(),
            message: message.to_owned(),
        };
        if s.is_empty() {
            return Err(err("pattern must not be empty"));
        }
        let parts: Vec<&str> = s.split('.').collect();
        let mut segments = Vec::with_capacity(parts.len());
        for (i, part) in parts.iter().enumerate() {
            match *part {
                "" => return Err(err("empty segment")),
                "*" => segments.push(Segment::AnyOne),
                ">" => {
                    if i != parts.len() - 1 {
                        return Err(err("`>` may only appear as the final segment"));
                    }
                    segments.push(Segment::AnyRest);
                }
                lit => {
                    if lit.contains('*') || lit.contains('>') {
                        return Err(err("wildcards must stand alone in a segment"));
                    }
                    segments.push(Segment::Literal(lit.to_owned()));
                }
            }
        }
        Ok(TopicPattern { segments, source: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(s: &str) -> TopicPattern {
        s.parse().unwrap()
    }

    #[test]
    fn literal_pattern_matches_exactly() {
        let p = pat("a.b.c");
        assert!(p.is_literal());
        assert!(p.matches("a.b.c"));
        assert!(!p.matches("a.b"));
        assert!(!p.matches("a.b.c.d"));
        assert!(!p.matches("a.b.x"));
    }

    #[test]
    fn star_matches_one_segment() {
        let p = pat("a.*.c");
        assert!(!p.is_literal());
        assert!(p.matches("a.b.c"));
        assert!(p.matches("a.x.c"));
        assert!(!p.matches("a.c"));
        assert!(!p.matches("a.b.b.c"));
    }

    #[test]
    fn leading_and_trailing_star() {
        assert!(pat("*.b").matches("a.b"));
        assert!(!pat("*.b").matches("b"));
        assert!(pat("a.*").matches("a.b"));
        assert!(!pat("a.*").matches("a"));
        assert!(pat("*").matches("anything"));
        assert!(!pat("*").matches("two.parts"));
    }

    #[test]
    fn gt_matches_one_or_more_trailing() {
        let p = pat("a.>");
        assert!(p.matches("a.b"));
        assert!(p.matches("a.b.c.d"));
        assert!(!p.matches("a"));
        assert!(pat(">").matches("x"));
        assert!(pat(">").matches("x.y"));
    }

    #[test]
    fn parse_errors() {
        assert!("".parse::<TopicPattern>().is_err());
        assert!("a..b".parse::<TopicPattern>().is_err());
        assert!("a.>.b".parse::<TopicPattern>().is_err());
        assert!("a.b*".parse::<TopicPattern>().is_err());
        assert!("a.>x".parse::<TopicPattern>().is_err());
    }

    #[test]
    fn display_roundtrip() {
        for s in ["a.b", "a.*", "a.>", "*", ">"] {
            assert_eq!(pat(s).to_string(), s);
            let again: TopicPattern = pat(s).to_string().parse().unwrap();
            assert_eq!(pat(s), again);
        }
    }

    #[test]
    fn flat_names_work_as_single_segments() {
        assert!(pat("stocks").matches("stocks"));
        assert!(!pat("stocks").matches("stocks.nyse"));
    }
}
