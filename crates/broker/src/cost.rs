//! Synthetic per-message CPU cost model.
//!
//! The paper's measurements ran a commercial JMS server on 2006-era hardware
//! whose per-message costs are the Table I constants. To reproduce the
//! *shape* of those measurements on arbitrary modern hardware, the broker can
//! be configured with a [`CostModel`] that burns a calibrated amount of CPU
//! per received message, per filter evaluation, and per dispatched copy —
//! exactly the three cost components of the paper's Eq. 1. With the cost
//! model enabled, a saturated broker's wall-clock throughput follows
//! `1 / (t_rcv + n_fltr·t_fltr + R·t_tx)` like the original server.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Per-message CPU cost parameters, in seconds (mirrors `CostParams` in
/// `rjms-core`, duplicated here to keep the broker substrate free of a
/// dependency on the model crate).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed receive overhead per message (`t_rcv`).
    pub t_rcv: f64,
    /// Overhead per installed filter checked (`t_fltr`).
    pub t_fltr: f64,
    /// Overhead per dispatched message copy (`t_tx`).
    pub t_tx: f64,
}

impl CostModel {
    /// The paper's Table I constants for correlation-ID filtering.
    pub const CORRELATION_ID: CostModel =
        CostModel { t_rcv: 8.52e-7, t_fltr: 7.02e-6, t_tx: 1.70e-5 };

    /// The paper's Table I constants for application-property filtering.
    pub const APPLICATION_PROPERTY: CostModel =
        CostModel { t_rcv: 4.10e-6, t_fltr: 1.46e-5, t_tx: 1.62e-5 };

    /// Creates a cost model.
    ///
    /// # Panics
    ///
    /// Panics if any component is negative or non-finite.
    pub fn new(t_rcv: f64, t_fltr: f64, t_tx: f64) -> Self {
        for (name, v) in [("t_rcv", t_rcv), ("t_fltr", t_fltr), ("t_tx", t_tx)] {
            assert!(v >= 0.0 && v.is_finite(), "{name} must be finite and >= 0, got {v}");
        }
        Self { t_rcv, t_fltr, t_tx }
    }

    /// Mean processing time of a message given the number of installed
    /// filters and its replication grade (Eq. 1 with a concrete `R`).
    pub fn processing_time(&self, n_fltr: usize, replication: usize) -> f64 {
        self.t_rcv + n_fltr as f64 * self.t_fltr + replication as f64 * self.t_tx
    }

    /// Burns CPU for the receive overhead.
    pub fn spin_receive(&self) {
        spin_for(Duration::from_secs_f64(self.t_rcv));
    }

    /// Burns CPU for `count` filter evaluations.
    pub fn spin_filters(&self, count: usize) {
        spin_for(Duration::from_secs_f64(self.t_fltr * count as f64));
    }

    /// Burns CPU for one dispatched copy.
    pub fn spin_transmit(&self) {
        spin_for(Duration::from_secs_f64(self.t_tx));
    }
}

/// Busy-waits for the given duration.
///
/// Sleeping is useless at microsecond scales (timer granularity); a spin
/// models CPU consumption, which is what saturates the paper's server.
pub fn spin_for(duration: Duration) {
    if duration.is_zero() {
        return;
    }
    let start = Instant::now();
    while start.elapsed() < duration {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_constants() {
        let c = CostModel::CORRELATION_ID;
        assert!((c.t_rcv - 8.52e-7).abs() < 1e-12);
        assert!((c.t_fltr - 7.02e-6).abs() < 1e-12);
        assert!((c.t_tx - 1.70e-5).abs() < 1e-12);
        let a = CostModel::APPLICATION_PROPERTY;
        assert!(a.t_rcv > c.t_rcv);
        assert!(a.t_fltr > c.t_fltr);
    }

    #[test]
    fn processing_time_is_eq1() {
        let c = CostModel::new(1e-6, 2e-6, 3e-6);
        // t_rcv + 10·t_fltr + 4·t_tx
        assert!((c.processing_time(10, 4) - (1e-6 + 20e-6 + 12e-6)).abs() < 1e-15);
        assert!((c.processing_time(0, 0) - 1e-6).abs() < 1e-15);
    }

    #[test]
    fn spin_for_waits_at_least_duration() {
        let d = Duration::from_micros(300);
        let start = Instant::now();
        spin_for(d);
        assert!(start.elapsed() >= d);
    }

    #[test]
    fn spin_for_zero_returns_immediately() {
        spin_for(Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "t_fltr must be finite")]
    fn rejects_negative_cost() {
        CostModel::new(1e-6, -1.0, 1e-6);
    }
}
