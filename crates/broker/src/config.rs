//! Broker configuration.

use crate::cost::CostModel;
use rjms_journal::JournalConfig;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

pub use crate::topic_obs::TopicObsConfig;
pub use rjms_flow::FlowConfig;

/// What the dispatcher does when a subscriber's queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OverflowPolicy {
    /// Block the dispatcher until the subscriber drains (reliable delivery —
    /// the paper's *persistent* mode; back-pressure ultimately propagates to
    /// the publishers through the bounded publish queue).
    #[default]
    Block,
    /// Drop the new message copy for that subscriber (lossy delivery;
    /// recorded in [`crate::stats::BrokerStats::dropped`]).
    DropNew,
}

/// Durability settings: where the write-ahead journal lives and how
/// aggressively durable-consumer progress is checkpointed into it.
///
/// With persistence enabled the dispatcher appends every accepted message
/// to the journal *before* fan-out (write-ahead), and records a
/// `DurableCheckpoint` after every `checkpoint_every` deliveries to a
/// connected durable consumer. On restart the broker replays the journal,
/// rebuilding topics, durable subscriptions and their retained backlogs;
/// messages delivered after the last checkpoint are re-delivered
/// (at-least-once semantics).
///
/// Journal I/O failure is fatal: a broker that cannot write its
/// write-ahead log can no longer honor the durability contract, so it
/// panics rather than silently degrading to in-memory mode.
///
/// # Examples
///
/// ```
/// use rjms_broker::config::PersistenceConfig;
/// use rjms_journal::FsyncPolicy;
///
/// let p = PersistenceConfig::new("/tmp/rjms-doc-persist")
///     .checkpoint_every(64)
///     .journal(|j| j.fsync(FsyncPolicy::Always));
/// assert_eq!(p.checkpoint_every, 64);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersistenceConfig {
    /// Journal location, segment sizing, fsync policy, retention.
    pub journal: JournalConfig,
    /// Deliveries to a connected durable consumer between checkpoint
    /// records (per durable subscription). Lower values shrink the
    /// re-delivery window after a crash at the cost of extra journal
    /// traffic.
    pub checkpoint_every: u64,
}

impl PersistenceConfig {
    /// Persistence with journal defaults in `dir` and a checkpoint every
    /// 256 deliveries.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistenceConfig { journal: JournalConfig::new(dir), checkpoint_every: 256 }
    }

    /// Adjusts the journal configuration in place.
    pub fn journal(mut self, adjust: impl FnOnce(JournalConfig) -> JournalConfig) -> Self {
        self.journal = adjust(self.journal);
        self
    }

    /// Sets the checkpoint interval.
    ///
    /// # Panics
    ///
    /// Panics if `every` is 0.
    pub fn checkpoint_every(mut self, every: u64) -> Self {
        assert!(every > 0, "checkpoint_every must be > 0");
        self.checkpoint_every = every;
        self
    }
}

/// Live-observability settings (see `rjms-metrics`).
///
/// With metrics enabled the dispatcher records per-message waiting,
/// service and sojourn times into lock-free histograms, and decomposes the
/// service time into its Eq. 1 stages (`t_rcv`, filter scan, fan-out,
/// journal append) on every `stage_sample_every`-th message. Stage
/// decomposition needs extra clock reads inside the filter loop, so it is
/// sampled rather than exhaustive to keep dispatch overhead within the
/// budget enforced by the `ext_observer_overhead` benchmark.
///
/// # Examples
///
/// ```
/// use rjms_broker::config::{BrokerConfig, MetricsConfig};
///
/// let config =
///     BrokerConfig::builder().metrics(MetricsConfig::default().stage_sample_every(32)).build();
/// assert_eq!(config.metrics.unwrap().stage_sample_every, 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsConfig {
    /// Record the per-stage service-time decomposition on every Nth
    /// dispatched message (1 = every message).
    pub stage_sample_every: u64,
    /// Maximum number of distinct topics exported as labeled
    /// `broker.topic.*` counter series. Topic names are unbounded
    /// client-controlled input, so the label cardinality is capped: once
    /// this many topics have their own series, traffic on further topics is
    /// collapsed into a single `topic="__other__"` series. 0 disables
    /// per-topic series entirely.
    pub per_topic_series: usize,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        Self { stage_sample_every: 64, per_topic_series: 64 }
    }
}

impl MetricsConfig {
    /// Sets the stage-decomposition sampling interval.
    ///
    /// # Panics
    ///
    /// Panics if `every` is 0.
    pub fn stage_sample_every(mut self, every: u64) -> Self {
        assert!(every > 0, "stage_sample_every must be > 0");
        self.stage_sample_every = every;
        self
    }

    /// Sets the per-topic labeled-series cardinality cap (0 disables).
    pub fn per_topic_series(mut self, cap: usize) -> Self {
        self.per_topic_series = cap;
        self
    }
}

/// End-to-end tracing settings (see `rjms-trace`).
///
/// With tracing enabled the dispatcher records a span chain (receive →
/// journal → filter scan → fan-out, plus wire-flush events appended by the
/// net layer) for a *tail-sampled* subset of messages into a fixed-capacity
/// lock-free flight recorder. Tail sampling decides **after** dispatch,
/// when the sojourn time is known: chains are kept for messages slower
/// than the live `tail_quantile` of the sojourn histogram, plus a small
/// uniform baseline (every `uniform_every`-th message) so typical-latency
/// chains stay inspectable. Tracing requires metrics: enabling it
/// auto-enables a default [`MetricsConfig`] if none is set.
///
/// # Examples
///
/// ```
/// use rjms_broker::config::{BrokerConfig, TraceConfig};
///
/// let config = BrokerConfig::builder().trace(TraceConfig::default().tail_quantile(0.95)).build();
/// assert_eq!(config.trace.unwrap().tail_quantile, 0.95);
/// assert!(config.trace.unwrap().capacity > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Flight-recorder ring capacity in span events (rounded up to a power
    /// of two). Memory is fixed at ~48 bytes per slot.
    pub capacity: usize,
    /// Sojourn-time quantile above which a message's chain is kept
    /// (tail sampling); e.g. 0.99 keeps the slowest ~1%.
    pub tail_quantile: f64,
    /// Messages between refreshes of the tail threshold from the live
    /// sojourn histogram.
    pub refresh_every: u64,
    /// Uniform baseline: unconditionally keep every Nth message's chain
    /// regardless of its sojourn time. 0 disables the baseline.
    pub uniform_every: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self { capacity: 8192, tail_quantile: 0.99, refresh_every: 1024, uniform_every: 128 }
    }
}

impl TraceConfig {
    /// Sets the flight-recorder capacity in events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be > 0");
        self.capacity = capacity;
        self
    }

    /// Sets the tail-sampling sojourn quantile.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= q < 1.0`.
    pub fn tail_quantile(mut self, q: f64) -> Self {
        assert!((0.0..1.0).contains(&q), "tail_quantile must be in [0, 1), got {q}");
        self.tail_quantile = q;
        self
    }

    /// Sets the threshold refresh interval in messages.
    ///
    /// # Panics
    ///
    /// Panics if `every` is 0.
    pub fn refresh_every(mut self, every: u64) -> Self {
        assert!(every > 0, "refresh_every must be > 0");
        self.refresh_every = every;
        self
    }

    /// Sets the uniform baseline interval (0 disables the baseline).
    pub fn uniform_every(mut self, every: u64) -> Self {
        self.uniform_every = every;
        self
    }
}

/// Configuration for a [`crate::Broker`].
///
/// Build one with [`BrokerConfig::builder`], the supported construction
/// surface; the public fields remain readable for introspection.
///
/// # Examples
///
/// ```
/// use rjms_broker::config::{BrokerConfig, OverflowPolicy};
///
/// let config = BrokerConfig::builder()
///     .publish_queue_capacity(512)
///     .overflow_policy(OverflowPolicy::DropNew)
///     .build();
/// assert_eq!(config.publish_queue_capacity, 512);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrokerConfig {
    /// Number of dispatcher shards. Topics hash onto shards by name
    /// (see [`crate::shard_of`]); each shard runs its own dispatcher
    /// thread with its own publish queue, cost accounting, and — when
    /// metrics are enabled — its own waiting/service/sojourn histograms
    /// and analytic server model. `1` (the default) reproduces the
    /// paper's single CPU-bound server exactly.
    pub shards: usize,
    /// Capacity of the central publish queue (per shard). A full queue
    /// blocks publishers — the push-back mechanism the paper observed
    /// ("the major part of the messages are queued at the publisher
    /// site").
    pub publish_queue_capacity: usize,
    /// Capacity of each subscriber's delivery queue.
    pub subscriber_queue_capacity: usize,
    /// Behaviour on full subscriber queues.
    pub overflow_policy: OverflowPolicy,
    /// Optional synthetic CPU cost per message (see [`CostModel`]); `None`
    /// runs the broker at native speed.
    pub cost_model: Option<CostModel>,
    /// Maximum number of messages retained per *disconnected durable
    /// subscription*; the oldest retained message is dropped on overflow.
    pub durable_buffer_capacity: usize,
    /// Optional write-ahead persistence (see [`PersistenceConfig`]);
    /// `None` runs the broker purely in memory, as the seed model did.
    pub persistence: Option<PersistenceConfig>,
    /// Optional live metrics (see [`MetricsConfig`]); `None` records
    /// nothing and keeps the dispatch path free of clock reads.
    pub metrics: Option<MetricsConfig>,
    /// Optional end-to-end tracing (see [`TraceConfig`]); `None` records
    /// no span events. Enabling tracing auto-enables default metrics,
    /// which the tail sampler's threshold feeds from.
    pub trace: Option<TraceConfig>,
    /// Optional model-driven admission control (see [`FlowConfig`]);
    /// `None` admits every publish unconditionally. Enabling flow control
    /// auto-enables default metrics, which the drift-refresh loop feeds
    /// from.
    pub flow: Option<FlowConfig>,
    /// Optional per-topic workload observatory (see [`TopicObsConfig`]);
    /// `None` keeps the dispatcher free of per-topic accounting. Enabling
    /// it auto-enables default metrics, which supply the per-message
    /// service timings the observatory regresses over.
    pub topic_obs: Option<TopicObsConfig>,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            publish_queue_capacity: 1024,
            subscriber_queue_capacity: 4096,
            overflow_policy: OverflowPolicy::Block,
            cost_model: None,
            durable_buffer_capacity: 65_536,
            persistence: None,
            metrics: None,
            trace: None,
            flow: None,
            topic_obs: None,
        }
    }
}

impl BrokerConfig {
    /// Starts a fluent [`BrokerConfigBuilder`] from the defaults: the
    /// supported way to construct a configuration.
    pub fn builder() -> BrokerConfigBuilder {
        BrokerConfigBuilder { config: BrokerConfig::default() }
    }
}

/// Fluent builder for [`BrokerConfig`], the supported construction
/// surface. Every section of the broker — sharding, queues, cost model,
/// persistence, metrics, trace, flow — is a typed method; `build()`
/// returns the finished config.
///
/// # Examples
///
/// ```
/// use rjms_broker::config::{BrokerConfig, FlowConfig, MetricsConfig};
///
/// let config = BrokerConfig::builder()
///     .shards(4)
///     .metrics(MetricsConfig::default())
///     .flow(FlowConfig::default().classes(4))
///     .build();
/// assert_eq!(config.shards, 4);
/// assert_eq!(config.flow.unwrap().classes, 4);
/// ```
#[derive(Debug, Clone)]
pub struct BrokerConfigBuilder {
    config: BrokerConfig,
}

impl BrokerConfigBuilder {
    /// Sets the number of dispatcher shards (1 = the paper's single
    /// CPU-bound server).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "shards must be > 0");
        self.config.shards = shards;
        self
    }

    /// Sets the per-shard publish-queue capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn publish_queue_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "publish queue capacity must be > 0");
        self.config.publish_queue_capacity = capacity;
        self
    }

    /// Sets each subscriber's queue capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn subscriber_queue_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "subscriber queue capacity must be > 0");
        self.config.subscriber_queue_capacity = capacity;
        self
    }

    /// Sets the behaviour on full subscriber queues.
    pub fn overflow_policy(mut self, policy: OverflowPolicy) -> Self {
        self.config.overflow_policy = policy;
        self
    }

    /// Enables the synthetic CPU cost model.
    pub fn cost_model(mut self, model: CostModel) -> Self {
        self.config.cost_model = Some(model);
        self
    }

    /// Sets the per-durable-subscription retention buffer capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn durable_buffer_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "durable buffer capacity must be > 0");
        self.config.durable_buffer_capacity = capacity;
        self
    }

    /// Enables write-ahead persistence.
    pub fn persistence(mut self, persistence: PersistenceConfig) -> Self {
        self.config.persistence = Some(persistence);
        self
    }

    /// Enables live metrics recording.
    pub fn metrics(mut self, metrics: MetricsConfig) -> Self {
        self.config.metrics = Some(metrics);
        self
    }

    /// Enables end-to-end tracing (and, implicitly, default metrics).
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.config.trace = Some(trace);
        self
    }

    /// Enables model-driven admission control (and, implicitly, default
    /// metrics).
    pub fn flow(mut self, flow: FlowConfig) -> Self {
        self.config.flow = Some(flow);
        self
    }

    /// Enables the per-topic workload observatory (and, implicitly,
    /// default metrics).
    pub fn topic_obs(mut self, topic_obs: TopicObsConfig) -> Self {
        self.config.topic_obs = Some(topic_obs);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> BrokerConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_blocking_and_costless() {
        let c = BrokerConfig::default();
        assert_eq!(c.overflow_policy, OverflowPolicy::Block);
        assert!(c.cost_model.is_none());
        assert!(c.publish_queue_capacity > 0);
        assert_eq!(c.shards, 1);
    }

    #[test]
    fn builder_chains() {
        let c = BrokerConfig::builder()
            .shards(4)
            .publish_queue_capacity(10)
            .subscriber_queue_capacity(20)
            .overflow_policy(OverflowPolicy::DropNew)
            .cost_model(CostModel::CORRELATION_ID)
            .build();
        assert_eq!(c.shards, 4);
        assert_eq!(c.publish_queue_capacity, 10);
        assert_eq!(c.subscriber_queue_capacity, 20);
        assert_eq!(c.overflow_policy, OverflowPolicy::DropNew);
        assert!(c.cost_model.is_some());
    }

    #[test]
    fn topic_obs_config_builder() {
        let c = BrokerConfig::builder()
            .topic_obs(TopicObsConfig::default().per_topic_cap(16).flag_ratio(1.5))
            .build();
        let t = c.topic_obs.expect("topic_obs set");
        assert_eq!(t.per_topic_cap, 16);
        assert_eq!(t.flag_ratio, 1.5);
        assert!(BrokerConfig::default().topic_obs.is_none());
    }

    #[test]
    fn durable_buffer_capacity_configurable() {
        let c = BrokerConfig::builder().durable_buffer_capacity(7).build();
        assert_eq!(c.durable_buffer_capacity, 7);
    }

    #[test]
    #[should_panic(expected = "capacity must be > 0")]
    fn zero_capacity_rejected() {
        let _ = BrokerConfig::builder().publish_queue_capacity(0);
    }

    #[test]
    #[should_panic(expected = "shards must be > 0")]
    fn zero_shards_rejected() {
        let _ = BrokerConfig::builder().shards(0);
    }

    #[test]
    fn persistence_config_builders() {
        use rjms_journal::FsyncPolicy;
        let c = BrokerConfig::builder()
            .persistence(
                PersistenceConfig::new("/tmp/rjms-cfg-test")
                    .checkpoint_every(8)
                    .journal(|j| j.fsync(FsyncPolicy::Always)),
            )
            .build();
        let p = c.persistence.expect("persistence set");
        assert_eq!(p.checkpoint_every, 8);
        assert_eq!(p.journal.fsync, FsyncPolicy::Always);
        assert!(BrokerConfig::default().persistence.is_none());
    }

    #[test]
    #[should_panic(expected = "checkpoint_every must be > 0")]
    fn zero_checkpoint_interval_rejected() {
        PersistenceConfig::new("/tmp/rjms-cfg-test").checkpoint_every(0);
    }

    #[test]
    fn flow_config_builder() {
        let c = BrokerConfig::builder()
            .flow(FlowConfig::default().w99_objective(0.02).classes(2))
            .build();
        let f = c.flow.expect("flow set");
        assert_eq!(f.w99_objective, 0.02);
        assert_eq!(f.classes, 2);
        assert!(BrokerConfig::default().flow.is_none());
    }

    #[test]
    fn trace_config_builders_and_defaults() {
        let t = TraceConfig::default();
        assert_eq!(t.capacity, 8192);
        assert_eq!(t.tail_quantile, 0.99);
        let c = BrokerConfig::builder()
            .trace(TraceConfig::default().capacity(64).tail_quantile(0.5).uniform_every(0))
            .build();
        let t = c.trace.expect("trace set");
        assert_eq!(t.capacity, 64);
        assert_eq!(t.uniform_every, 0);
        assert!(BrokerConfig::default().trace.is_none());
    }

    #[test]
    #[should_panic(expected = "tail_quantile must be in [0, 1)")]
    fn trace_quantile_range_enforced() {
        TraceConfig::default().tail_quantile(1.0);
    }

    #[test]
    fn per_topic_series_cap_configurable() {
        assert_eq!(MetricsConfig::default().per_topic_series, 64);
        assert_eq!(MetricsConfig::default().per_topic_series(0).per_topic_series, 0);
    }
}
