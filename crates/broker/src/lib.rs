//! # rjms-broker
//!
//! A from-scratch, threaded, JMS-style publish/subscribe message broker —
//! the open substrate standing in for the commercial FioranoMQ server that
//! Menth & Henjes measured in *Analysis of the Message Waiting Time for the
//! FioranoMQ JMS Server* (ICDCS 2006).
//!
//! The broker deliberately mirrors the cost structure the paper's model
//! (Eq. 1) captures:
//!
//! * one bounded publish queue with **push-back** onto publishers,
//! * a **single dispatcher thread** (the measured server was CPU-bound on a
//!   single CPU),
//! * **brute-force filter evaluation**: every subscription's filter is
//!   checked against every message of its topic — the paper verified that
//!   FioranoMQ performs no identical-filter optimization,
//! * one enqueue per matching subscriber (the replication grade `R`).
//!
//! An optional [`cost::CostModel`] burns calibrated CPU per message /
//! filter / copy so that saturated wall-clock throughput reproduces the
//! paper's measurements on modern hardware. An optional
//! [`config::MetricsConfig`] turns on live observability: the dispatcher
//! records per-message waiting/service/sojourn times (and a sampled Eq. 1
//! stage decomposition) into the lock-free histograms of `rjms-metrics`,
//! surfaced through [`Broker::metrics`].
//!
//! ## Quickstart
//!
//! ```
//! use rjms_broker::{Broker, BrokerConfig, Filter, Message};
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), rjms_broker::Error> {
//! let broker = Broker::start(BrokerConfig::default());
//! broker.create_topic("stocks")?;
//!
//! let sub = broker
//!     .subscription("stocks")
//!     .filter(Filter::selector("symbol = 'ACME' AND price < 50.0").unwrap())
//!     .open()?;
//! let publisher = broker.publisher("stocks")?;
//! publisher.publish(
//!     Message::builder()
//!         .property("symbol", "ACME")
//!         .property("price", 42.0)
//!         .build(),
//! )?;
//!
//! let m = sub.receive_timeout(Duration::from_secs(1)).expect("delivered");
//! assert_eq!(m.property("symbol"), Some(&"ACME".into()));
//! assert_eq!(broker.snapshot().messages.received, 1);
//! broker.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod broker;
pub mod config;
pub mod cost;
pub mod error;
pub mod filter;
pub mod message;
pub mod metrics;
pub mod pattern;
pub mod persist;
pub mod stats;
pub mod topic_obs;

pub use broker::{
    shard_of, Broker, BrokerObserver, Publisher, ShardReport, Subscriber, SubscriptionBuilder,
    SubscriptionId, TopicStats,
};
pub use config::{
    BrokerConfig, BrokerConfigBuilder, FlowConfig, MetricsConfig, OverflowPolicy,
    PersistenceConfig, TopicObsConfig, TraceConfig,
};
pub use cost::CostModel;
pub use error::{Error, TryPublishError};
pub use filter::Filter;
pub use message::{Message, MessageBuilder, MessageId, Priority};
pub use pattern::TopicPattern;
pub use rjms_flow::{AdmissionOutcome, FlowGate, FlowSnapshot};
pub use rjms_journal::{FsyncPolicy, JournalConfig, JournalStats, RecoveryReport};
pub use rjms_metrics::MetricsRegistry;
pub use stats::{
    BrokerSnapshot, BrokerStats, FlowCounters, MessageCounters, ShardSnapshot, StatsSnapshot,
    SubscriptionCounters, Throughput, ThroughputProbe,
};
pub use topic_obs::{TopicObsRow, TopicObservatorySnapshot, OTHER_TOPIC};
