//! Broker statistics and throughput measurement.
//!
//! The paper measures the *received throughput* (messages accepted from
//! publishers per second), the *dispatched throughput* (message copies
//! forwarded to subscribers per second), and their sum, the *overall
//! throughput*, over a measurement window with warmup and cooldown trimmed
//! off. [`BrokerStats`] holds the lock-free counters; [`ThroughputProbe`]
//! implements the trimmed-window measurement.

use crate::broker::{Broker, TopicStats};
use rjms_journal::JournalStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Message-flow counters within a [`BrokerSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageCounters {
    /// Messages received from publishers.
    pub received: u64,
    /// Message copies dispatched to subscribers.
    pub dispatched: u64,
    /// Filter evaluations performed (brute force: one per subscription per
    /// message).
    pub filter_evaluations: u64,
    /// Message copies dropped on full subscriber queues
    /// (only under [`crate::config::OverflowPolicy::DropNew`]).
    pub dropped: u64,
    /// Messages retained for disconnected durable subscriptions.
    pub retained: u64,
    /// Messages discarded because their TTL elapsed.
    pub expired: u64,
}

impl MessageCounters {
    /// Mean replication grade so far (`dispatched / received`); `None`
    /// before the first message.
    pub fn replication_grade(&self) -> Option<f64> {
        if self.received > 0 {
            Some(self.dispatched as f64 / self.received as f64)
        } else {
            None
        }
    }
}

/// Subscription-topology counts within a [`BrokerSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubscriptionCounters {
    /// Topics currently registered.
    pub topics: usize,
    /// Live non-durable subscriptions across all topics.
    pub live: usize,
    /// Durable subscriptions across all topics (connected or not).
    pub durable: usize,
    /// Subscriptions removed after their subscriber disconnected.
    pub expired: u64,
}

/// Admission-control outcome counters, present when the broker runs with
/// [`crate::config::FlowConfig`]. Per-class breakdowns live in the flow
/// gate's own snapshot (`Broker::flow`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowCounters {
    /// Publishes admitted by the gate.
    pub granted: u64,
    /// Publishes deferred with a retry hint.
    pub deferred: u64,
    /// Publishes shed to protect the waiting-time objective.
    pub shed: u64,
}

/// One dispatcher shard's counters (sharded dispatch only; see
/// [`crate::BrokerConfig::shards`] and [`crate::shard_of`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// Shard index in `0..shards`.
    pub shard: usize,
    /// Topics hashed onto this shard.
    pub topics: usize,
    /// Messages received by this shard's dispatcher.
    pub received: u64,
    /// Message copies dispatched by this shard's dispatcher.
    pub dispatched: u64,
    /// Filter evaluations performed by this shard's dispatcher.
    pub filter_evaluations: u64,
}

impl ShardSnapshot {
    /// Mean replication grade on this shard; `None` before the first
    /// message.
    pub fn replication_grade(&self) -> Option<f64> {
        if self.received > 0 {
            Some(self.dispatched as f64 / self.received as f64)
        } else {
            None
        }
    }
}

/// A typed point-in-time snapshot of the whole broker, returned by
/// [`Broker::snapshot`]: one value instead of the old `stats` /
/// `journal_stats` / `topic_stats` getter trio.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BrokerSnapshot {
    /// Message-flow counters.
    pub messages: MessageCounters,
    /// Subscription-topology counts.
    pub subscriptions: SubscriptionCounters,
    /// Write-ahead journal counters; `None` without persistence.
    pub journal: Option<JournalStats>,
    /// Admission-control counters; `None` without flow control.
    pub flow: Option<FlowCounters>,
    /// Per-shard dispatcher counters; `None` for the single-dispatcher
    /// broker (`shards = 1`), keeping its snapshot identical to the
    /// pre-shard wire format.
    pub shards: Option<Vec<ShardSnapshot>>,
    /// Per-topic message counters, keyed by topic name.
    pub per_topic: BTreeMap<String, TopicStats>,
    /// Distinct topics folded into an `__other__` bucket: the labeled
    /// metric series when the per-topic series cap
    /// ([`crate::config::MetricsConfig::per_topic_series`]) is reached —
    /// or, when the per-topic observatory is enabled, its accounting
    /// table when [`crate::TopicObsConfig::per_topic_cap`] is (the
    /// observatory's cap governs the counter while it is on). 0 when
    /// every topic got its own row (or both features are off).
    #[serde(default)]
    pub topics_overflowed: u64,
}

/// Lock-free counters shared between broker threads and observers.
///
/// The `journal_*` gauges mirror the write-ahead journal's own
/// [`JournalStats`] when persistence is enabled (see
/// [`crate::config::PersistenceConfig`]); they stay zero otherwise.
#[derive(Debug, Default)]
pub struct BrokerStats {
    received: AtomicU64,
    dispatched: AtomicU64,
    filter_evaluations: AtomicU64,
    dropped: AtomicU64,
    expired_subscriptions: AtomicU64,
    retained: AtomicU64,
    expired_messages: AtomicU64,
    journal_appends: AtomicU64,
    journal_bytes_appended: AtomicU64,
    journal_fsyncs: AtomicU64,
    journal_frames_recovered: AtomicU64,
    journal_segments_rotated: AtomicU64,
    flow_granted: AtomicU64,
    flow_deferred: AtomicU64,
    flow_shed: AtomicU64,
    topics_overflowed: AtomicU64,
}

impl BrokerStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message received from a publisher.
    pub fn record_received(&self) {
        self.received.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `copies` message copies dispatched to subscribers.
    pub fn record_dispatched(&self, copies: u64) {
        self.dispatched.fetch_add(copies, Ordering::Relaxed);
    }

    /// Records `count` filter evaluations performed for one message.
    pub fn record_filter_evaluations(&self, count: u64) {
        self.filter_evaluations.fetch_add(count, Ordering::Relaxed);
    }

    /// Records a message copy dropped because a subscriber queue was full
    /// (only under [`crate::config::OverflowPolicy::DropNew`]).
    pub fn record_dropped(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a subscription removed because its subscriber disconnected.
    pub fn record_expired_subscription(&self) {
        self.expired_subscriptions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a message retained for a disconnected durable subscription.
    pub fn record_retained(&self) {
        self.retained.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a message discarded because its TTL elapsed.
    pub fn record_expired_message(&self) {
        self.expired_messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a publish admitted by the flow gate.
    pub fn record_flow_granted(&self) {
        self.flow_granted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a publish deferred by the flow gate.
    pub fn record_flow_deferred(&self) {
        self.flow_deferred.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a publish shed by the flow gate.
    pub fn record_flow_shed(&self) {
        self.flow_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a topic folded into the `__other__` labeled metric series
    /// because the per-topic series cap was reached. Called once per
    /// overflowed topic (on its first message), not per message.
    pub fn record_topic_overflowed(&self) {
        self.topics_overflowed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` distinct topics collapsed into the observatory's
    /// `__other__` bucket by one accounting-table flush.
    pub fn record_topics_overflowed(&self, n: u64) {
        self.topics_overflowed.fetch_add(n, Ordering::Relaxed);
    }

    /// Messages received from publishers so far.
    pub fn received(&self) -> u64 {
        self.received.load(Ordering::Relaxed)
    }

    /// Message copies dispatched to subscribers so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }

    /// Filter evaluations performed so far.
    pub fn filter_evaluations(&self) -> u64 {
        self.filter_evaluations.load(Ordering::Relaxed)
    }

    /// Message copies dropped on full subscriber queues so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Subscriptions removed after subscriber disconnect so far.
    pub fn expired_subscriptions(&self) -> u64 {
        self.expired_subscriptions.load(Ordering::Relaxed)
    }

    /// Messages retained for disconnected durable subscriptions so far.
    pub fn retained(&self) -> u64 {
        self.retained.load(Ordering::Relaxed)
    }

    /// Messages discarded due to TTL expiry so far.
    pub fn expired_messages(&self) -> u64 {
        self.expired_messages.load(Ordering::Relaxed)
    }

    /// Publishes admitted by the flow gate so far (0 without flow control).
    pub fn flow_granted(&self) -> u64 {
        self.flow_granted.load(Ordering::Relaxed)
    }

    /// Publishes deferred by the flow gate so far (0 without flow control).
    pub fn flow_deferred(&self) -> u64 {
        self.flow_deferred.load(Ordering::Relaxed)
    }

    /// Publishes shed by the flow gate so far (0 without flow control).
    pub fn flow_shed(&self) -> u64 {
        self.flow_shed.load(Ordering::Relaxed)
    }

    /// Distinct topics folded into `__other__` so far (see
    /// [`BrokerStats::record_topic_overflowed`]).
    pub fn topics_overflowed(&self) -> u64 {
        self.topics_overflowed.load(Ordering::Relaxed)
    }

    /// Flow counters as one value.
    pub fn flow_counters(&self) -> FlowCounters {
        FlowCounters {
            granted: self.flow_granted(),
            deferred: self.flow_deferred(),
            shed: self.flow_shed(),
        }
    }

    /// Copies the journal's counters into the broker-level gauges. Called
    /// by the broker after journal activity; observers read the result via
    /// the `journal_*` accessors and [`BrokerStats::snapshot`].
    pub fn update_journal(&self, stats: &JournalStats) {
        self.journal_appends.store(stats.appends, Ordering::Relaxed);
        self.journal_bytes_appended.store(stats.bytes_appended, Ordering::Relaxed);
        self.journal_fsyncs.store(stats.fsyncs, Ordering::Relaxed);
        self.journal_frames_recovered.store(stats.frames_recovered, Ordering::Relaxed);
        self.journal_segments_rotated.store(stats.segments_rotated, Ordering::Relaxed);
    }

    /// Frames appended to the journal so far (0 without persistence).
    pub fn journal_appends(&self) -> u64 {
        self.journal_appends.load(Ordering::Relaxed)
    }

    /// Bytes appended to the journal so far (0 without persistence).
    pub fn journal_bytes_appended(&self) -> u64 {
        self.journal_bytes_appended.load(Ordering::Relaxed)
    }

    /// `fdatasync` calls issued by the journal so far (0 without
    /// persistence).
    pub fn journal_fsyncs(&self) -> u64 {
        self.journal_fsyncs.load(Ordering::Relaxed)
    }

    /// Intact frames recovered from the journal at startup (0 without
    /// persistence).
    pub fn journal_frames_recovered(&self) -> u64 {
        self.journal_frames_recovered.load(Ordering::Relaxed)
    }

    /// Journal segments sealed and rotated so far (0 without persistence).
    pub fn journal_segments_rotated(&self) -> u64 {
        self.journal_segments_rotated.load(Ordering::Relaxed)
    }

    /// An instantaneous snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            received: self.received(),
            dispatched: self.dispatched(),
            filter_evaluations: self.filter_evaluations(),
            dropped: self.dropped(),
            journal_appends: self.journal_appends(),
            journal_bytes_appended: self.journal_bytes_appended(),
            journal_fsyncs: self.journal_fsyncs(),
            journal_frames_recovered: self.journal_frames_recovered(),
            journal_segments_rotated: self.journal_segments_rotated(),
        }
    }
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Messages received from publishers.
    pub received: u64,
    /// Message copies dispatched to subscribers.
    pub dispatched: u64,
    /// Filter evaluations performed.
    pub filter_evaluations: u64,
    /// Message copies dropped on overflow.
    pub dropped: u64,
    /// Frames appended to the write-ahead journal.
    pub journal_appends: u64,
    /// Bytes appended to the write-ahead journal.
    pub journal_bytes_appended: u64,
    /// `fdatasync` calls issued by the journal.
    pub journal_fsyncs: u64,
    /// Intact frames recovered from the journal at startup.
    pub journal_frames_recovered: u64,
    /// Journal segments sealed and rotated.
    pub journal_segments_rotated: u64,
}

impl StatsSnapshot {
    /// Counter deltas `self - earlier` (saturating). Recovery happens once
    /// at startup, so `journal_frames_recovered` is carried over as-is
    /// rather than differenced.
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            received: self.received.saturating_sub(earlier.received),
            dispatched: self.dispatched.saturating_sub(earlier.dispatched),
            filter_evaluations: self.filter_evaluations.saturating_sub(earlier.filter_evaluations),
            dropped: self.dropped.saturating_sub(earlier.dropped),
            journal_appends: self.journal_appends.saturating_sub(earlier.journal_appends),
            journal_bytes_appended: self
                .journal_bytes_appended
                .saturating_sub(earlier.journal_bytes_appended),
            journal_fsyncs: self.journal_fsyncs.saturating_sub(earlier.journal_fsyncs),
            journal_frames_recovered: self.journal_frames_recovered,
            journal_segments_rotated: self
                .journal_segments_rotated
                .saturating_sub(earlier.journal_segments_rotated),
        }
    }
}

/// Throughput over a measurement window (messages per second).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Throughput {
    /// Received throughput (messages/s accepted from publishers).
    pub received_per_sec: f64,
    /// Dispatched throughput (message copies/s forwarded to subscribers).
    pub dispatched_per_sec: f64,
    /// Window length in seconds.
    pub window_secs: f64,
}

impl Throughput {
    /// Overall throughput: received + dispatched (the paper's headline
    /// metric in Fig. 4).
    pub fn overall_per_sec(&self) -> f64 {
        self.received_per_sec + self.dispatched_per_sec
    }

    /// Average replication grade over the window
    /// (`dispatched / received`); `None` if nothing was received.
    pub fn replication_grade(&self) -> Option<f64> {
        if self.received_per_sec > 0.0 {
            Some(self.dispatched_per_sec / self.received_per_sec)
        } else {
            None
        }
    }
}

/// Trimmed-window throughput measurement against a live broker.
///
/// Call [`ThroughputProbe::begin`] *after* the warmup phase and
/// [`ThroughputProbe::end`] *before* cooldown; the probe computes rates
/// from counter deltas and elapsed wall-clock time, mirroring the paper's
/// methodology (100 s run, first and last 5 s cut off).
#[derive(Debug)]
pub struct ThroughputProbe {
    start_snapshot: StatsSnapshot,
    started_at: Instant,
}

impl ThroughputProbe {
    /// Starts measuring from the broker's current counter values.
    pub fn begin(broker: &Broker) -> Self {
        Self::start(broker.raw_stats())
    }

    /// Finishes measuring against the same broker and returns the window
    /// throughput.
    pub fn end(self, broker: &Broker) -> Throughput {
        self.finish(broker.raw_stats())
    }

    /// Starts measuring from the current counter values.
    pub fn start(stats: &BrokerStats) -> Self {
        Self { start_snapshot: stats.snapshot(), started_at: Instant::now() }
    }

    /// Finishes measuring and returns the window throughput.
    pub fn finish(self, stats: &BrokerStats) -> Throughput {
        let elapsed = self.started_at.elapsed().as_secs_f64().max(1e-9);
        let delta = stats.snapshot().delta(&self.start_snapshot);
        Throughput {
            received_per_sec: delta.received as f64 / elapsed,
            dispatched_per_sec: delta.dispatched as f64 / elapsed,
            window_secs: elapsed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = BrokerStats::new();
        s.record_received();
        s.record_received();
        s.record_dispatched(5);
        s.record_filter_evaluations(7);
        s.record_dropped();
        s.record_retained();
        s.record_expired_message();
        assert_eq!(s.retained(), 1);
        assert_eq!(s.expired_messages(), 1);
        assert_eq!(s.received(), 2);
        assert_eq!(s.dispatched(), 5);
        assert_eq!(s.filter_evaluations(), 7);
        assert_eq!(s.dropped(), 1);
    }

    #[test]
    fn journal_gauges_mirror_journal_stats() {
        let s = BrokerStats::new();
        assert_eq!(s.journal_appends(), 0);
        s.update_journal(&JournalStats {
            appends: 12,
            bytes_appended: 340,
            fsyncs: 3,
            frames_recovered: 7,
            torn_bytes_truncated: 0,
            segments_rotated: 2,
            segments_removed: 0,
        });
        assert_eq!(s.journal_appends(), 12);
        assert_eq!(s.journal_bytes_appended(), 340);
        assert_eq!(s.journal_fsyncs(), 3);
        assert_eq!(s.journal_frames_recovered(), 7);
        assert_eq!(s.journal_segments_rotated(), 2);
        let snap = s.snapshot();
        assert_eq!(snap.journal_appends, 12);
        // Recovery is a startup-time fact, not a rate: delta keeps it.
        let d = snap.delta(&snap);
        assert_eq!(d.journal_appends, 0);
        assert_eq!(d.journal_frames_recovered, 7);
    }

    #[test]
    fn snapshot_delta() {
        let s = BrokerStats::new();
        s.record_received();
        let a = s.snapshot();
        s.record_received();
        s.record_dispatched(3);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.received, 1);
        assert_eq!(d.dispatched, 3);
    }

    #[test]
    fn throughput_derived_metrics() {
        let t = Throughput { received_per_sec: 100.0, dispatched_per_sec: 500.0, window_secs: 1.0 };
        assert_eq!(t.overall_per_sec(), 600.0);
        assert_eq!(t.replication_grade(), Some(5.0));
        let idle = Throughput { received_per_sec: 0.0, dispatched_per_sec: 0.0, window_secs: 1.0 };
        assert_eq!(idle.replication_grade(), None);
    }

    #[test]
    fn probe_measures_deltas_only() {
        let s = BrokerStats::new();
        s.record_received(); // before the probe starts — must not count
        let probe = ThroughputProbe::start(&s);
        for _ in 0..10 {
            s.record_received();
            s.record_dispatched(2);
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        let t = probe.finish(&s);
        assert!(t.window_secs >= 0.02);
        assert!((t.replication_grade().unwrap() - 2.0).abs() < 1e-12);
        assert!(t.received_per_sec > 0.0 && t.received_per_sec < 10.0 / 0.02);
    }
}
