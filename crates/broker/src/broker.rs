//! The broker: topic registry, dispatcher thread, publisher and subscriber
//! handles.
//!
//! The broker mirrors the structure the paper measured:
//!
//! * Publishers send messages into one bounded *publish queue*; when the
//!   server cannot keep up, the full queue blocks publishers — the push-back
//!   mechanism the paper observed (no server-side loss).
//! * A single *dispatcher thread* (the paper's server is CPU-bound on a
//!   single-CPU machine) pops each message, evaluates **every** subscription
//!   filter of the message's topic — FioranoMQ performs no filter-identity
//!   optimization, and the paper verified identical and distinct filters cost
//!   the same — and enqueues one copy per matching subscriber.
//! * Subscribers consume from bounded per-subscription queues.
//!
//! With a [`CostModel`](crate::cost::CostModel) installed, the dispatcher
//! additionally burns `t_rcv` per message, `t_fltr` per filter evaluation and
//! `t_tx` per forwarded copy, so a saturated broker reproduces Eq. 1 in wall
//! clock time.
//!
//! With [`MetricsConfig`](crate::config::MetricsConfig) installed, the
//! dispatcher measures itself: per-message waiting, service and sojourn
//! times land in lock-free histograms (see [`crate::metrics`]), with the
//! Eq. 1 stage decomposition sampled every Nth message.

use crate::config::{BrokerConfig, MetricsConfig, OverflowPolicy};
use crate::error::{Error, TryPublishError};
use crate::filter::Filter;
use crate::message::Message;
use crate::metrics::{time_stage, BrokerMetrics, DispatchTimer, DispatcherScratch};
use crate::pattern::TopicPattern;
use crate::persist::{encode_publish, JournalRecord};
use crate::stats::{
    BrokerSnapshot, BrokerStats, MessageCounters, ShardSnapshot, SubscriptionCounters,
};
use crate::topic_obs::{TopicObsScratch, TopicObservatory, TopicObservatorySnapshot};
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError, TrySendError};
use parking_lot::{Mutex, RwLock};
use rjms_core::{
    CostParams, DriftTolerance, ModelMonitor, ModelVerdict, ReplicationModel, ServerModel,
};
use rjms_flow::{AdmissionOutcome, FlowGate};
use rjms_journal::Journal;
use rjms_metrics::{labeled, Counter, MetricsRegistry};
use rjms_trace::{FlightRecorder, SpanEvent, Stage};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Unique id of a subscription within a broker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(u64);

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub-{}", self.0)
    }
}

/// One subscriber's registration on a topic.
struct Subscription {
    filter: Filter,
    sender: Sender<Arc<Message>>,
    /// Cleared when the subscriber handle is dropped; the dispatcher prunes
    /// inactive subscriptions lazily.
    active: Arc<AtomicBool>,
}

/// A topic: a named set of subscriptions plus named durable subscriptions.
struct Topic {
    name: String,
    /// The dispatcher shard this topic is pinned to ([`shard_of`]); all of
    /// a topic's messages flow through one dispatcher, preserving
    /// per-topic FIFO order under sharded dispatch.
    shard: usize,
    subscriptions: RwLock<Vec<Arc<Subscription>>>,
    durables: RwLock<Vec<Arc<DurableState>>>,
    received: AtomicU64,
    dispatched: AtomicU64,
}

impl Topic {
    fn new(name: &str, shard: usize) -> Self {
        Self {
            name: name.to_owned(),
            shard,
            subscriptions: RwLock::new(Vec::new()),
            durables: RwLock::new(Vec::new()),
            received: AtomicU64::new(0),
            dispatched: AtomicU64::new(0),
        }
    }
}

/// Maps a topic name onto a dispatcher shard: a stable FNV-1a hash of the
/// name modulo the shard count. The assignment is a pure function of
/// `(name, shards)`, so it survives restarts and journal recovery, and
/// workload generators can construct topic names that land on chosen
/// shards.
///
/// With `shards == 1` every topic maps to shard 0 (the single-dispatcher
/// broker).
///
/// # Panics
///
/// Panics if `shards` is zero.
///
/// # Examples
///
/// ```
/// use rjms_broker::shard_of;
///
/// assert_eq!(shard_of("orders.eu", 1), 0);
/// let s = shard_of("orders.eu", 4);
/// assert!(s < 4);
/// // Stable: the same name always lands on the same shard.
/// assert_eq!(s, shard_of("orders.eu", 4));
/// ```
pub fn shard_of(topic: &str, shards: usize) -> usize {
    assert!(shards > 0, "shards must be > 0");
    if shards == 1 {
        return 0;
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in topic.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    (hash % shards as u64) as usize
}

/// Per-topic message counters (see [`BrokerSnapshot::per_topic`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopicStats {
    /// Messages received on this topic.
    pub received: u64,
    /// Message copies dispatched from this topic.
    pub dispatched: u64,
}

impl TopicStats {
    /// Mean replication grade on this topic; `None` before the first
    /// message.
    pub fn replication_grade(&self) -> Option<f64> {
        if self.received > 0 {
            Some(self.dispatched as f64 / self.received as f64)
        } else {
            None
        }
    }
}

/// Server-side state of a named durable subscription (paper §II-A: in the
/// durable mode, messages are also forwarded to subscribers that are
/// currently not connected — the broker retains them).
struct DurableState {
    name: String,
    filter: Mutex<Filter>,
    /// Messages retained while no consumer is connected (bounded by
    /// `durable_buffer_capacity`, oldest dropped on overflow).
    retained: Mutex<VecDeque<Arc<Message>>>,
    /// The connected consumer's queue, if any.
    connection: Mutex<Option<Sender<Arc<Message>>>>,
}

/// Work items for the dispatcher thread.
enum DispatchItem {
    Publish {
        topic: Arc<Topic>,
        message: Arc<Message>,
        /// Publish-queue entry time; `Some` only with metrics enabled so
        /// the no-metrics dispatch path stays free of clock reads.
        enqueued_at: Option<u64>,
    },
    Shutdown,
}

/// One dispatcher shard's message counters, recorded by that shard's
/// dispatcher alone (plain relaxed atomics; no cross-shard contention).
#[derive(Default)]
struct ShardStats {
    received: AtomicU64,
    dispatched: AtomicU64,
    filter_evaluations: AtomicU64,
}

/// Shared broker state.
struct BrokerInner {
    config: BrokerConfig,
    stats: Arc<BrokerStats>,
    /// Per-shard message counters, one slot per dispatcher; length equals
    /// the configured shard count.
    shard_stats: Vec<ShardStats>,
    /// When the broker started; per-shard arrival rates in
    /// [`Broker::shard_reports`] are derived against this origin, matching
    /// the flow-refresh loop's convention.
    started: Instant,
    topics: RwLock<HashMap<String, Arc<Topic>>>,
    /// Wildcard subscriptions, attached to future topics on creation.
    patterns: RwLock<Vec<PatternSubscription>>,
    next_subscription_id: AtomicU64,
    stopped: AtomicBool,
    /// The write-ahead journal, when persistence is enabled. The dispatcher
    /// appends publishes and checkpoints; API threads append topology
    /// records (topic/durable lifecycle).
    journal: Option<Mutex<Journal>>,
    /// Live instruments, when metrics are enabled.
    metrics: Option<BrokerMetrics>,
    /// The span-event flight recorder, when tracing is enabled. The
    /// dispatcher commits broker-stage chains; the net layer appends
    /// wire-flush events for sampled trace ids.
    tracer: Option<Arc<FlightRecorder>>,
    /// The admission gate, when flow control is enabled. Publishers
    /// consult it before enqueueing; the flow-refresh thread re-calibrates
    /// its arrival budget against the live histograms.
    flow: Option<Arc<FlowGate>>,
    /// Id source for publisher handles: the flow gate rate-limits per
    /// producer, so each [`Broker::publisher`] call gets a fresh identity.
    next_producer_id: AtomicU64,
    /// The per-topic workload observatory, when enabled. Dispatchers stage
    /// observations thread-locally and merge on the histogram-flush
    /// cadence; snapshots feed the `/topics` endpoint and the skew
    /// analyzer.
    topic_obs: Option<TopicObservatory>,
}

impl BrokerInner {
    /// Appends one record to the journal (no-op without persistence),
    /// refreshing the journal gauges in [`BrokerStats`]. Returns the
    /// record's journal offset.
    ///
    /// A journal write failure is fatal: the broker cannot honor the
    /// durability contract without its write-ahead log.
    fn append_record(&self, payload: &[u8]) -> Option<u64> {
        let journal = self.journal.as_ref()?;
        let mut journal = journal.lock();
        let offset = journal
            .append(payload)
            .expect("write-ahead journal append failed; cannot continue durably");
        self.stats.update_journal(&journal.stats());
        Some(offset)
    }

    /// Forces the journal to stable storage (no-op without persistence).
    fn sync_journal(&self) {
        if let Some(journal) = &self.journal {
            let mut journal = journal.lock();
            journal.sync().expect("write-ahead journal sync failed; cannot continue durably");
            self.stats.update_journal(&journal.stats());
        }
    }
}

/// A wildcard subscription waiting to be attached to future topics.
struct PatternSubscription {
    pattern: TopicPattern,
    subscription: Weak<Subscription>,
}

/// A JMS-style publish/subscribe message broker.
///
/// # Examples
///
/// ```
/// use rjms_broker::{Broker, BrokerConfig, Filter, Message};
///
/// # fn main() -> Result<(), rjms_broker::Error> {
/// let broker = Broker::start(BrokerConfig::default());
/// broker.create_topic("presence")?;
///
/// let subscriber = broker
///     .subscription("presence")
///     .filter(Filter::selector("user = 'alice'").unwrap())
///     .open()?;
/// let publisher = broker.publisher("presence")?;
/// publisher.publish(Message::builder().property("user", "alice").build())?;
///
/// let received = subscriber.receive_timeout(std::time::Duration::from_secs(1));
/// assert!(received.is_some());
/// broker.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct Broker {
    inner: Arc<BrokerInner>,
    /// One bounded publish queue per dispatcher shard; a topic's messages
    /// always enter `publish_txs[topic.shard]`.
    publish_txs: Vec<Sender<DispatchItem>>,
    /// The dispatcher threads, one per shard; joined on shutdown.
    dispatchers: Vec<JoinHandle<()>>,
    /// The flow-refresh thread, when flow control is enabled; joined on
    /// shutdown like the dispatchers.
    flow_refresh: Option<JoinHandle<()>>,
}

impl fmt::Debug for Broker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Broker")
            .field("topics", &self.topic_names())
            .field("stopped", &self.inner.stopped.load(Ordering::Relaxed))
            .finish()
    }
}

impl Broker {
    /// Starts a broker with the given configuration; spawns the dispatcher
    /// thread.
    ///
    /// With [`BrokerConfig::persistence`] set, the write-ahead journal is
    /// opened (truncating a torn tail back to the last whole frame) and
    /// replayed: topics and durable subscriptions are re-created and
    /// messages published but not yet checkpointed as delivered go back
    /// into each durable subscription's retained backlog, ready for
    /// re-delivery on the next connect.
    ///
    /// # Panics
    ///
    /// Panics if the journal cannot be opened or replayed (I/O failure or
    /// corruption in a sealed segment) — a broker that cannot read its
    /// write-ahead log must not silently start empty.
    pub fn start(config: BrokerConfig) -> Broker {
        let mut config = config;
        // Defensive: the builder rejects zero, but the fields are public.
        let shards = config.shards.max(1);
        config.shards = shards;
        // Tracing tail-samples against the live sojourn histogram, so it
        // cannot run without metrics: enable the default set implicitly.
        if config.trace.is_some() && config.metrics.is_none() {
            config.metrics = Some(MetricsConfig::default());
        }
        // The flow controller re-calibrates against the live waiting and
        // service histograms, so it cannot run without metrics either.
        if config.flow.is_some() && config.metrics.is_none() {
            config.metrics = Some(MetricsConfig::default());
        }
        // The topic observatory regresses over the dispatcher's per-message
        // service timings, so it too needs metrics.
        if config.topic_obs.is_some() && config.metrics.is_none() {
            config.metrics = Some(MetricsConfig::default());
        }
        // The admission budget is split per shard (each dispatcher is one
        // M/GI/1 server); keep the flow controller's shard count in sync
        // with the broker's so the aggregate budget scales with N.
        if let Some(flow) = &mut config.flow {
            flow.shards = shards as u32;
        }
        let stats = Arc::new(BrokerStats::new());
        let mut topics = HashMap::new();
        let journal = config.persistence.as_ref().map(|persistence| {
            let (journal, _report) = Journal::open(persistence.journal.clone())
                .expect("failed to open the write-ahead journal");
            topics = recover_topics(&journal, &config);
            stats.update_journal(&journal.stats());
            Mutex::new(journal)
        });
        let metrics = config.metrics.map(|m| BrokerMetrics::new(m.stage_sample_every));
        if let (Some(metrics), Some(journal)) = (&metrics, &journal) {
            // The journal's always-on latency instruments surface in the
            // broker's registry under the `journal.*` names.
            let journal = journal.lock();
            metrics.registry.register_histogram("journal.append_ns", journal.append_latency());
            metrics.registry.register_histogram("journal.fsync_ns", journal.fsync_latency());
        }

        let tracer = config.trace.map(|t| Arc::new(FlightRecorder::new(t.capacity)));

        let flow = config.flow.map(|f| Arc::new(FlowGate::new(f)));
        if let (Some(gate), Some(metrics)) = (&flow, &metrics) {
            gate.bind_registry(&metrics.registry);
        }

        // The observatory's verdict anchor follows the same resolution as
        // the shard reports: the flow model's calibrated params when flow
        // control is on, the synthetic cost model otherwise, none when the
        // broker runs at native speed unmodeled.
        let topic_obs = config.topic_obs.map(|t| {
            let anchor = if let Some(f) = &config.flow {
                Some(f.params)
            } else {
                config.cost_model.map(|c| CostParams {
                    t_rcv: c.t_rcv,
                    t_fltr: c.t_fltr,
                    t_tx: c.t_tx,
                    t_store: 0.0,
                })
            };
            TopicObservatory::new(t, anchor, shards)
        });

        let mut publish_txs = Vec::with_capacity(shards);
        let mut publish_rxs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = bounded(config.publish_queue_capacity);
            publish_txs.push(tx);
            publish_rxs.push(rx);
        }
        let inner = Arc::new(BrokerInner {
            config,
            stats,
            shard_stats: (0..shards).map(|_| ShardStats::default()).collect(),
            started: Instant::now(),
            topics: RwLock::new(topics),
            patterns: RwLock::new(Vec::new()),
            next_subscription_id: AtomicU64::new(1),
            stopped: AtomicBool::new(false),
            journal,
            metrics,
            tracer,
            flow,
            next_producer_id: AtomicU64::new(1),
            topic_obs,
        });
        let dispatchers = publish_rxs
            .into_iter()
            .enumerate()
            .map(|(shard, publish_rx)| {
                let dispatcher_inner = Arc::clone(&inner);
                // Keep the historical thread name for the single-dispatcher
                // broker; sharded dispatchers are numbered.
                let name = if shards == 1 {
                    "rjms-dispatcher".to_owned()
                } else {
                    format!("rjms-dispatcher-{shard}")
                };
                std::thread::Builder::new()
                    .name(name)
                    .spawn(move || dispatch_loop(dispatcher_inner, shard, publish_rx))
                    .expect("failed to spawn dispatcher thread")
            })
            .collect();
        let flow_refresh = inner.flow.as_ref().map(|gate| {
            let gate = Arc::clone(gate);
            let refresh_inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("rjms-flow-refresh".to_owned())
                .spawn(move || flow_refresh_loop(&refresh_inner, &gate))
                .expect("failed to spawn flow-refresh thread")
        });
        Broker { inner, publish_txs, dispatchers, flow_refresh }
    }

    /// Creates a topic.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TopicExists`] for duplicates,
    /// [`Error::InvalidTopicName`] for empty/control-character names, and
    /// [`Error::Stopped`] after shutdown.
    pub fn create_topic(&self, name: &str) -> Result<(), Error> {
        self.ensure_running()?;
        if name.is_empty() || name.chars().any(|c| c.is_control()) {
            return Err(Error::InvalidTopicName { topic: name.to_owned() });
        }
        let mut topics = self.inner.topics.write();
        if topics.contains_key(name) {
            return Err(Error::TopicExists { topic: name.to_owned() });
        }
        let topic = Arc::new(Topic::new(name, shard_of(name, self.inner.config.shards)));
        // Attach live wildcard subscriptions that match the new topic,
        // pruning dead pattern entries on the way.
        {
            let mut patterns = self.inner.patterns.write();
            patterns.retain(|p| match p.subscription.upgrade() {
                Some(sub) if sub.active.load(Ordering::Relaxed) => {
                    if p.pattern.matches(name) {
                        topic.subscriptions.write().push(sub);
                    }
                    true
                }
                _ => false,
            });
        }
        // Logged while holding the topics lock so the TopicCreated record
        // precedes any Publish record for this topic in journal order.
        self.inner.append_record(&JournalRecord::TopicCreated { topic: name.to_owned() }.encode());
        topics.insert(name.to_owned(), topic);
        Ok(())
    }

    /// The names of all topics, sorted.
    pub fn topic_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.topics.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// The number of live subscriptions on a topic (0 for unknown topics).
    pub fn subscription_count(&self, topic: &str) -> usize {
        match self.inner.topics.read().get(topic) {
            None => 0,
            Some(t) => {
                t.subscriptions.read().iter().filter(|s| s.active.load(Ordering::Relaxed)).count()
            }
        }
    }

    /// Creates a publisher handle for a topic.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TopicNotFound`] for unknown topics and
    /// [`Error::Stopped`] after shutdown.
    pub fn publisher(&self, topic: &str) -> Result<Publisher, Error> {
        self.ensure_running()?;
        let topic = self.lookup(topic)?;
        // Bind the handle to the topic's own shard queue: routing is
        // resolved once here, not per publish.
        let publish_tx = self.publish_txs[topic.shard].clone();
        Ok(Publisher {
            topic,
            publish_tx,
            inner: Arc::clone(&self.inner),
            producer_id: self.inner.next_producer_id.fetch_add(1, Ordering::Relaxed),
        })
    }

    /// Starts building a subscription on a topic or topic pattern.
    ///
    /// `target` is either a literal topic name (`orders.eu`) or a
    /// hierarchical wildcard pattern (`orders.*`, `sensors.>`); wildcards
    /// subscribe to every matching topic, current and future. Configure the
    /// subscription with [`SubscriptionBuilder::filter`],
    /// [`SubscriptionBuilder::durable`] and
    /// [`SubscriptionBuilder::queue_capacity`], then call
    /// [`SubscriptionBuilder::open`].
    ///
    /// This replaces the `subscribe` / `subscribe_pattern` /
    /// `subscribe_durable` trio.
    ///
    /// # Examples
    ///
    /// ```
    /// use rjms_broker::{Broker, BrokerConfig, Filter};
    ///
    /// # fn main() -> Result<(), rjms_broker::Error> {
    /// let broker = Broker::start(BrokerConfig::default());
    /// broker.create_topic("orders.eu")?;
    ///
    /// // Non-durable subscription on one topic:
    /// let plain = broker.subscription("orders.eu").open()?;
    /// // Filtered wildcard subscription over present and future topics:
    /// let wild = broker
    ///     .subscription("orders.*")
    ///     .filter(Filter::selector("amount > 100").unwrap())
    ///     .open()?;
    /// // Durable subscription with a private queue bound:
    /// let durable = broker
    ///     .subscription("orders.eu")
    ///     .durable("audit")
    ///     .queue_capacity(128)
    ///     .open()?;
    /// # drop((plain, wild, durable));
    /// # Ok(())
    /// # }
    /// ```
    pub fn subscription(&self, target: &str) -> SubscriptionBuilder<'_> {
        SubscriptionBuilder {
            broker: self,
            target: target.to_owned(),
            filter: Filter::None,
            durable: None,
            queue_capacity: None,
        }
    }

    /// Opens a non-durable subscription on one literal topic (the paper's
    /// *non-durable* mode: messages are only forwarded to subscribers that
    /// are presently online). The subscription is removed automatically
    /// when the returned [`Subscriber`] is dropped.
    fn open_literal(
        &self,
        topic: &str,
        filter: Filter,
        queue_capacity: usize,
    ) -> Result<Subscriber, Error> {
        self.ensure_running()?;
        let topic = self.lookup(topic)?;
        let (tx, rx) = bounded(queue_capacity);
        let id = SubscriptionId(self.inner.next_subscription_id.fetch_add(1, Ordering::Relaxed));
        let active = Arc::new(AtomicBool::new(true));
        let sub = Arc::new(Subscription { filter, sender: tx, active: Arc::clone(&active) });
        topic.subscriptions.write().push(sub);
        Ok(Subscriber {
            id,
            topic_name: topic.name.clone(),
            receiver: rx,
            active,
            durable: None,
            pending: Mutex::new(VecDeque::new()),
            pattern_registration: None,
        })
    }

    /// Opens a subscription on every topic — current *and future* — whose
    /// name matches a hierarchical [`TopicPattern`] (`orders.*`,
    /// `sensors.>`). All matching topics feed the one returned
    /// [`Subscriber`]; dropping it cancels the subscription everywhere.
    /// Unknown (not-yet-created) topics are not an error — matching is by
    /// pattern.
    fn open_pattern(
        &self,
        pattern: &TopicPattern,
        filter: Filter,
        queue_capacity: usize,
    ) -> Result<Subscriber, Error> {
        self.ensure_running()?;
        let (tx, rx) = bounded(queue_capacity);
        let id = SubscriptionId(self.inner.next_subscription_id.fetch_add(1, Ordering::Relaxed));
        let active = Arc::new(AtomicBool::new(true));
        let sub = Arc::new(Subscription { filter, sender: tx, active: Arc::clone(&active) });

        // Attach to all existing matching topics.
        {
            let topics = self.inner.topics.read();
            for (name, topic) in topics.iter() {
                if pattern.matches(name) {
                    topic.subscriptions.write().push(Arc::clone(&sub));
                }
            }
        }
        // Register for topics created later.
        self.inner.patterns.write().push(PatternSubscription {
            pattern: pattern.clone(),
            subscription: Arc::downgrade(&sub),
        });

        Ok(Subscriber {
            id,
            topic_name: pattern.to_string(),
            receiver: rx,
            active,
            durable: None,
            pending: Mutex::new(VecDeque::new()),
            // The topic lists only hold clones for *currently existing*
            // matching topics; the handle itself must keep the
            // registration alive so a pattern matching no topic yet still
            // catches the first one created.
            pattern_registration: Some(sub),
        })
    }

    /// Connects to (or creates) a durable subscription.
    ///
    /// While no consumer is connected, matching messages are retained (up
    /// to [`crate::BrokerConfig::durable_buffer_capacity`], oldest dropped)
    /// and delivered ahead of live traffic on the next connect — the
    /// paper's *durable mode*. Reconnecting with a *different* filter
    /// discards the retained backlog, matching JMS's change-of-selector
    /// semantics. Retained messages whose TTL has elapsed by the time of
    /// reconnection are discarded, not delivered.
    fn open_durable(
        &self,
        topic: &str,
        name: &str,
        filter: Filter,
        queue_capacity: usize,
    ) -> Result<Subscriber, Error> {
        self.ensure_running()?;
        let topic = self.lookup(topic)?;
        let (tx, rx) = bounded(queue_capacity);
        let id = SubscriptionId(self.inner.next_subscription_id.fetch_add(1, Ordering::Relaxed));

        let mut durables = topic.durables.write();
        let state = match durables.iter().find(|d| d.name == name) {
            Some(existing) => {
                let mut connection = existing.connection.lock();
                if connection.is_some() {
                    return Err(Error::DurableNameInUse {
                        topic: topic.name.clone(),
                        name: name.to_owned(),
                    });
                }
                let mut existing_filter = existing.filter.lock();
                if *existing_filter != filter {
                    // JMS: changing the selector is equivalent to deleting
                    // and recreating the subscription. A re-registration
                    // record makes replay discard the stale backlog too.
                    existing.retained.lock().clear();
                    *existing_filter = filter.clone();
                    self.inner.append_record(
                        &JournalRecord::DurableRegistered {
                            topic: topic.name.clone(),
                            name: name.to_owned(),
                            filter,
                        }
                        .encode(),
                    );
                }
                *connection = Some(tx);
                Arc::clone(existing)
            }
            None => {
                let state = Arc::new(DurableState {
                    name: name.to_owned(),
                    filter: Mutex::new(filter.clone()),
                    retained: Mutex::new(VecDeque::new()),
                    connection: Mutex::new(Some(tx)),
                });
                durables.push(Arc::clone(&state));
                self.inner.append_record(
                    &JournalRecord::DurableRegistered {
                        topic: topic.name.clone(),
                        name: name.to_owned(),
                        filter,
                    }
                    .encode(),
                );
                state
            }
        };

        // Move the retained backlog into the subscriber handle; it is
        // consumed before live messages.
        let pending: VecDeque<Arc<Message>> = {
            let mut retained = state.retained.lock();
            retained.drain(..).filter(|m| !m.is_expired()).collect()
        };

        Ok(Subscriber {
            id,
            topic_name: topic.name.clone(),
            receiver: rx,
            active: Arc::new(AtomicBool::new(true)),
            durable: Some(Arc::clone(&state)),
            pending: Mutex::new(pending),
            pattern_registration: None,
        })
    }

    /// Permanently removes a durable subscription and its retained
    /// messages.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DurableStillConnected`] while a consumer is
    /// connected and [`Error::DurableNotFound`] for unknown names.
    pub fn unsubscribe_durable(&self, topic: &str, name: &str) -> Result<(), Error> {
        self.ensure_running()?;
        let topic = self.lookup(topic)?;
        let mut durables = topic.durables.write();
        let Some(index) = durables.iter().position(|d| d.name == name) else {
            return Err(Error::DurableNotFound {
                topic: topic.name.clone(),
                name: name.to_owned(),
            });
        };
        if durables[index].connection.lock().is_some() {
            return Err(Error::DurableStillConnected {
                topic: topic.name.clone(),
                name: name.to_owned(),
            });
        }
        durables.remove(index);
        self.inner.append_record(
            &JournalRecord::DurableUnsubscribed {
                topic: topic.name.clone(),
                name: name.to_owned(),
            }
            .encode(),
        );
        Ok(())
    }

    /// The names of all durable subscriptions on a topic, sorted.
    pub fn durable_names(&self, topic: &str) -> Vec<String> {
        match self.inner.topics.read().get(topic) {
            None => Vec::new(),
            Some(t) => {
                let mut names: Vec<String> =
                    t.durables.read().iter().map(|d| d.name.clone()).collect();
                names.sort();
                names
            }
        }
    }

    /// Whether a consumer is currently connected to the named durable
    /// subscription (`false` for unknown names).
    pub fn durable_connected(&self, topic: &str, name: &str) -> bool {
        self.inner
            .topics
            .read()
            .get(topic)
            .map(|t| {
                t.durables.read().iter().any(|d| d.name == name && d.connection.lock().is_some())
            })
            .unwrap_or(false)
    }

    /// The number of messages currently retained for a disconnected
    /// durable subscription (0 for unknown names).
    pub fn retained_count(&self, topic: &str, name: &str) -> usize {
        self.inner
            .topics
            .read()
            .get(topic)
            .and_then(|t| {
                t.durables.read().iter().find(|d| d.name == name).map(|d| d.retained.lock().len())
            })
            .unwrap_or(0)
    }

    /// A typed point-in-time snapshot of the whole broker: message
    /// counters, subscription counts, journal state and per-topic
    /// statistics. This replaces the `stats` / `journal_stats` /
    /// `topic_stats` getter trio.
    ///
    /// # Examples
    ///
    /// ```
    /// use rjms_broker::{Broker, BrokerConfig};
    ///
    /// # fn main() -> Result<(), rjms_broker::Error> {
    /// let broker = Broker::start(BrokerConfig::default());
    /// broker.create_topic("t")?;
    /// let snap = broker.snapshot();
    /// assert_eq!(snap.messages.received, 0);
    /// assert_eq!(snap.subscriptions.topics, 1);
    /// assert!(snap.journal.is_none()); // no persistence configured
    /// assert!(snap.per_topic.contains_key("t"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn snapshot(&self) -> BrokerSnapshot {
        snapshot_of(&self.inner)
    }

    /// An owned, cloneable observer for reading [`Broker::snapshot`] from
    /// another thread (e.g. a metrics exporter) without borrowing the
    /// broker handle. Holding one does not delay the broker's shutdown.
    pub fn observer(&self) -> BrokerObserver {
        BrokerObserver { inner: Arc::clone(&self.inner) }
    }

    /// Per-shard model assessments: each dispatcher shard's measured
    /// operating point compared against Eq. 1 + M/GI/1 evaluated for that
    /// shard alone (see [`ShardReport`]).
    ///
    /// Requires metrics plus a cost anchor ([`BrokerConfig::flow`] or
    /// [`BrokerConfig::cost_model`]); returns an empty vector otherwise.
    /// With `shards == 1` the single report covers the whole broker.
    pub fn shard_reports(&self) -> Vec<ShardReport> {
        shard_reports_of(&self.inner)
    }

    /// The broker's metrics registry, when [`BrokerConfig::metrics`] is
    /// set; `None` otherwise. Instrument names are documented in
    /// [`crate::metrics`].
    pub fn metrics(&self) -> Option<MetricsRegistry> {
        self.inner.metrics.as_ref().map(|m| m.registry.clone())
    }

    /// The broker's span-event flight recorder, when
    /// [`BrokerConfig::trace`] is set; `None` otherwise. The net layer
    /// appends wire-flush events to it; exposition layers snapshot it.
    pub fn tracer(&self) -> Option<Arc<FlightRecorder>> {
        self.inner.tracer.clone()
    }

    /// The broker's admission gate, when [`BrokerConfig::flow`] is set;
    /// `None` otherwise. Exposes the live calibration via
    /// [`FlowGate::snapshot`] for exposition layers (the `/flow` HTTP
    /// endpoint, `rjms-top`).
    pub fn flow(&self) -> Option<Arc<FlowGate>> {
        self.inner.flow.clone()
    }

    /// A point-in-time snapshot of the per-topic workload observatory,
    /// when [`BrokerConfig::topic_obs`] is set; `None` otherwise. Carries
    /// per-topic arrival rates, fitted Eq. 1 cost parameters and
    /// drift verdicts (see [`TopicObservatorySnapshot`]).
    pub fn topic_observatory(&self) -> Option<TopicObservatorySnapshot> {
        self.inner.topic_obs.as_ref().map(|o| o.snapshot())
    }

    /// The raw shared counters, for crate-internal probes.
    pub(crate) fn raw_stats(&self) -> &BrokerStats {
        &self.inner.stats
    }

    /// Stops the broker: publishers fail fast, the dispatcher drains the
    /// publish queue and exits, and this call joins it.
    ///
    /// Queued messages are still *delivered* during the drain (the paper's
    /// persistent mode: no server-side loss). Consequently, under
    /// [`OverflowPolicy::Block`] this call waits for slow subscribers —
    /// drop subscribers that will never drain before shutting down, or use
    /// [`OverflowPolicy::DropNew`] for lossy teardown.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        // ORD: SeqCst swap — shutdown runs once per broker lifetime, so
        // the strongest ordering is free and makes the stop flag a clean
        // happens-before anchor for every dispatcher's load.
        if self.inner.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        // Each dispatcher drains its queued items and exits on Shutdown.
        for tx in &self.publish_txs {
            let _ = tx.send(DispatchItem::Shutdown);
        }
        for handle in self.dispatchers.drain(..) {
            let _ = handle.join();
        }
        // The refresh thread polls `stopped` between sleep slices.
        if let Some(handle) = self.flow_refresh.take() {
            let _ = handle.join();
        }
    }

    fn ensure_running(&self) -> Result<(), Error> {
        if self.inner.stopped.load(Ordering::Relaxed) {
            Err(Error::Stopped)
        } else {
            Ok(())
        }
    }

    fn lookup(&self, name: &str) -> Result<Arc<Topic>, Error> {
        self.inner
            .topics
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::TopicNotFound { topic: name.to_owned() })
    }
}

impl Drop for Broker {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Builds a [`BrokerSnapshot`] from the shared broker state; the one
/// implementation behind [`Broker::snapshot`] and [`BrokerObserver`].
fn snapshot_of(inner: &BrokerInner) -> BrokerSnapshot {
    let stats = &inner.stats;
    let topics = inner.topics.read();
    let mut per_topic = BTreeMap::new();
    let mut live = 0usize;
    let mut durable = 0usize;
    for (name, t) in topics.iter() {
        live += t.subscriptions.read().iter().filter(|s| s.active.load(Ordering::Relaxed)).count();
        durable += t.durables.read().len();
        per_topic.insert(
            name.clone(),
            TopicStats {
                received: t.received.load(Ordering::Relaxed),
                dispatched: t.dispatched.load(Ordering::Relaxed),
            },
        );
    }
    BrokerSnapshot {
        messages: MessageCounters {
            received: stats.received(),
            dispatched: stats.dispatched(),
            filter_evaluations: stats.filter_evaluations(),
            dropped: stats.dropped(),
            retained: stats.retained(),
            expired: stats.expired_messages(),
        },
        subscriptions: SubscriptionCounters {
            topics: topics.len(),
            live,
            durable,
            expired: stats.expired_subscriptions(),
        },
        journal: inner.journal.as_ref().map(|j| j.lock().stats()),
        flow: inner.flow.as_ref().map(|_| stats.flow_counters()),
        shards: (inner.config.shards > 1).then(|| {
            let mut topics_per = vec![0usize; inner.shard_stats.len()];
            for t in topics.values() {
                topics_per[t.shard] += 1;
            }
            inner
                .shard_stats
                .iter()
                .enumerate()
                .map(|(shard, s)| ShardSnapshot {
                    shard,
                    topics: topics_per[shard],
                    received: s.received.load(Ordering::Relaxed),
                    dispatched: s.dispatched.load(Ordering::Relaxed),
                    filter_evaluations: s.filter_evaluations.load(Ordering::Relaxed),
                })
                .collect()
        }),
        per_topic,
        topics_overflowed: stats.topics_overflowed(),
    }
}

/// Periodically re-calibrates the flow gate's arrival budget from the
/// live waiting/service histograms: every refresh interval it snapshots
/// the registry, rebuilds a [`ModelMonitor`] at the *measured* operating
/// point (mean filter count and replication grade from the broker's own
/// counters), and feeds the verdict to [`FlowGate::refresh`] — drift
/// re-derives λ_max from measured moments, overload tightens the budget.
fn flow_refresh_loop(inner: &BrokerInner, gate: &FlowGate) {
    let Some(metrics) = &inner.metrics else { return };
    let config = *gate.config();
    let interval = Duration::from_millis(config.refresh_interval_ms.max(1));
    let started = Instant::now();
    loop {
        // Sleep in short slices so shutdown is prompt.
        let deadline = Instant::now() + interval;
        while Instant::now() < deadline {
            if inner.stopped.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        let snap = metrics.registry.snapshot();
        let (Some(waiting), Some(service)) =
            (snap.histogram("broker.waiting_ns"), snap.histogram("broker.service_ns"))
        else {
            continue;
        };
        let received = inner.stats.received();
        if received == 0 {
            continue;
        }
        let filters = (inner.stats.filter_evaluations() / received).min(u64::from(u32::MAX));
        let grade = inner.stats.dispatched() as f64 / received as f64;
        // Journal-aware budget: with persistence on, feed the *measured*
        // per-message store cost (mean append plus amortized fsync time)
        // into the gate's analytic seed, closing Eq. 1's t_store term
        // over the live journal instead of a configured guess.
        if inner.journal.is_some() {
            if let Some(append) = snap.histogram("journal.append_ns") {
                if append.count > 0 {
                    let mut store_ns = append.mean();
                    if let Some(fsync) = snap.histogram("journal.fsync_ns") {
                        store_ns += fsync.mean() * fsync.count as f64 / append.count as f64;
                    }
                    gate.reseed_store_cost(store_ns * 1e-9);
                }
            }
        }
        let monitor = ModelMonitor::new(
            ServerModel::new(config.params, filters as u32),
            ReplicationModel::deterministic(grade),
        );
        let verdict = monitor.assess(waiting, service, started.elapsed());
        gate.refresh(&verdict);
    }
}

/// An owned window onto a running broker's counters, detached from the
/// [`Broker`] handle's lifetime; created by [`Broker::observer`].
///
/// Snapshots taken after the broker shuts down simply stop changing.
#[derive(Clone)]
pub struct BrokerObserver {
    inner: Arc<BrokerInner>,
}

impl fmt::Debug for BrokerObserver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BrokerObserver").finish_non_exhaustive()
    }
}

impl BrokerObserver {
    /// A typed snapshot of the broker's counters (see [`Broker::snapshot`]).
    pub fn snapshot(&self) -> BrokerSnapshot {
        snapshot_of(&self.inner)
    }

    /// Per-shard model assessments (see [`Broker::shard_reports`]).
    pub fn shard_reports(&self) -> Vec<ShardReport> {
        shard_reports_of(&self.inner)
    }

    /// A per-topic observatory snapshot (see [`Broker::topic_observatory`]).
    pub fn topic_observatory(&self) -> Option<TopicObservatorySnapshot> {
        self.inner.topic_obs.as_ref().map(|o| o.snapshot())
    }
}

/// One dispatcher shard's live model assessment: the shard's measured
/// operating point (arrival rate, filter count, replication grade from its
/// own counters and histograms) compared against the Eq. 1 + M/GI/1 model
/// evaluated *per shard* — each dispatcher is one of the `k` servers of
/// the paper's clustered scenario
/// ([`ClusterScenario`](rjms_core::ClusterScenario)).
///
/// Produced by [`Broker::shard_reports`]; served by the `/shards` HTTP
/// endpoint.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index in `0..shards`.
    pub shard: usize,
    /// Waiting-time samples behind this assessment.
    pub samples: u64,
    /// Measured per-shard arrival rate λ, messages per second, over the
    /// broker's whole lifetime.
    pub arrival_rate: f64,
    /// Measured mean filter evaluations per message on this shard.
    pub filters: f64,
    /// Measured replication grade `E[R]` on this shard.
    pub replication_grade: f64,
    /// The model verdict at the shard's measured operating point; the
    /// `Calibrated`/`Drift` variants carry the full measured-vs-predicted
    /// comparison.
    pub verdict: ModelVerdict,
}

/// Builds the per-shard model reports behind [`Broker::shard_reports`].
///
/// Returns an empty vector when metrics are off (nothing measured) or when
/// no cost anchor exists (neither [`BrokerConfig::flow`] nor
/// [`BrokerConfig::cost_model`] is set, so Eq. 1 has no constants to
/// predict with).
fn shard_reports_of(inner: &BrokerInner) -> Vec<ShardReport> {
    let Some(metrics) = &inner.metrics else { return Vec::new() };
    let params = if let Some(gate) = &inner.flow {
        gate.config().params
    } else if let Some(cost) = inner.config.cost_model {
        CostParams { t_rcv: cost.t_rcv, t_fltr: cost.t_fltr, t_tx: cost.t_tx, t_store: 0.0 }
    } else {
        return Vec::new();
    };
    let snap = metrics.registry.snapshot();
    let elapsed = inner.started.elapsed();
    let shards = inner.config.shards;
    (0..shards)
        .map(|shard| {
            // The single-dispatcher broker publishes no shard-labeled
            // series; its shard 0 *is* the aggregate.
            let (waiting, service) = if shards == 1 {
                (snap.histogram("broker.waiting_ns"), snap.histogram("broker.service_ns"))
            } else {
                let label = shard.to_string();
                let pairs = [("shard", label.as_str())];
                (
                    snap.histogram(&labeled("broker.waiting_ns", &pairs)),
                    snap.histogram(&labeled("broker.service_ns", &pairs)),
                )
            };
            let counters = &inner.shard_stats[shard];
            let received = counters.received.load(Ordering::Relaxed);
            let per_message = |total: u64| {
                if received > 0 {
                    total as f64 / received as f64
                } else {
                    0.0
                }
            };
            let filters = per_message(counters.filter_evaluations.load(Ordering::Relaxed));
            let grade = per_message(counters.dispatched.load(Ordering::Relaxed));
            // A shard whose histograms have not materialized yet (no
            // dispatch flushed) is an idle server, not a missing one.
            let (Some(waiting), Some(service)) = (waiting, service) else {
                return ShardReport {
                    shard,
                    samples: 0,
                    arrival_rate: 0.0,
                    filters,
                    replication_grade: grade,
                    verdict: ModelVerdict::Insufficient {
                        samples: 0,
                        required: DriftTolerance::default().min_samples,
                    },
                };
            };
            let monitor = ModelMonitor::new(
                ServerModel::new(params, filters.round() as u32),
                ReplicationModel::deterministic(grade),
            );
            let arrival_rate = if elapsed.as_secs_f64() > 0.0 {
                waiting.count as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            };
            ShardReport {
                shard,
                samples: waiting.count,
                arrival_rate,
                filters,
                replication_grade: grade,
                verdict: monitor.assess(waiting, service, elapsed),
            }
        })
        .collect()
}

/// Configures and opens one subscription; created by
/// [`Broker::subscription`].
#[derive(Debug)]
pub struct SubscriptionBuilder<'a> {
    broker: &'a Broker,
    target: String,
    filter: Filter,
    durable: Option<String>,
    queue_capacity: Option<usize>,
}

impl SubscriptionBuilder<'_> {
    /// Sets the message filter (default: [`Filter::None`], every message
    /// matches).
    pub fn filter(mut self, filter: Filter) -> Self {
        self.filter = filter;
        self
    }

    /// Makes this a *durable* subscription under the given name: matching
    /// messages are retained while no consumer is connected. Durable
    /// subscriptions require a literal topic, not a wildcard pattern.
    pub fn durable(mut self, name: &str) -> Self {
        self.durable = Some(name.to_owned());
        self
    }

    /// Overrides [`crate::BrokerConfig::subscriber_queue_capacity`] for
    /// this subscription alone.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "subscriber queue capacity must be > 0");
        self.queue_capacity = Some(capacity);
        self
    }

    /// Opens the subscription and returns the consuming [`Subscriber`].
    ///
    /// A `target` that parses as a wildcard [`TopicPattern`] subscribes to
    /// every matching topic, current and future; anything else is treated
    /// as a literal topic name, which must exist.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TopicNotFound`] for unknown literal topics,
    /// [`Error::DurablePattern`] for a durable subscription on a wildcard
    /// pattern, [`Error::DurableNameInUse`] if a consumer is already
    /// connected under the durable name, and [`Error::Stopped`] after
    /// shutdown.
    pub fn open(self) -> Result<Subscriber, Error> {
        let SubscriptionBuilder { broker, target, filter, durable, queue_capacity } = self;
        let capacity = queue_capacity.unwrap_or(broker.inner.config.subscriber_queue_capacity);
        let pattern = target.parse::<TopicPattern>().ok().filter(|p| !p.is_literal());
        match (durable, pattern) {
            (Some(_), Some(pattern)) => Err(Error::DurablePattern { pattern: pattern.to_string() }),
            (Some(name), None) => broker.open_durable(&target, &name, filter, capacity),
            (None, Some(pattern)) => broker.open_pattern(&pattern, filter, capacity),
            (None, None) => broker.open_literal(&target, filter, capacity),
        }
    }
}

/// Durable-consumer progress not yet written to the journal: the highest
/// delivered offset plus the number of deliveries since the last
/// checkpoint record.
struct PendingCheckpoint {
    offset: u64,
    deliveries: u64,
}

/// The labeled counter pair of one exported topic series.
struct TopicCounters {
    received: Arc<Counter>,
    dispatched: Arc<Counter>,
}

/// Bumps the broker-wide overflow counter for distinct topics the
/// observatory's accounting table collapsed into `__other__` during one
/// scratch flush.
fn record_obs_spill(inner: &BrokerInner, metrics: Option<&BrokerMetrics>, spilled: u64) {
    if spilled == 0 {
        return;
    }
    inner.stats.record_topics_overflowed(spilled);
    if let Some(m) = metrics {
        m.registry.counter("broker.topics_overflowed").add(spilled);
    }
}

/// One dispatcher thread: pops publish items from its shard's queue and
/// fans out message copies. The single-dispatcher broker runs exactly one
/// of these (shard 0); sharded brokers run one per shard, each with its
/// own histogram staging and checkpoint bookkeeping.
fn dispatch_loop(inner: Arc<BrokerInner>, shard: usize, publish_rx: Receiver<DispatchItem>) {
    let cost = inner.config.cost_model;
    let metrics = inner.metrics.as_ref();
    let shard_stats = &inner.shard_stats[shard];
    let checkpoint_every =
        inner.config.persistence.as_ref().map_or(u64::MAX, |p| p.checkpoint_every);
    // Checkpoint bookkeeping, keyed by (topic, durable name). Only the
    // dispatcher writes checkpoints, so this needs no locking.
    let mut checkpoints: HashMap<(String, String), PendingCheckpoint> = HashMap::new();
    // Countdown to the next stage-sampled message (cheaper than a modulo
    // on the hot path).
    let mut stage_countdown = metrics.map_or(u64::MAX, |m| m.stage_sample_every);
    // Tail-sampled tracing state. The keep/discard decision is made after
    // fan-out, when the sojourn time is known; the threshold refreshes
    // periodically from the live sojourn histogram and starts at 0 so
    // every chain is kept until the first refresh has data.
    let tracer = inner.tracer.as_ref().zip(inner.config.trace);
    let mut trace_threshold_ns: u64 = 0;
    let mut trace_refresh_countdown = tracer.map_or(u64::MAX, |(_, t)| t.refresh_every);
    let mut trace_uniform_countdown =
        tracer.map_or(
            u64::MAX,
            |(_, t)| if t.uniform_every == 0 { u64::MAX } else { t.uniform_every },
        );
    let trace_counters = tracer.and_then(|_| {
        metrics.map(|m| {
            (m.registry.counter("trace.chains.tail"), m.registry.counter("trace.chains.uniform"))
        })
    });
    // Per-topic labeled counter series, capped at `per_topic_series`
    // distinct topics; overflow traffic lands in the `__other__` series.
    let per_topic_cap = inner.config.metrics.map_or(0, |m| m.per_topic_series);
    let mut topic_counters: HashMap<String, TopicCounters> = HashMap::new();
    // The previous message's fan-out end: when the next message is already
    // queued its dispatch starts right here, so the reading is reused as
    // the next dispatch start instead of a second clock read per message.
    let mut last_end: Option<u64> = None;
    // Local staging for the per-message histograms, flushed on idle and
    // every FLUSH_EVERY samples. Sharded dispatchers additionally stage
    // into shard-labeled series; the single-dispatcher broker publishes
    // none, keeping its metric surface byte-identical to the pre-shard
    // layout.
    let mut scratch = metrics.map(|m| {
        if inner.config.shards > 1 {
            DispatcherScratch::for_shard(m, shard)
        } else {
            DispatcherScratch::new(m)
        }
    });
    // Per-topic workload observations, staged thread-locally like the
    // histogram scratch and merged into the observatory on the same
    // idle/FLUSH_EVERY cadence.
    let observatory = inner.topic_obs.as_ref();
    let mut obs_scratch = TopicObsScratch::new();
    loop {
        let (item, was_queued) = match publish_rx.try_recv() {
            Ok(item) => (item, true),
            Err(TryRecvError::Empty) => {
                // About to block: publish staged samples so observers see
                // an up-to-date picture whenever the dispatcher is idle.
                if let (Some(m), Some(s)) = (metrics, scratch.as_mut()) {
                    s.flush(m);
                    s.mark_idle();
                }
                if let Some(obs) = observatory {
                    record_obs_spill(&inner, metrics, obs_scratch.flush(obs));
                }
                match publish_rx.recv() {
                    Ok(item) => (item, false),
                    Err(_) => break,
                }
            }
            Err(TryRecvError::Disconnected) => break,
        };
        let (topic, message, enqueued_at) = match item {
            DispatchItem::Shutdown => break,
            DispatchItem::Publish { topic, message, enqueued_at } => (topic, message, enqueued_at),
        };
        // Backlog sample at the dispatch epoch: the queue now holds exactly
        // the messages that arrived during this message's waiting time, so
        // the window mean of these samples estimates L_q = λ·E[W] — the
        // measured side of the observatory's Little's-law self-check.
        if let Some(s) = scratch.as_mut() {
            s.record_backlog(publish_rx.len() as u64);
        }
        let timer = metrics.map(|m| {
            stage_countdown -= 1;
            let sample = stage_countdown == 0;
            if sample {
                stage_countdown = m.stage_sample_every;
            }
            let reuse = if was_queued { last_end } else { None };
            DispatchTimer::start_at(reuse, sample)
        });
        let sample = timer.as_ref().is_some_and(|t| t.sample_stages);
        // With tracing on, stage durations are measured for *every* message:
        // the tail sampler decides after fan-out which chains to keep, so
        // any message may need its durations. Stage *histograms* stay
        // sampled (`sample`) — only the local accumulation is exhaustive.
        let timed = sample || tracer.is_some();
        let mut rcv_ns = 0u64;
        let mut journal_ns = 0u64;
        let mut filter_ns = 0u64;
        let mut fanout_ns = 0u64;

        // Uniform-baseline decision is interval-driven and thus known
        // up front, before the message's sojourn time is.
        let uniform_keep = tracer.is_some() && {
            trace_uniform_countdown -= 1;
            if trace_uniform_countdown == 0 {
                trace_uniform_countdown = tracer.map_or(u64::MAX, |(_, t)| t.uniform_every);
                true
            } else {
                false
            }
        };
        // Pre-mark for the wire layer: when the message's *waiting* time
        // already clears the tail threshold the chain is guaranteed to be
        // kept (sojourn ≥ waiting), so mark the id sampled before fan-out —
        // the per-connection writers this message fans out to may flush it
        // before the dispatcher reaches its commit point below.
        if let (Some(t), Some((recorder, _)), Some(enq)) = (&timer, tracer, enqueued_at) {
            let ns_per_tick = metrics.map_or(1.0, |m| m.ns_per_tick);
            let waiting_ns = (t.dispatch_start().saturating_sub(enq) as f64 * ns_per_tick) as u64;
            if uniform_keep || waiting_ns >= trace_threshold_ns {
                recorder.mark_sampled(message.trace_id());
            }
        }

        inner.stats.record_received();
        shard_stats.received.fetch_add(1, Ordering::Relaxed);
        time_stage(timed, &mut rcv_ns, || {
            if let Some(c) = &cost {
                c.spin_receive();
            }
        });

        // TTL: expired messages are never delivered (JMS §4.8); the receive
        // work has already been paid. Expired messages are dropped before
        // fan-out, so they do not enter the timing histograms either.
        if message.is_expired() {
            inner.stats.record_expired_message();
            continue;
        }

        // Write-ahead: the message is on disk (per the fsync policy) before
        // any subscriber sees it. This append is the real-I/O counterpart
        // of the synthetic `t_rcv`/`t_fltr`/`t_tx` spins — the `t_store`
        // term of the extended cost model.
        let publish_offset = time_stage(timed, &mut journal_ns, || {
            inner.append_record(&encode_publish(&topic.name, &message))
        });

        let mut copies = 0u64;
        let mut evaluations = 0u64;
        let mut needs_prune = false;
        {
            let subs = topic.subscriptions.read();
            // The scan is timed as one block (two clock reads) rather than
            // per filter, so sampled messages stay cheap even with hundreds
            // of subscriptions; the fan-out time inside the block is timed
            // separately and subtracted afterwards.
            let scan_start = if timed { Some(Instant::now()) } else { None };
            let fanout_before = fanout_ns;
            for sub in subs.iter() {
                if !sub.active.load(Ordering::Relaxed) {
                    needs_prune = true;
                    continue;
                }
                evaluations += 1;
                if let Some(c) = &cost {
                    c.spin_filters(1);
                }
                if !sub.filter.matches(&message) {
                    continue;
                }
                let delivery = time_stage(timed, &mut fanout_ns, || {
                    if let Some(c) = &cost {
                        c.spin_transmit();
                    }
                    deliver(sub, Arc::clone(&message), inner.config.overflow_policy)
                });
                match delivery {
                    Delivery::Sent => copies += 1,
                    Delivery::Dropped => inner.stats.record_dropped(),
                    Delivery::Disconnected => {
                        sub.active.store(false, Ordering::Relaxed);
                        inner.stats.record_expired_subscription();
                        needs_prune = true;
                    }
                }
            }
            if let Some(start) = scan_start {
                let total = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                filter_ns += total.saturating_sub(fanout_ns - fanout_before);
            }
        }
        // Durable subscriptions: deliver when connected, retain otherwise.
        {
            let durables = topic.durables.read();
            for durable in durables.iter() {
                evaluations += 1;
                let matched = time_stage(timed, &mut filter_ns, || {
                    if let Some(c) = &cost {
                        c.spin_filters(1);
                    }
                    durable.filter.lock().matches(&message)
                });
                if !matched {
                    continue;
                }
                if let Some(c) = &cost {
                    c.spin_transmit();
                }
                let mut connection = durable.connection.lock();
                let delivered = match connection.as_ref() {
                    Some(sender) => {
                        let delivery = time_stage(timed, &mut fanout_ns, || {
                            deliver_to(sender, Arc::clone(&message), inner.config.overflow_policy)
                        });
                        match delivery {
                            Delivery::Sent => {
                                copies += 1;
                                true
                            }
                            Delivery::Dropped => {
                                inner.stats.record_dropped();
                                true
                            }
                            Delivery::Disconnected => {
                                *connection = None;
                                false
                            }
                        }
                    }
                    None => false,
                };
                if delivered {
                    // Handed to a connected consumer (or consciously
                    // dropped by the overflow policy): progress that a
                    // checkpoint record may cover. Messages retained for
                    // offline consumers are deliberately NOT checkpointed,
                    // so replay rebuilds the retained backlog.
                    if let Some(offset) = publish_offset {
                        let key = (topic.name.clone(), durable.name.clone());
                        let entry = checkpoints
                            .entry(key)
                            .or_insert(PendingCheckpoint { offset, deliveries: 0 });
                        entry.offset = offset;
                        entry.deliveries += 1;
                        if entry.deliveries >= checkpoint_every {
                            inner.append_record(
                                &JournalRecord::DurableCheckpoint {
                                    topic: topic.name.clone(),
                                    name: durable.name.clone(),
                                    offset,
                                }
                                .encode(),
                            );
                            entry.deliveries = 0;
                        }
                    }
                } else {
                    // Retain for the offline consumer, dropping the oldest
                    // message beyond the buffer capacity.
                    let mut retained = durable.retained.lock();
                    if retained.len() >= inner.config.durable_buffer_capacity {
                        retained.pop_front();
                        inner.stats.record_dropped();
                    }
                    retained.push_back(Arc::clone(&message));
                    inner.stats.record_retained();
                }
            }
        }

        inner.stats.record_filter_evaluations(evaluations);
        inner.stats.record_dispatched(copies);
        shard_stats.filter_evaluations.fetch_add(evaluations, Ordering::Relaxed);
        shard_stats.dispatched.fetch_add(copies, Ordering::Relaxed);
        let first_message = topic.received.fetch_add(1, Ordering::Relaxed) == 0;
        topic.dispatched.fetch_add(copies, Ordering::Relaxed);

        if let Some(m) = metrics {
            if per_topic_cap > 0 {
                // Topic names are client-controlled, so labeled series are
                // capped: the first `per_topic_cap` topics get their own
                // series, the rest share `__other__`.
                let name = if topic_counters.contains_key(topic.name.as_str())
                    || topic_counters.len() < per_topic_cap
                {
                    topic.name.as_str()
                } else {
                    // Count each topic folded into `__other__` exactly once
                    // (on its first message) so the overflow counter tracks
                    // distinct topics, not suppressed traffic. When the
                    // observatory is on, its accounting-table cap drives
                    // the counter instead (see `record_obs_spill`).
                    if first_message && observatory.is_none() {
                        inner.stats.record_topic_overflowed();
                        m.registry.counter("broker.topics_overflowed").inc();
                    }
                    "__other__"
                };
                let counters =
                    topic_counters.entry(name.to_owned()).or_insert_with(|| TopicCounters {
                        received: m
                            .registry
                            .counter(&labeled("broker.topic.received", &[("topic", name)])),
                        dispatched: m
                            .registry
                            .counter(&labeled("broker.topic.dispatched", &[("topic", name)])),
                    });
                counters.received.inc();
                counters.dispatched.add(copies);
            }
        }

        if needs_prune {
            topic.subscriptions.write().retain(|s| s.active.load(Ordering::Relaxed));
        }

        if let (Some(m), Some(mut timer), Some(scratch)) = (metrics, timer, scratch.as_mut()) {
            if timer.sample_stages {
                m.stage_rcv.record(rcv_ns);
                m.stage_journal.record(journal_ns);
                timer.filter_elapsed = filter_ns;
                timer.fanout_elapsed = fanout_ns;
            }
            // Without an enqueue stamp (metrics enabled mid-flight is
            // impossible, but recovery replays have none) waiting is zero.
            let dispatch_start = timer.dispatch_start();
            let enqueued_at = enqueued_at.unwrap_or(dispatch_start);
            let end = timer.finish(m, scratch, enqueued_at);
            last_end = Some(end);
            if scratch.pending() >= crate::metrics::FLUSH_EVERY {
                scratch.flush(m);
            }
            if let Some(obs) = observatory {
                let service_secs = end.saturating_sub(dispatch_start) as f64 * m.ns_per_tick * 1e-9;
                obs_scratch.record(
                    &topic.name,
                    shard,
                    evaluations.min(u64::from(u32::MAX)) as u32,
                    copies.min(u64::from(u32::MAX)) as u32,
                    service_secs,
                );
                if obs_scratch.pending() >= crate::metrics::FLUSH_EVERY {
                    record_obs_spill(&inner, metrics, obs_scratch.flush(obs));
                }
            }

            // Tail-sampling commit point: the sojourn time is now known.
            if let Some((recorder, tcfg)) = tracer {
                let to_ns = |ticks: u64| (ticks as f64 * m.ns_per_tick) as u64;
                let waiting_ns = to_ns(dispatch_start.saturating_sub(enqueued_at));
                let sojourn_ns = to_ns(end.saturating_sub(enqueued_at));
                trace_refresh_countdown -= 1;
                if trace_refresh_countdown == 0 {
                    trace_refresh_countdown = tcfg.refresh_every;
                    scratch.flush(m);
                    if let Some(q) = m.sojourn.snapshot().quantile(tcfg.tail_quantile) {
                        trace_threshold_ns = q;
                    }
                }
                let tail_keep = sojourn_ns >= trace_threshold_ns;
                if tail_keep || uniform_keep {
                    // Stage timestamps are synthesized as cumulative tick
                    // offsets from the dispatch start, so a chain is
                    // monotone by construction even though the stages were
                    // measured with duration-only Instant reads.
                    let ns_to_ticks = |ns: u64| (ns as f64 / m.ns_per_tick) as u64;
                    let trace_id = message.trace_id();
                    let mut at = dispatch_start;
                    for (stage, duration_ns, aux) in [
                        (Stage::Receive, rcv_ns, waiting_ns),
                        (Stage::Journal, journal_ns, publish_offset.unwrap_or(0)),
                        (Stage::Filter, filter_ns, evaluations),
                        (Stage::Fanout, fanout_ns, copies),
                    ] {
                        recorder.record(SpanEvent {
                            trace_id,
                            stage,
                            start_ticks: at,
                            duration_ns,
                            aux,
                        });
                        at += ns_to_ticks(duration_ns);
                    }
                    recorder.mark_sampled(trace_id);
                    if let Some((tail, uniform)) = &trace_counters {
                        if tail_keep {
                            tail.inc();
                        } else {
                            uniform.inc();
                        }
                    }
                }
            }
        }
    }

    // Final histogram flush: every staged sample is visible after shutdown.
    if let Some(obs) = observatory {
        record_obs_spill(&inner, metrics, obs_scratch.flush(obs));
    }
    if let (Some(m), Some(s)) = (metrics, scratch.as_mut()) {
        s.flush(m);
        s.mark_idle();
    }

    // Shutdown: write the final checkpoints and force the journal to disk
    // so a clean stop never re-delivers already-consumed messages.
    for ((topic, name), pending) in checkpoints {
        if pending.deliveries > 0 {
            inner.append_record(
                &JournalRecord::DurableCheckpoint { topic, name, offset: pending.offset }.encode(),
            );
        }
    }
    inner.sync_journal();

    // Drop the subscriptions of this shard's topics so that blocked or
    // future subscriber receives observe disconnection once their queues
    // drain. Each dispatcher clears only its own shard: another shard may
    // still be draining its queue into its topics.
    for topic in inner.topics.read().values() {
        if topic.shard == shard {
            topic.subscriptions.write().clear();
        }
    }
}

/// Replays the journal into a fresh topic registry: topics and durable
/// subscriptions are re-created, and every publish logged after a durable
/// subscription's registration but not covered by one of its checkpoint
/// records goes back into its retained backlog (at-least-once
/// re-delivery). Expired messages and backlog beyond
/// `durable_buffer_capacity` are discarded, mirroring live behaviour.
fn recover_topics(journal: &Journal, config: &BrokerConfig) -> HashMap<String, Arc<Topic>> {
    struct DurableRecovery {
        filter: Filter,
        /// `(journal offset, message)` publishes awaiting a checkpoint.
        backlog: VecDeque<(u64, Arc<Message>)>,
    }

    let mut recovered: HashMap<String, HashMap<String, DurableRecovery>> = HashMap::new();
    for item in journal.replay(journal.first_offset()) {
        let (offset, payload) = item.expect("failed to read back the write-ahead journal");
        let record = JournalRecord::decode(&payload).unwrap_or_else(|e| {
            // The frame passed its CRC, so this is version skew or a bug,
            // not a torn write — refuse to guess at broker state.
            panic!("journal frame {offset} is checksummed but undecodable: {e}")
        });
        match record {
            JournalRecord::TopicCreated { topic } => {
                recovered.entry(topic).or_default();
            }
            JournalRecord::Publish { topic, message } => {
                let message = Arc::new(message);
                if let Some(durables) = recovered.get_mut(&topic) {
                    for durable in durables.values_mut() {
                        if durable.filter.matches(&message) {
                            durable.backlog.push_back((offset, Arc::clone(&message)));
                        }
                    }
                }
            }
            JournalRecord::DurableRegistered { topic, name, filter } => {
                // (Re-)registration starts from an empty backlog — a
                // changed filter discards retained messages (JMS
                // change-of-selector semantics).
                recovered
                    .entry(topic)
                    .or_default()
                    .insert(name, DurableRecovery { filter, backlog: VecDeque::new() });
            }
            JournalRecord::DurableCheckpoint { topic, name, offset } => {
                if let Some(durable) =
                    recovered.get_mut(&topic).and_then(|durables| durables.get_mut(&name))
                {
                    while durable.backlog.front().is_some_and(|(o, _)| *o <= offset) {
                        durable.backlog.pop_front();
                    }
                }
            }
            JournalRecord::DurableUnsubscribed { topic, name } => {
                if let Some(durables) = recovered.get_mut(&topic) {
                    durables.remove(&name);
                }
            }
        }
    }

    let mut topics = HashMap::with_capacity(recovered.len());
    for (topic_name, durables) in recovered {
        let topic = Arc::new(Topic::new(&topic_name, shard_of(&topic_name, config.shards.max(1))));
        {
            let mut topic_durables = topic.durables.write();
            for (durable_name, recovery) in durables {
                let mut retained: VecDeque<Arc<Message>> = recovery
                    .backlog
                    .into_iter()
                    .map(|(_, message)| message)
                    .filter(|message| !message.is_expired())
                    .collect();
                while retained.len() > config.durable_buffer_capacity {
                    retained.pop_front();
                }
                topic_durables.push(Arc::new(DurableState {
                    name: durable_name,
                    filter: Mutex::new(recovery.filter),
                    retained: Mutex::new(retained),
                    connection: Mutex::new(None),
                }));
            }
        }
        topics.insert(topic_name, topic);
    }
    topics
}

enum Delivery {
    Sent,
    Dropped,
    Disconnected,
}

/// Delivers one copy according to the overflow policy.
fn deliver(sub: &Subscription, message: Arc<Message>, policy: OverflowPolicy) -> Delivery {
    deliver_to(&sub.sender, message, policy)
}

/// Delivers one copy into an arbitrary subscriber queue.
fn deliver_to(
    sender: &Sender<Arc<Message>>,
    message: Arc<Message>,
    policy: OverflowPolicy,
) -> Delivery {
    match policy {
        OverflowPolicy::Block => match sender.send(message) {
            Ok(()) => Delivery::Sent,
            Err(_) => Delivery::Disconnected,
        },
        OverflowPolicy::DropNew => match sender.try_send(message) {
            Ok(()) => Delivery::Sent,
            Err(TrySendError::Full(_)) => Delivery::Dropped,
            Err(TrySendError::Disconnected(_)) => Delivery::Disconnected,
        },
    }
}

/// A handle for publishing messages to one topic.
///
/// Cloneable; each clone shares the same bounded publish queue, so all
/// publishers experience the broker's push-back together.
#[derive(Clone)]
pub struct Publisher {
    topic: Arc<Topic>,
    publish_tx: Sender<DispatchItem>,
    inner: Arc<BrokerInner>,
    /// Identity under per-producer flow control. Each
    /// [`Broker::publisher`] call gets a fresh id; clones share it (they
    /// share the producer's rate budget).
    producer_id: u64,
}

impl fmt::Debug for Publisher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Publisher").field("topic", &self.topic.name).finish()
    }
}

impl Publisher {
    /// The topic this publisher sends to.
    pub fn topic(&self) -> &str {
        &self.topic.name
    }

    /// The publish-queue entry stamp for a new message; `Some` only with
    /// metrics enabled so the disabled path stays free of clock reads.
    fn enqueue_stamp(&self) -> Option<u64> {
        self.inner.metrics.as_ref().map(|_| rjms_metrics::clock::now())
    }

    /// Runs the admission gate (no-op when flow control is off),
    /// converting shed/deferred outcomes into typed errors and counting
    /// them in [`BrokerStats`].
    fn admit(&self, message: &Message) -> Result<(), Error> {
        let Some(gate) = &self.inner.flow else { return Ok(()) };
        // With persistence on, every publish is durable (the paper's
        // persistent mode) and pins to the top admission class.
        let durable = self.inner.journal.is_some();
        match gate.admit(self.producer_id, message.priority().level(), durable) {
            AdmissionOutcome::Granted => {
                self.inner.stats.record_flow_granted();
                Ok(())
            }
            AdmissionOutcome::Deferred { class, retry_after } => {
                self.inner.stats.record_flow_deferred();
                Err(Error::PublishDeferred {
                    class,
                    retry_after_ms: retry_after.as_millis() as u64,
                })
            }
            AdmissionOutcome::Shed { class } => {
                self.inner.stats.record_flow_shed();
                Err(Error::PublishShed { class })
            }
        }
    }

    /// Publishes a message, blocking while the broker's publish queue is
    /// full (push-back).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Stopped`] once the broker has been shut down.
    /// With [`BrokerConfig::flow`] set, returns [`Error::PublishShed`] or
    /// [`Error::PublishDeferred`] when admission control rejects the
    /// message before it reaches the publish queue.
    pub fn publish(&self, message: Message) -> Result<(), Error> {
        if self.inner.stopped.load(Ordering::Relaxed) {
            return Err(Error::Stopped);
        }
        self.admit(&message)?;
        self.publish_tx
            .send(DispatchItem::Publish {
                topic: Arc::clone(&self.topic),
                message: Arc::new(message),
                enqueued_at: self.enqueue_stamp(),
            })
            .map_err(|_| Error::Stopped)
    }

    /// Publishes without blocking; hands the message back if the publish
    /// queue is currently full.
    ///
    /// # Errors
    ///
    /// [`TryPublishError::Full`] (carrying the rejected message) when the
    /// queue is full, [`TryPublishError::Denied`] (also carrying it) when
    /// admission control rejects it, [`TryPublishError::Stopped`] when
    /// the broker has been shut down.
    #[allow(clippy::result_large_err)] // the Err hands the message back (push-back)
    pub fn try_publish(&self, message: Message) -> Result<(), TryPublishError> {
        if self.inner.stopped.load(Ordering::Relaxed) {
            return Err(TryPublishError::Stopped);
        }
        if let Err(reason) = self.admit(&message) {
            return Err(TryPublishError::Denied { message, reason });
        }
        self.publish_tx
            .try_send(DispatchItem::Publish {
                topic: Arc::clone(&self.topic),
                message: Arc::new(message),
                enqueued_at: self.enqueue_stamp(),
            })
            .map_err(|e| match e {
                TrySendError::Full(DispatchItem::Publish { message, .. }) => {
                    // Hand the message back; it was never shared.
                    TryPublishError::Full(Arc::try_unwrap(message).expect("unshared message"))
                }
                _ => TryPublishError::Stopped,
            })
    }
}

/// A handle for consuming messages from one subscription.
///
/// Dropping the subscriber cancels the subscription (non-durable semantics).
pub struct Subscriber {
    id: SubscriptionId,
    topic_name: String,
    receiver: Receiver<Arc<Message>>,
    active: Arc<AtomicBool>,
    /// Durable-subscription state, if this is a durable consumer.
    durable: Option<Arc<DurableState>>,
    /// Retained backlog moved in at (durable) connect time; consumed before
    /// live messages. Interior mutability keeps `receive(&self)` ergonomic
    /// (matching the underlying channel receiver).
    pending: Mutex<VecDeque<Arc<Message>>>,
    /// For pattern subscriptions: the strong reference that keeps the
    /// registration alive while no matching topic exists yet (the broker's
    /// pattern list only holds a `Weak`). Held for its drop behaviour.
    #[allow(dead_code)]
    pattern_registration: Option<Arc<Subscription>>,
}

impl fmt::Debug for Subscriber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Subscriber").field("id", &self.id).field("topic", &self.topic_name).finish()
    }
}

impl Subscriber {
    /// This subscription's id.
    pub fn id(&self) -> SubscriptionId {
        self.id
    }

    /// The topic subscribed to.
    pub fn topic(&self) -> &str {
        &self.topic_name
    }

    /// Whether this is a durable subscription consumer.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The durable subscription name, if this is a durable consumer.
    pub fn durable_name(&self) -> Option<&str> {
        self.durable.as_ref().map(|d| d.name.as_str())
    }

    /// Blocking receive. For durable consumers, the retained backlog is
    /// delivered before live messages.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Disconnected`] when the broker has shut down and
    /// the queue is drained.
    pub fn receive(&self) -> Result<Arc<Message>, Error> {
        if let Some(m) = self.pending.lock().pop_front() {
            return Ok(m);
        }
        self.receiver.recv().map_err(|_| Error::Disconnected)
    }

    /// Non-blocking receive (retained backlog first for durable consumers).
    pub fn try_receive(&self) -> Option<Arc<Message>> {
        if let Some(m) = self.pending.lock().pop_front() {
            return Some(m);
        }
        self.receiver.try_recv().ok()
    }

    /// Receive with a timeout; `None` on timeout or closed queue.
    pub fn receive_timeout(&self, timeout: Duration) -> Option<Arc<Message>> {
        if let Some(m) = self.pending.lock().pop_front() {
            return Some(m);
        }
        self.receiver.recv_timeout(timeout).ok()
    }

    /// Returns an unprocessed message to the *front* of this subscriber's
    /// local buffer, so it is the next one received (or, for a durable
    /// subscriber that disconnects, the first one re-retained).
    ///
    /// Intended for consumers that pulled a message but could not process
    /// it — e.g. a network forwarder whose connection died mid-delivery.
    pub fn return_message(&self, message: Arc<Message>) {
        self.pending.lock().push_front(message);
    }

    /// Number of messages currently buffered for this subscriber
    /// (including any retained backlog).
    pub fn queued(&self) -> usize {
        self.pending.lock().len() + self.receiver.len()
    }

    /// Drains all currently buffered messages.
    pub fn drain(&self) -> Vec<Arc<Message>> {
        let mut out: Vec<Arc<Message>> = self.pending.lock().drain(..).collect();
        while let Ok(m) = self.receiver.try_recv() {
            out.push(m);
        }
        out
    }
}

impl Drop for Subscriber {
    fn drop(&mut self) {
        // Mark inactive; the dispatcher prunes plain subscriptions lazily.
        self.active.store(false, Ordering::Relaxed);
        if let Some(durable) = &self.durable {
            // Disconnect: future matches are retained again. Unconsumed
            // backlog and queued-but-unreceived messages go back into the
            // retained buffer so that nothing is lost on reconnect.
            let mut connection = durable.connection.lock();
            *connection = None;
            let mut retained = durable.retained.lock();
            for m in self.pending.lock().drain(..) {
                retained.push_back(m);
            }
            while let Ok(m) = self.receiver.try_recv() {
                retained.push_back(m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MetricsConfig;
    use crate::message::Priority;

    fn broker() -> Broker {
        let b = Broker::start(BrokerConfig::default());
        b.create_topic("t").unwrap();
        b
    }

    /// Polls the broker snapshot until `done` passes or ~1 s elapses.
    fn wait_for(b: &Broker, done: impl Fn(&BrokerSnapshot) -> bool) -> BrokerSnapshot {
        for _ in 0..200 {
            let snap = b.snapshot();
            if done(&snap) {
                return snap;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        b.snapshot()
    }

    #[test]
    fn unfiltered_subscriber_gets_all_messages() {
        let b = broker();
        let sub = b.subscription("t").open().unwrap();
        let p = b.publisher("t").unwrap();
        for i in 0..10 {
            p.publish(Message::builder().property("i", i as i64).build()).unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..10 {
            got.push(sub.receive_timeout(Duration::from_secs(2)).expect("message"));
        }
        assert_eq!(got.len(), 10);
        // Per-publisher FIFO order is preserved.
        for (i, m) in got.iter().enumerate() {
            assert_eq!(m.property("i"), Some(&(i as i64).into()));
        }
        b.shutdown();
    }

    #[test]
    fn filters_route_messages() {
        let b = broker();
        let red =
            b.subscription("t").filter(Filter::selector("color = 'red'").unwrap()).open().unwrap();
        let blue =
            b.subscription("t").filter(Filter::selector("color = 'blue'").unwrap()).open().unwrap();
        let p = b.publisher("t").unwrap();
        p.publish(Message::builder().property("color", "red").build()).unwrap();
        p.publish(Message::builder().property("color", "blue").build()).unwrap();
        p.publish(Message::builder().property("color", "green").build()).unwrap();

        let r = red.receive_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(r.property("color"), Some(&"red".into()));
        let bl = blue.receive_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(bl.property("color"), Some(&"blue".into()));
        // The green message matched nobody.
        assert!(red.receive_timeout(Duration::from_millis(50)).is_none());
        assert!(blue.receive_timeout(Duration::from_millis(50)).is_none());
        b.shutdown();
    }

    #[test]
    fn replication_to_matching_subscribers() {
        let b = broker();
        let subs: Vec<_> = (0..5).map(|_| b.subscription("t").open().unwrap()).collect();
        let p = b.publisher("t").unwrap();
        p.publish(Message::builder().build()).unwrap();
        for s in &subs {
            assert!(s.receive_timeout(Duration::from_secs(2)).is_some());
        }
        // Stats: 1 received, 5 dispatched → replication grade 5.
        let snap = wait_for(&b, |s| s.messages.dispatched == 5);
        assert_eq!(snap.messages.received, 1);
        assert_eq!(snap.messages.dispatched, 5);
        assert_eq!(snap.messages.replication_grade(), Some(5.0));
        assert_eq!(snap.per_topic["t"].dispatched, 5);
        b.shutdown();
    }

    #[test]
    fn topics_isolate_messages() {
        let b = broker();
        b.create_topic("other").unwrap();
        let t_sub = b.subscription("t").open().unwrap();
        let o_sub = b.subscription("other").open().unwrap();
        let p = b.publisher("t").unwrap();
        p.publish(Message::builder().build()).unwrap();
        assert!(t_sub.receive_timeout(Duration::from_secs(2)).is_some());
        assert!(o_sub.receive_timeout(Duration::from_millis(50)).is_none());
        b.shutdown();
    }

    #[test]
    fn unknown_topic_errors() {
        let b = broker();
        assert!(matches!(b.publisher("nope"), Err(Error::TopicNotFound { .. })));
        assert!(matches!(b.subscription("nope").open(), Err(Error::TopicNotFound { .. })));
        b.shutdown();
    }

    #[test]
    fn duplicate_and_invalid_topics_rejected() {
        let b = broker();
        assert!(matches!(b.create_topic("t"), Err(Error::TopicExists { .. })));
        assert!(matches!(b.create_topic(""), Err(Error::InvalidTopicName { .. })));
        b.shutdown();
    }

    #[test]
    fn builder_routes_wildcards_to_pattern_subscriptions() {
        let b = broker();
        let wild = b.subscription("sensors.*").open().unwrap();
        // The pattern topic need not exist yet; creating a match later
        // feeds the same subscriber.
        b.create_topic("sensors.kitchen").unwrap();
        let p = b.publisher("sensors.kitchen").unwrap();
        p.publish(Message::builder().build()).unwrap();
        assert!(wild.receive_timeout(Duration::from_secs(2)).is_some());
        b.shutdown();
    }

    #[test]
    fn builder_rejects_durable_patterns() {
        let b = broker();
        assert!(matches!(
            b.subscription("sensors.>").durable("audit").open(),
            Err(Error::DurablePattern { .. })
        ));
        b.shutdown();
    }

    #[test]
    fn builder_opens_durable_subscriptions() {
        let b = broker();
        let d = b.subscription("t").durable("audit").queue_capacity(8).open().unwrap();
        assert!(d.is_durable());
        assert_eq!(d.durable_name(), Some("audit"));
        assert!(matches!(
            b.subscription("t").durable("audit").open(),
            Err(Error::DurableNameInUse { .. })
        ));
        b.shutdown();
    }

    #[test]
    fn dropping_subscriber_cancels_subscription() {
        let b = broker();
        let sub = b.subscription("t").open().unwrap();
        assert_eq!(b.subscription_count("t"), 1);
        drop(sub);
        assert_eq!(b.subscription_count("t"), 0);
        // Publishing after the drop reaches nobody but still counts received.
        let p = b.publisher("t").unwrap();
        p.publish(Message::builder().build()).unwrap();
        let snap = wait_for(&b, |s| s.messages.received == 1);
        assert_eq!(snap.messages.dispatched, 0);
        b.shutdown();
    }

    #[test]
    fn publish_after_shutdown_fails() {
        let b = broker();
        let p = b.publisher("t").unwrap();
        b.shutdown();
        assert!(matches!(p.publish(Message::builder().build()), Err(Error::Stopped)));
        assert!(matches!(p.try_publish(Message::builder().build()), Err(TryPublishError::Stopped)));
    }

    #[test]
    fn subscriber_receives_error_after_shutdown() {
        let b = broker();
        let sub = b.subscription("t").open().unwrap();
        let p = b.publisher("t").unwrap();
        p.publish(Message::builder().build()).unwrap();
        b.shutdown();
        // The queued message is still delivered, then the queue closes.
        assert!(sub.receive().is_ok());
        assert!(matches!(sub.receive(), Err(Error::Disconnected)));
    }

    #[test]
    fn drop_new_policy_drops_on_full_queue() {
        let b = Broker::start(
            BrokerConfig::builder()
                .subscriber_queue_capacity(1)
                .overflow_policy(OverflowPolicy::DropNew)
                .build(),
        );
        b.create_topic("t").unwrap();
        let sub = b.subscription("t").open().unwrap();
        let p = b.publisher("t").unwrap();
        for _ in 0..10 {
            p.publish(Message::builder().build()).unwrap();
        }
        let snap = wait_for(&b, |s| s.messages.received == 10);
        assert_eq!(snap.messages.received, 10);
        assert!(snap.messages.dropped > 0, "expected drops on a capacity-1 queue");
        assert_eq!(snap.messages.dispatched + snap.messages.dropped, 10);
        drop(sub);
        b.shutdown();
    }

    #[test]
    fn try_publish_reports_full_queue() {
        // Tiny publish queue, no subscriber, dispatcher busy: fill it up.
        let b = Broker::start(
            BrokerConfig::builder()
                .publish_queue_capacity(1)
                .cost_model(crate::cost::CostModel::new(0.05, 0.0, 0.0))
                .build(),
        );
        b.create_topic("t").unwrap();
        let p = b.publisher("t").unwrap();
        // First publishes are absorbed; eventually the queue must report full
        // while the dispatcher spins 50 ms per message. The rejected message
        // comes back intact.
        let mut returned = None;
        for i in 0..64 {
            let m = Message::builder().property("i", i as i64).build();
            if let Err(TryPublishError::Full(m)) = p.try_publish(m) {
                returned = Some((i, m));
                break;
            }
        }
        let (i, m) = returned.expect("expected Full from try_publish");
        assert_eq!(m.property("i"), Some(&(i as i64).into()));
        b.shutdown();
    }

    #[test]
    fn correlation_id_filters_on_broker() {
        let b = broker();
        let sub =
            b.subscription("t").filter(Filter::correlation_id("[7;13]").unwrap()).open().unwrap();
        let p = b.publisher("t").unwrap();
        p.publish(Message::builder().correlation_id("#9").build()).unwrap();
        p.publish(Message::builder().correlation_id("#42").build()).unwrap();
        let got = sub.receive_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got.correlation_id(), Some("#9"));
        assert!(sub.receive_timeout(Duration::from_millis(50)).is_none());
        b.shutdown();
    }

    #[test]
    fn filter_evaluation_counts_are_per_subscription() {
        let b = broker();
        let _subs: Vec<_> = (0..3)
            .map(|i| {
                b.subscription("t")
                    .filter(Filter::correlation_id(&format!("#{i}")).unwrap())
                    .open()
                    .unwrap()
            })
            .collect();
        let p = b.publisher("t").unwrap();
        p.publish(Message::builder().correlation_id("#0").build()).unwrap();
        // All 3 filters evaluated (brute force), 1 matched.
        let snap = wait_for(&b, |s| s.messages.filter_evaluations == 3);
        assert_eq!(snap.messages.filter_evaluations, 3);
        assert_eq!(snap.messages.dispatched, 1);
        b.shutdown();
    }

    #[test]
    fn multiple_publishers_fifo_per_publisher() {
        let b = broker();
        let sub = b.subscription("t").open().unwrap();
        let p1 = b.publisher("t").unwrap();
        let p2 = p1.clone();
        let h1 = std::thread::spawn(move || {
            for i in 0..50i64 {
                p1.publish(Message::builder().property("src", 1i64).property("seq", i).build())
                    .unwrap();
            }
        });
        let h2 = std::thread::spawn(move || {
            for i in 0..50i64 {
                p2.publish(Message::builder().property("src", 2i64).property("seq", i).build())
                    .unwrap();
            }
        });
        h1.join().unwrap();
        h2.join().unwrap();
        let mut last = [-1i64; 3];
        for _ in 0..100 {
            let m = sub.receive_timeout(Duration::from_secs(2)).expect("message");
            let src = match m.property("src") {
                Some(rjms_selector::Value::Int(s)) => *s as usize,
                other => panic!("bad src {other:?}"),
            };
            let seq = match m.property("seq") {
                Some(rjms_selector::Value::Int(s)) => *s,
                other => panic!("bad seq {other:?}"),
            };
            assert!(seq > last[src], "per-publisher order violated");
            last[src] = seq;
        }
        b.shutdown();
    }

    #[test]
    fn priority_header_visible_to_selectors_end_to_end() {
        let b = broker();
        let sub = b
            .subscription("t")
            .filter(Filter::selector("JMSPriority >= 7").unwrap())
            .open()
            .unwrap();
        let p = b.publisher("t").unwrap();
        p.publish(Message::builder().priority(Priority::new(9)).build()).unwrap();
        p.publish(Message::builder().priority(Priority::new(1)).build()).unwrap();
        assert!(sub.receive_timeout(Duration::from_secs(2)).is_some());
        assert!(sub.receive_timeout(Duration::from_millis(50)).is_none());
        b.shutdown();
    }

    #[test]
    fn metrics_record_waiting_service_and_stages() {
        let b = Broker::start(
            BrokerConfig::builder().metrics(MetricsConfig::default().stage_sample_every(1)).build(),
        );
        b.create_topic("t").unwrap();
        let sub = b.subscription("t").open().unwrap();
        let p = b.publisher("t").unwrap();
        for _ in 0..16 {
            p.publish(Message::builder().build()).unwrap();
        }
        for _ in 0..16 {
            assert!(sub.receive_timeout(Duration::from_secs(2)).is_some());
        }
        let registry = b.metrics().expect("metrics enabled");
        let mut snap = registry.snapshot();
        for _ in 0..200 {
            if snap.histogram("broker.sojourn_ns").map(|h| h.count) == Some(16) {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
            snap = registry.snapshot();
        }
        for name in [
            "broker.waiting_ns",
            "broker.service_ns",
            "broker.sojourn_ns",
            "broker.stage.filter_ns",
        ] {
            let h = snap.histogram(name).unwrap_or_else(|| panic!("{name} empty"));
            assert_eq!(h.count, 16, "{name}");
        }
        // Sojourn dominates each component.
        let sojourn = snap.histogram("broker.sojourn_ns").unwrap();
        let waiting = snap.histogram("broker.waiting_ns").unwrap();
        assert!(sojourn.mean() >= waiting.mean());
        b.shutdown();
    }

    #[test]
    fn metrics_disabled_means_no_registry() {
        let b = broker();
        assert!(b.metrics().is_none());
        b.shutdown();
    }

    #[test]
    fn flow_disabled_means_no_gate_and_no_counters() {
        let b = broker();
        assert!(b.flow().is_none());
        assert!(b.snapshot().flow.is_none());
        b.shutdown();
    }

    #[test]
    fn flow_gate_grants_within_budget_and_implies_metrics() {
        let b = Broker::start(
            BrokerConfig::builder().flow(crate::config::FlowConfig::default()).build(),
        );
        b.create_topic("t").unwrap();
        // Flow implies metrics (the refresh loop reads the histograms).
        assert!(b.metrics().is_some());
        let gate = b.flow().expect("gate present");
        assert!(gate.lambda_max() > 0.0);
        let p = b.publisher("t").unwrap();
        for _ in 0..5 {
            p.publish(Message::builder().build()).unwrap();
        }
        let snap = b.snapshot();
        let flow = snap.flow.expect("flow counters present");
        assert_eq!(flow.granted, 5);
        assert_eq!(flow.shed + flow.deferred, 0);
        b.shutdown();
    }

    #[test]
    fn flow_gate_sheds_lowest_class_under_burst_overload() {
        // A one-millisecond burst budget drains after a handful of
        // back-to-back publishes; priority 0 maps to class 0 and is shed.
        let config = crate::config::FlowConfig::default().burst_seconds(0.001);
        let b = Broker::start(BrokerConfig::builder().flow(config).build());
        b.create_topic("t").unwrap();
        let p = b.publisher("t").unwrap();
        let mut shed = 0u64;
        for _ in 0..10_000 {
            let m = Message::builder().priority(Priority::new(0)).build();
            match p.publish(m) {
                Ok(()) | Err(Error::PublishDeferred { .. }) => {}
                Err(Error::PublishShed { class }) => {
                    assert_eq!(class, 0);
                    shed += 1;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(shed > 0, "burst overload should shed class 0");
        let flow = b.snapshot().flow.expect("flow counters present");
        assert_eq!(flow.shed, shed);
        assert!(flow.granted > 0);
        b.shutdown();
    }

    #[test]
    fn try_publish_denied_hands_the_message_back() {
        let config = crate::config::FlowConfig::default().burst_seconds(0.001);
        let b = Broker::start(BrokerConfig::builder().flow(config).build());
        b.create_topic("t").unwrap();
        let p = b.publisher("t").unwrap();
        let mut denied = false;
        for i in 0..10_000 {
            let m = Message::builder().priority(Priority::new(0)).property("i", i as i64).build();
            match p.try_publish(m) {
                Ok(()) => {}
                Err(TryPublishError::Denied { message, reason }) => {
                    assert_eq!(message.property("i"), Some(&(i as i64).into()));
                    assert!(matches!(
                        reason,
                        Error::PublishShed { .. } | Error::PublishDeferred { .. }
                    ));
                    denied = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(denied, "burst overload should deny a try_publish");
        b.shutdown();
    }

    /// Picks `count` topic names that land on distinct shards, one per
    /// shard index in order.
    fn topic_per_shard(shards: usize) -> Vec<String> {
        let mut names = vec![None; shards];
        let mut found = 0;
        for trial in 0.. {
            let name = format!("topic-{trial}");
            let shard = shard_of(&name, shards);
            if names[shard].is_none() {
                names[shard] = Some(name);
                found += 1;
                if found == shards {
                    break;
                }
            }
        }
        names.into_iter().map(Option::unwrap).collect()
    }

    #[test]
    fn single_dispatcher_snapshot_has_no_shards() {
        let b = broker();
        let p = b.publisher("t").unwrap();
        p.publish(Message::builder().build()).unwrap();
        let snap = wait_for(&b, |s| s.messages.received == 1);
        assert!(snap.shards.is_none());
        b.shutdown();
    }

    #[test]
    fn sharded_broker_partitions_topics_and_aggregates_counters() {
        const SHARDS: usize = 4;
        let b = Broker::start(
            BrokerConfig::builder().shards(SHARDS).metrics(MetricsConfig::default()).build(),
        );
        let topics = topic_per_shard(SHARDS);
        let subs: Vec<_> = topics
            .iter()
            .map(|t| {
                b.create_topic(t).unwrap();
                b.subscription(t.as_str()).open().unwrap()
            })
            .collect();
        // Publish shard+1 messages to the topic on each shard so every
        // per-shard counter is distinguishable.
        for (shard, topic) in topics.iter().enumerate() {
            let p = b.publisher(topic).unwrap();
            for _ in 0..=shard {
                p.publish(Message::builder().build()).unwrap();
            }
        }
        let expected_total = (1..=SHARDS as u64).sum::<u64>();
        for (shard, sub) in subs.iter().enumerate() {
            for _ in 0..=shard {
                assert!(sub.receive_timeout(Duration::from_secs(2)).is_some());
            }
        }
        let snap = wait_for(&b, |s| s.messages.dispatched == expected_total);
        let shards = snap.shards.as_ref().expect("sharded snapshot");
        assert_eq!(shards.len(), SHARDS);
        for (shard, s) in shards.iter().enumerate() {
            assert_eq!(s.shard, shard);
            assert_eq!(s.topics, 1);
            assert_eq!(s.received, shard as u64 + 1);
            assert_eq!(s.dispatched, shard as u64 + 1);
        }
        // Per-shard counters partition the aggregates exactly.
        assert_eq!(shards.iter().map(|s| s.received).sum::<u64>(), snap.messages.received);
        assert_eq!(shards.iter().map(|s| s.dispatched).sum::<u64>(), snap.messages.dispatched);
        // Each shard publishes its own labeled histogram series (samples
        // land after the dispatcher's idle flush, so poll briefly).
        let registry = b.metrics().unwrap();
        let series_count = |shard: usize| {
            let name = format!("broker.waiting_ns{{shard=\"{shard}\"}}");
            registry.snapshot().histogram(&name).map_or(0, |h| h.count)
        };
        for shard in 0..SHARDS {
            for _ in 0..200 {
                if series_count(shard) == shard as u64 + 1 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            assert_eq!(series_count(shard), shard as u64 + 1);
        }
        b.shutdown();
    }

    #[test]
    fn sharded_delivery_preserves_per_topic_order() {
        let b = Broker::start(BrokerConfig::builder().shards(3).build());
        b.create_topic("ordered").unwrap();
        let sub = b.subscription("ordered").open().unwrap();
        let p = b.publisher("ordered").unwrap();
        for i in 0..50 {
            p.publish(Message::builder().property("i", i as i64).build()).unwrap();
        }
        for i in 0..50 {
            let m = sub.receive_timeout(Duration::from_secs(2)).expect("message");
            assert_eq!(m.property("i"), Some(&(i as i64).into()));
        }
        b.shutdown();
    }

    #[test]
    fn shard_reports_cover_every_shard() {
        const SHARDS: usize = 2;
        let b = Broker::start(
            BrokerConfig::builder()
                .shards(SHARDS)
                .cost_model(crate::cost::CostModel::CORRELATION_ID)
                .metrics(MetricsConfig::default())
                .build(),
        );
        let topics = topic_per_shard(SHARDS);
        let subs: Vec<_> = topics
            .iter()
            .map(|t| {
                b.create_topic(t).unwrap();
                b.subscription(t.as_str()).open().unwrap()
            })
            .collect();
        for topic in &topics {
            let p = b.publisher(topic).unwrap();
            for _ in 0..5 {
                p.publish(Message::builder().build()).unwrap();
            }
        }
        for sub in &subs {
            for _ in 0..5 {
                assert!(sub.receive_timeout(Duration::from_secs(2)).is_some());
            }
        }
        // Histogram samples land after the dispatcher's idle flush; poll
        // until both shards report all five.
        let mut reports = b.shard_reports();
        for _ in 0..200 {
            if reports.len() == SHARDS && reports.iter().all(|r| r.samples == 5) {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
            reports = b.shard_reports();
        }
        assert_eq!(reports.len(), SHARDS);
        for (shard, r) in reports.iter().enumerate() {
            assert_eq!(r.shard, shard);
            assert_eq!(r.samples, 5);
            assert!(r.arrival_rate > 0.0);
            assert!((r.replication_grade - 1.0).abs() < 1e-9);
            // Far too few samples for a calibration verdict.
            assert!(matches!(r.verdict, ModelVerdict::Insufficient { .. }));
        }
        b.shutdown();
    }
}
