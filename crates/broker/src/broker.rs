//! The broker: topic registry, dispatcher thread, publisher and subscriber
//! handles.
//!
//! The broker mirrors the structure the paper measured:
//!
//! * Publishers send messages into one bounded *publish queue*; when the
//!   server cannot keep up, the full queue blocks publishers — the push-back
//!   mechanism the paper observed (no server-side loss).
//! * A single *dispatcher thread* (the paper's server is CPU-bound on a
//!   single-CPU machine) pops each message, evaluates **every** subscription
//!   filter of the message's topic — FioranoMQ performs no filter-identity
//!   optimization, and the paper verified identical and distinct filters cost
//!   the same — and enqueues one copy per matching subscriber.
//! * Subscribers consume from bounded per-subscription queues.
//!
//! With a [`CostModel`](crate::cost::CostModel) installed, the dispatcher
//! additionally burns `t_rcv` per message, `t_fltr` per filter evaluation and
//! `t_tx` per forwarded copy, so a saturated broker reproduces Eq. 1 in wall
//! clock time.

use crate::config::{BrokerConfig, OverflowPolicy};
use crate::error::{BrokerError, ReceiveError};
use crate::filter::Filter;
use crate::message::Message;
use crate::pattern::TopicPattern;
use crate::persist::{encode_publish, JournalRecord};
use crate::stats::BrokerStats;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::{Mutex, RwLock};
use rjms_journal::{Journal, JournalStats};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

/// Unique id of a subscription within a broker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(u64);

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub-{}", self.0)
    }
}

/// One subscriber's registration on a topic.
struct Subscription {
    filter: Filter,
    sender: Sender<Arc<Message>>,
    /// Cleared when the subscriber handle is dropped; the dispatcher prunes
    /// inactive subscriptions lazily.
    active: Arc<AtomicBool>,
}

/// A topic: a named set of subscriptions plus named durable subscriptions.
struct Topic {
    name: String,
    subscriptions: RwLock<Vec<Arc<Subscription>>>,
    durables: RwLock<Vec<Arc<DurableState>>>,
    received: AtomicU64,
    dispatched: AtomicU64,
}

impl Topic {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            subscriptions: RwLock::new(Vec::new()),
            durables: RwLock::new(Vec::new()),
            received: AtomicU64::new(0),
            dispatched: AtomicU64::new(0),
        }
    }
}

/// Per-topic message counters (see [`Broker::topic_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopicStats {
    /// Messages received on this topic.
    pub received: u64,
    /// Message copies dispatched from this topic.
    pub dispatched: u64,
}

impl TopicStats {
    /// Mean replication grade on this topic; `None` before the first
    /// message.
    pub fn replication_grade(&self) -> Option<f64> {
        if self.received > 0 {
            Some(self.dispatched as f64 / self.received as f64)
        } else {
            None
        }
    }
}

/// Server-side state of a named durable subscription (paper §II-A: in the
/// durable mode, messages are also forwarded to subscribers that are
/// currently not connected — the broker retains them).
struct DurableState {
    name: String,
    filter: Mutex<Filter>,
    /// Messages retained while no consumer is connected (bounded by
    /// `durable_buffer_capacity`, oldest dropped on overflow).
    retained: Mutex<VecDeque<Arc<Message>>>,
    /// The connected consumer's queue, if any.
    connection: Mutex<Option<Sender<Arc<Message>>>>,
}

/// Work items for the dispatcher thread.
enum DispatchItem {
    Publish { topic: Arc<Topic>, message: Arc<Message> },
    Shutdown,
}

/// Shared broker state.
struct BrokerInner {
    config: BrokerConfig,
    stats: Arc<BrokerStats>,
    topics: RwLock<HashMap<String, Arc<Topic>>>,
    /// Wildcard subscriptions, attached to future topics on creation.
    patterns: RwLock<Vec<PatternSubscription>>,
    next_subscription_id: AtomicU64,
    stopped: AtomicBool,
    /// The write-ahead journal, when persistence is enabled. The dispatcher
    /// appends publishes and checkpoints; API threads append topology
    /// records (topic/durable lifecycle).
    journal: Option<Mutex<Journal>>,
}

impl BrokerInner {
    /// Appends one record to the journal (no-op without persistence),
    /// refreshing the journal gauges in [`BrokerStats`]. Returns the
    /// record's journal offset.
    ///
    /// A journal write failure is fatal: the broker cannot honor the
    /// durability contract without its write-ahead log.
    fn append_record(&self, payload: &[u8]) -> Option<u64> {
        let journal = self.journal.as_ref()?;
        let mut journal = journal.lock();
        let offset = journal
            .append(payload)
            .expect("write-ahead journal append failed; cannot continue durably");
        self.stats.update_journal(&journal.stats());
        Some(offset)
    }

    /// Forces the journal to stable storage (no-op without persistence).
    fn sync_journal(&self) {
        if let Some(journal) = &self.journal {
            let mut journal = journal.lock();
            journal.sync().expect("write-ahead journal sync failed; cannot continue durably");
            self.stats.update_journal(&journal.stats());
        }
    }
}

/// A wildcard subscription waiting to be attached to future topics.
struct PatternSubscription {
    pattern: TopicPattern,
    subscription: Weak<Subscription>,
}

/// A JMS-style publish/subscribe message broker.
///
/// # Examples
///
/// ```
/// use rjms_broker::{Broker, BrokerConfig, Filter, Message};
///
/// # fn main() -> Result<(), rjms_broker::BrokerError> {
/// let broker = Broker::start(BrokerConfig::default());
/// broker.create_topic("presence")?;
///
/// let subscriber = broker.subscribe("presence", Filter::selector("user = 'alice'").unwrap())?;
/// let publisher = broker.publisher("presence")?;
/// publisher.publish(Message::builder().property("user", "alice").build())?;
///
/// let received = subscriber.receive_timeout(std::time::Duration::from_secs(1));
/// assert!(received.is_some());
/// broker.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct Broker {
    inner: Arc<BrokerInner>,
    publish_tx: Sender<DispatchItem>,
    dispatcher: Option<JoinHandle<()>>,
}

impl fmt::Debug for Broker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Broker")
            .field("topics", &self.topic_names())
            .field("stopped", &self.inner.stopped.load(Ordering::Relaxed))
            .finish()
    }
}

impl Broker {
    /// Starts a broker with the given configuration; spawns the dispatcher
    /// thread.
    ///
    /// With [`BrokerConfig::persistence`] set, the write-ahead journal is
    /// opened (truncating a torn tail back to the last whole frame) and
    /// replayed: topics and durable subscriptions are re-created and
    /// messages published but not yet checkpointed as delivered go back
    /// into each durable subscription's retained backlog, ready for
    /// re-delivery on the next connect.
    ///
    /// # Panics
    ///
    /// Panics if the journal cannot be opened or replayed (I/O failure or
    /// corruption in a sealed segment) — a broker that cannot read its
    /// write-ahead log must not silently start empty.
    pub fn start(config: BrokerConfig) -> Broker {
        let stats = Arc::new(BrokerStats::new());
        let mut topics = HashMap::new();
        let journal = config.persistence.as_ref().map(|persistence| {
            let (journal, _report) = Journal::open(persistence.journal.clone())
                .expect("failed to open the write-ahead journal");
            topics = recover_topics(&journal, &config);
            stats.update_journal(&journal.stats());
            Mutex::new(journal)
        });

        let (publish_tx, publish_rx) = bounded(config.publish_queue_capacity);
        let inner = Arc::new(BrokerInner {
            config,
            stats,
            topics: RwLock::new(topics),
            patterns: RwLock::new(Vec::new()),
            next_subscription_id: AtomicU64::new(1),
            stopped: AtomicBool::new(false),
            journal,
        });
        let dispatcher_inner = Arc::clone(&inner);
        let dispatcher = std::thread::Builder::new()
            .name("rjms-dispatcher".to_owned())
            .spawn(move || dispatch_loop(dispatcher_inner, publish_rx))
            .expect("failed to spawn dispatcher thread");
        Broker { inner, publish_tx, dispatcher: Some(dispatcher) }
    }

    /// Creates a topic.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::TopicExists`] for duplicates,
    /// [`BrokerError::InvalidTopicName`] for empty/control-character names,
    /// and [`BrokerError::Stopped`] after shutdown.
    pub fn create_topic(&self, name: &str) -> Result<(), BrokerError> {
        self.ensure_running()?;
        if name.is_empty() || name.chars().any(|c| c.is_control()) {
            return Err(BrokerError::InvalidTopicName { topic: name.to_owned() });
        }
        let mut topics = self.inner.topics.write();
        if topics.contains_key(name) {
            return Err(BrokerError::TopicExists { topic: name.to_owned() });
        }
        let topic = Arc::new(Topic::new(name));
        // Attach live wildcard subscriptions that match the new topic,
        // pruning dead pattern entries on the way.
        {
            let mut patterns = self.inner.patterns.write();
            patterns.retain(|p| match p.subscription.upgrade() {
                Some(sub) if sub.active.load(Ordering::Relaxed) => {
                    if p.pattern.matches(name) {
                        topic.subscriptions.write().push(sub);
                    }
                    true
                }
                _ => false,
            });
        }
        // Logged while holding the topics lock so the TopicCreated record
        // precedes any Publish record for this topic in journal order.
        self.inner.append_record(&JournalRecord::TopicCreated { topic: name.to_owned() }.encode());
        topics.insert(name.to_owned(), topic);
        Ok(())
    }

    /// The names of all topics, sorted.
    pub fn topic_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.topics.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// The number of live subscriptions on a topic (0 for unknown topics).
    pub fn subscription_count(&self, topic: &str) -> usize {
        match self.inner.topics.read().get(topic) {
            None => 0,
            Some(t) => {
                t.subscriptions.read().iter().filter(|s| s.active.load(Ordering::Relaxed)).count()
            }
        }
    }

    /// Creates a publisher handle for a topic.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::TopicNotFound`] for unknown topics and
    /// [`BrokerError::Stopped`] after shutdown.
    pub fn publisher(&self, topic: &str) -> Result<Publisher, BrokerError> {
        self.ensure_running()?;
        let topic = self.lookup(topic)?;
        Ok(Publisher { topic, publish_tx: self.publish_tx.clone(), inner: Arc::clone(&self.inner) })
    }

    /// Subscribes to a topic with a filter; returns the consuming handle.
    ///
    /// The subscription is removed automatically when the returned
    /// [`Subscriber`] is dropped (the paper's *non-durable* mode: messages
    /// are only forwarded to subscribers that are presently online).
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::TopicNotFound`] for unknown topics and
    /// [`BrokerError::Stopped`] after shutdown.
    pub fn subscribe(&self, topic: &str, filter: Filter) -> Result<Subscriber, BrokerError> {
        self.ensure_running()?;
        let topic = self.lookup(topic)?;
        let (tx, rx) = bounded(self.inner.config.subscriber_queue_capacity);
        let id = SubscriptionId(self.inner.next_subscription_id.fetch_add(1, Ordering::Relaxed));
        let active = Arc::new(AtomicBool::new(true));
        let sub = Arc::new(Subscription { filter, sender: tx, active: Arc::clone(&active) });
        topic.subscriptions.write().push(sub);
        Ok(Subscriber {
            id,
            topic_name: topic.name.clone(),
            receiver: rx,
            active,
            durable: None,
            pending: Mutex::new(VecDeque::new()),
        })
    }

    /// Subscribes to every topic — current *and future* — whose name
    /// matches a hierarchical [`TopicPattern`] (`orders.*`, `sensors.>`).
    ///
    /// All matching topics feed the one returned [`Subscriber`]; dropping
    /// it cancels the subscription everywhere.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Stopped`] after shutdown. Unlike
    /// [`Broker::subscribe`], an unknown (not-yet-created) topic is not an
    /// error — matching is by pattern.
    pub fn subscribe_pattern(
        &self,
        pattern: &TopicPattern,
        filter: Filter,
    ) -> Result<Subscriber, BrokerError> {
        self.ensure_running()?;
        let (tx, rx) = bounded(self.inner.config.subscriber_queue_capacity);
        let id = SubscriptionId(self.inner.next_subscription_id.fetch_add(1, Ordering::Relaxed));
        let active = Arc::new(AtomicBool::new(true));
        let sub = Arc::new(Subscription { filter, sender: tx, active: Arc::clone(&active) });

        // Attach to all existing matching topics.
        {
            let topics = self.inner.topics.read();
            for (name, topic) in topics.iter() {
                if pattern.matches(name) {
                    topic.subscriptions.write().push(Arc::clone(&sub));
                }
            }
        }
        // Register for topics created later.
        self.inner.patterns.write().push(PatternSubscription {
            pattern: pattern.clone(),
            subscription: Arc::downgrade(&sub),
        });

        Ok(Subscriber {
            id,
            topic_name: pattern.to_string(),
            receiver: rx,
            active,
            durable: None,
            pending: Mutex::new(VecDeque::new()),
        })
    }

    /// Connects to (or creates) a *durable* subscription.
    ///
    /// While no consumer is connected, matching messages are retained (up
    /// to [`crate::BrokerConfig::durable_buffer_capacity`], oldest dropped)
    /// and delivered ahead of live traffic on the next connect — the
    /// paper's *durable mode*. Reconnecting with a *different* filter
    /// discards the retained backlog, matching JMS's
    /// change-of-selector semantics.
    ///
    /// Retained messages whose TTL has elapsed by the time of reconnection
    /// are discarded, not delivered.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::DurableNameInUse`] if a consumer is already
    /// connected under this name, [`BrokerError::TopicNotFound`] /
    /// [`BrokerError::Stopped`] as for [`Broker::subscribe`].
    pub fn subscribe_durable(
        &self,
        topic: &str,
        name: &str,
        filter: Filter,
    ) -> Result<Subscriber, BrokerError> {
        self.ensure_running()?;
        let topic = self.lookup(topic)?;
        let (tx, rx) = bounded(self.inner.config.subscriber_queue_capacity);
        let id = SubscriptionId(self.inner.next_subscription_id.fetch_add(1, Ordering::Relaxed));

        let mut durables = topic.durables.write();
        let state = match durables.iter().find(|d| d.name == name) {
            Some(existing) => {
                let mut connection = existing.connection.lock();
                if connection.is_some() {
                    return Err(BrokerError::DurableNameInUse {
                        topic: topic.name.clone(),
                        name: name.to_owned(),
                    });
                }
                let mut existing_filter = existing.filter.lock();
                if *existing_filter != filter {
                    // JMS: changing the selector is equivalent to deleting
                    // and recreating the subscription. A re-registration
                    // record makes replay discard the stale backlog too.
                    existing.retained.lock().clear();
                    *existing_filter = filter.clone();
                    self.inner.append_record(
                        &JournalRecord::DurableRegistered {
                            topic: topic.name.clone(),
                            name: name.to_owned(),
                            filter,
                        }
                        .encode(),
                    );
                }
                *connection = Some(tx);
                Arc::clone(existing)
            }
            None => {
                let state = Arc::new(DurableState {
                    name: name.to_owned(),
                    filter: Mutex::new(filter.clone()),
                    retained: Mutex::new(VecDeque::new()),
                    connection: Mutex::new(Some(tx)),
                });
                durables.push(Arc::clone(&state));
                self.inner.append_record(
                    &JournalRecord::DurableRegistered {
                        topic: topic.name.clone(),
                        name: name.to_owned(),
                        filter,
                    }
                    .encode(),
                );
                state
            }
        };

        // Move the retained backlog into the subscriber handle; it is
        // consumed before live messages.
        let pending: VecDeque<Arc<Message>> = {
            let mut retained = state.retained.lock();
            retained.drain(..).filter(|m| !m.is_expired()).collect()
        };

        Ok(Subscriber {
            id,
            topic_name: topic.name.clone(),
            receiver: rx,
            active: Arc::new(AtomicBool::new(true)),
            durable: Some(Arc::clone(&state)),
            pending: Mutex::new(pending),
        })
    }

    /// Permanently removes a durable subscription and its retained
    /// messages.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::DurableStillConnected`] while a consumer is
    /// connected and [`BrokerError::DurableNotFound`] for unknown names.
    pub fn unsubscribe_durable(&self, topic: &str, name: &str) -> Result<(), BrokerError> {
        self.ensure_running()?;
        let topic = self.lookup(topic)?;
        let mut durables = topic.durables.write();
        let Some(index) = durables.iter().position(|d| d.name == name) else {
            return Err(BrokerError::DurableNotFound {
                topic: topic.name.clone(),
                name: name.to_owned(),
            });
        };
        if durables[index].connection.lock().is_some() {
            return Err(BrokerError::DurableStillConnected {
                topic: topic.name.clone(),
                name: name.to_owned(),
            });
        }
        durables.remove(index);
        self.inner.append_record(
            &JournalRecord::DurableUnsubscribed {
                topic: topic.name.clone(),
                name: name.to_owned(),
            }
            .encode(),
        );
        Ok(())
    }

    /// The names of all durable subscriptions on a topic, sorted.
    pub fn durable_names(&self, topic: &str) -> Vec<String> {
        match self.inner.topics.read().get(topic) {
            None => Vec::new(),
            Some(t) => {
                let mut names: Vec<String> =
                    t.durables.read().iter().map(|d| d.name.clone()).collect();
                names.sort();
                names
            }
        }
    }

    /// Whether a consumer is currently connected to the named durable
    /// subscription (`false` for unknown names).
    pub fn durable_connected(&self, topic: &str, name: &str) -> bool {
        self.inner
            .topics
            .read()
            .get(topic)
            .map(|t| {
                t.durables.read().iter().any(|d| d.name == name && d.connection.lock().is_some())
            })
            .unwrap_or(false)
    }

    /// The number of messages currently retained for a disconnected
    /// durable subscription (0 for unknown names).
    pub fn retained_count(&self, topic: &str, name: &str) -> usize {
        self.inner
            .topics
            .read()
            .get(topic)
            .and_then(|t| {
                t.durables.read().iter().find(|d| d.name == name).map(|d| d.retained.lock().len())
            })
            .unwrap_or(0)
    }

    /// The broker's statistics counters.
    pub fn stats(&self) -> Arc<BrokerStats> {
        Arc::clone(&self.inner.stats)
    }

    /// A snapshot of the write-ahead journal's counters; `None` without
    /// persistence.
    pub fn journal_stats(&self) -> Option<JournalStats> {
        self.inner.journal.as_ref().map(|j| j.lock().stats())
    }

    /// Per-topic counters; `None` for unknown topics.
    pub fn topic_stats(&self, topic: &str) -> Option<TopicStats> {
        self.inner.topics.read().get(topic).map(|t| TopicStats {
            received: t.received.load(Ordering::Relaxed),
            dispatched: t.dispatched.load(Ordering::Relaxed),
        })
    }

    /// Stops the broker: publishers fail fast, the dispatcher drains the
    /// publish queue and exits, and this call joins it.
    ///
    /// Queued messages are still *delivered* during the drain (the paper's
    /// persistent mode: no server-side loss). Consequently, under
    /// [`OverflowPolicy::Block`] this call waits for slow subscribers —
    /// drop subscribers that will never drain before shutting down, or use
    /// [`OverflowPolicy::DropNew`] for lossy teardown.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.inner.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        // The dispatcher drains queued items and exits on Shutdown.
        let _ = self.publish_tx.send(DispatchItem::Shutdown);
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }

    fn ensure_running(&self) -> Result<(), BrokerError> {
        if self.inner.stopped.load(Ordering::Relaxed) {
            Err(BrokerError::Stopped)
        } else {
            Ok(())
        }
    }

    fn lookup(&self, name: &str) -> Result<Arc<Topic>, BrokerError> {
        self.inner
            .topics
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| BrokerError::TopicNotFound { topic: name.to_owned() })
    }
}

impl Drop for Broker {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Durable-consumer progress not yet written to the journal: the highest
/// delivered offset plus the number of deliveries since the last
/// checkpoint record.
struct PendingCheckpoint {
    offset: u64,
    deliveries: u64,
}

/// The dispatcher thread: pops publish items and fans out message copies.
fn dispatch_loop(inner: Arc<BrokerInner>, publish_rx: Receiver<DispatchItem>) {
    let cost = inner.config.cost_model;
    let checkpoint_every =
        inner.config.persistence.as_ref().map_or(u64::MAX, |p| p.checkpoint_every);
    // Checkpoint bookkeeping, keyed by (topic, durable name). Only the
    // dispatcher writes checkpoints, so this needs no locking.
    let mut checkpoints: HashMap<(String, String), PendingCheckpoint> = HashMap::new();
    while let Ok(item) = publish_rx.recv() {
        let (topic, message) = match item {
            DispatchItem::Shutdown => break,
            DispatchItem::Publish { topic, message } => (topic, message),
        };
        inner.stats.record_received();
        if let Some(c) = &cost {
            c.spin_receive();
        }

        // TTL: expired messages are never delivered (JMS §4.8); the receive
        // work has already been paid.
        if message.is_expired() {
            inner.stats.record_expired_message();
            continue;
        }

        // Write-ahead: the message is on disk (per the fsync policy) before
        // any subscriber sees it. This append is the real-I/O counterpart
        // of the synthetic `t_rcv`/`t_fltr`/`t_tx` spins — the `t_store`
        // term of the extended cost model.
        let publish_offset = inner.append_record(&encode_publish(&topic.name, &message));

        let mut copies = 0u64;
        let mut evaluations = 0u64;
        let mut needs_prune = false;
        {
            let subs = topic.subscriptions.read();
            for sub in subs.iter() {
                if !sub.active.load(Ordering::Relaxed) {
                    needs_prune = true;
                    continue;
                }
                evaluations += 1;
                if let Some(c) = &cost {
                    c.spin_filters(1);
                }
                if !sub.filter.matches(&message) {
                    continue;
                }
                if let Some(c) = &cost {
                    c.spin_transmit();
                }
                match deliver(sub, Arc::clone(&message), inner.config.overflow_policy) {
                    Delivery::Sent => copies += 1,
                    Delivery::Dropped => inner.stats.record_dropped(),
                    Delivery::Disconnected => {
                        sub.active.store(false, Ordering::Relaxed);
                        inner.stats.record_expired_subscription();
                        needs_prune = true;
                    }
                }
            }
        }
        // Durable subscriptions: deliver when connected, retain otherwise.
        {
            let durables = topic.durables.read();
            for durable in durables.iter() {
                evaluations += 1;
                if let Some(c) = &cost {
                    c.spin_filters(1);
                }
                if !durable.filter.lock().matches(&message) {
                    continue;
                }
                if let Some(c) = &cost {
                    c.spin_transmit();
                }
                let mut connection = durable.connection.lock();
                let delivered = match connection.as_ref() {
                    Some(sender) => {
                        match deliver_to(sender, Arc::clone(&message), inner.config.overflow_policy)
                        {
                            Delivery::Sent => {
                                copies += 1;
                                true
                            }
                            Delivery::Dropped => {
                                inner.stats.record_dropped();
                                true
                            }
                            Delivery::Disconnected => {
                                *connection = None;
                                false
                            }
                        }
                    }
                    None => false,
                };
                if delivered {
                    // Handed to a connected consumer (or consciously
                    // dropped by the overflow policy): progress that a
                    // checkpoint record may cover. Messages retained for
                    // offline consumers are deliberately NOT checkpointed,
                    // so replay rebuilds the retained backlog.
                    if let Some(offset) = publish_offset {
                        let key = (topic.name.clone(), durable.name.clone());
                        let entry = checkpoints
                            .entry(key)
                            .or_insert(PendingCheckpoint { offset, deliveries: 0 });
                        entry.offset = offset;
                        entry.deliveries += 1;
                        if entry.deliveries >= checkpoint_every {
                            inner.append_record(
                                &JournalRecord::DurableCheckpoint {
                                    topic: topic.name.clone(),
                                    name: durable.name.clone(),
                                    offset,
                                }
                                .encode(),
                            );
                            entry.deliveries = 0;
                        }
                    }
                } else {
                    // Retain for the offline consumer, dropping the oldest
                    // message beyond the buffer capacity.
                    let mut retained = durable.retained.lock();
                    if retained.len() >= inner.config.durable_buffer_capacity {
                        retained.pop_front();
                        inner.stats.record_dropped();
                    }
                    retained.push_back(Arc::clone(&message));
                    inner.stats.record_retained();
                }
            }
        }

        inner.stats.record_filter_evaluations(evaluations);
        inner.stats.record_dispatched(copies);
        topic.received.fetch_add(1, Ordering::Relaxed);
        topic.dispatched.fetch_add(copies, Ordering::Relaxed);

        if needs_prune {
            topic.subscriptions.write().retain(|s| s.active.load(Ordering::Relaxed));
        }
    }

    // Shutdown: write the final checkpoints and force the journal to disk
    // so a clean stop never re-delivers already-consumed messages.
    for ((topic, name), pending) in checkpoints {
        if pending.deliveries > 0 {
            inner.append_record(
                &JournalRecord::DurableCheckpoint { topic, name, offset: pending.offset }.encode(),
            );
        }
    }
    inner.sync_journal();

    // Drop every subscription's sender so that blocked or future
    // subscriber receives observe disconnection once their queues drain.
    for topic in inner.topics.read().values() {
        topic.subscriptions.write().clear();
    }
}

/// Replays the journal into a fresh topic registry: topics and durable
/// subscriptions are re-created, and every publish logged after a durable
/// subscription's registration but not covered by one of its checkpoint
/// records goes back into its retained backlog (at-least-once
/// re-delivery). Expired messages and backlog beyond
/// `durable_buffer_capacity` are discarded, mirroring live behaviour.
fn recover_topics(journal: &Journal, config: &BrokerConfig) -> HashMap<String, Arc<Topic>> {
    struct DurableRecovery {
        filter: Filter,
        /// `(journal offset, message)` publishes awaiting a checkpoint.
        backlog: VecDeque<(u64, Arc<Message>)>,
    }

    let mut recovered: HashMap<String, HashMap<String, DurableRecovery>> = HashMap::new();
    for item in journal.replay(journal.first_offset()) {
        let (offset, payload) = item.expect("failed to read back the write-ahead journal");
        let record = JournalRecord::decode(&payload).unwrap_or_else(|e| {
            // The frame passed its CRC, so this is version skew or a bug,
            // not a torn write — refuse to guess at broker state.
            panic!("journal frame {offset} is checksummed but undecodable: {e}")
        });
        match record {
            JournalRecord::TopicCreated { topic } => {
                recovered.entry(topic).or_default();
            }
            JournalRecord::Publish { topic, message } => {
                let message = Arc::new(message);
                if let Some(durables) = recovered.get_mut(&topic) {
                    for durable in durables.values_mut() {
                        if durable.filter.matches(&message) {
                            durable.backlog.push_back((offset, Arc::clone(&message)));
                        }
                    }
                }
            }
            JournalRecord::DurableRegistered { topic, name, filter } => {
                // (Re-)registration starts from an empty backlog — a
                // changed filter discards retained messages (JMS
                // change-of-selector semantics).
                recovered
                    .entry(topic)
                    .or_default()
                    .insert(name, DurableRecovery { filter, backlog: VecDeque::new() });
            }
            JournalRecord::DurableCheckpoint { topic, name, offset } => {
                if let Some(durable) =
                    recovered.get_mut(&topic).and_then(|durables| durables.get_mut(&name))
                {
                    while durable.backlog.front().is_some_and(|(o, _)| *o <= offset) {
                        durable.backlog.pop_front();
                    }
                }
            }
            JournalRecord::DurableUnsubscribed { topic, name } => {
                if let Some(durables) = recovered.get_mut(&topic) {
                    durables.remove(&name);
                }
            }
        }
    }

    let mut topics = HashMap::with_capacity(recovered.len());
    for (topic_name, durables) in recovered {
        let topic = Arc::new(Topic::new(&topic_name));
        {
            let mut topic_durables = topic.durables.write();
            for (durable_name, recovery) in durables {
                let mut retained: VecDeque<Arc<Message>> = recovery
                    .backlog
                    .into_iter()
                    .map(|(_, message)| message)
                    .filter(|message| !message.is_expired())
                    .collect();
                while retained.len() > config.durable_buffer_capacity {
                    retained.pop_front();
                }
                topic_durables.push(Arc::new(DurableState {
                    name: durable_name,
                    filter: Mutex::new(recovery.filter),
                    retained: Mutex::new(retained),
                    connection: Mutex::new(None),
                }));
            }
        }
        topics.insert(topic_name, topic);
    }
    topics
}

enum Delivery {
    Sent,
    Dropped,
    Disconnected,
}

/// Delivers one copy according to the overflow policy.
fn deliver(sub: &Subscription, message: Arc<Message>, policy: OverflowPolicy) -> Delivery {
    deliver_to(&sub.sender, message, policy)
}

/// Delivers one copy into an arbitrary subscriber queue.
fn deliver_to(
    sender: &Sender<Arc<Message>>,
    message: Arc<Message>,
    policy: OverflowPolicy,
) -> Delivery {
    match policy {
        OverflowPolicy::Block => match sender.send(message) {
            Ok(()) => Delivery::Sent,
            Err(_) => Delivery::Disconnected,
        },
        OverflowPolicy::DropNew => match sender.try_send(message) {
            Ok(()) => Delivery::Sent,
            Err(TrySendError::Full(_)) => Delivery::Dropped,
            Err(TrySendError::Disconnected(_)) => Delivery::Disconnected,
        },
    }
}

/// A handle for publishing messages to one topic.
///
/// Cloneable; each clone shares the same bounded publish queue, so all
/// publishers experience the broker's push-back together.
#[derive(Clone)]
pub struct Publisher {
    topic: Arc<Topic>,
    publish_tx: Sender<DispatchItem>,
    inner: Arc<BrokerInner>,
}

impl fmt::Debug for Publisher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Publisher").field("topic", &self.topic.name).finish()
    }
}

impl Publisher {
    /// The topic this publisher sends to.
    pub fn topic(&self) -> &str {
        &self.topic.name
    }

    /// Publishes a message, blocking while the broker's publish queue is
    /// full (push-back).
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Stopped`] once the broker has been shut down.
    pub fn publish(&self, message: Message) -> Result<(), BrokerError> {
        if self.inner.stopped.load(Ordering::Relaxed) {
            return Err(BrokerError::Stopped);
        }
        self.publish_tx
            .send(DispatchItem::Publish {
                topic: Arc::clone(&self.topic),
                message: Arc::new(message),
            })
            .map_err(|_| BrokerError::Stopped)
    }

    /// Publishes without blocking; returns the message back if the publish
    /// queue is currently full.
    ///
    /// # Errors
    ///
    /// `Err(Some(message))` when the queue is full, `Err(None)` when the
    /// broker is stopped.
    #[allow(clippy::result_large_err)] // the Err hands the message back (push-back)
    pub fn try_publish(&self, message: Message) -> Result<(), Option<Message>> {
        if self.inner.stopped.load(Ordering::Relaxed) {
            return Err(None);
        }
        self.publish_tx
            .try_send(DispatchItem::Publish {
                topic: Arc::clone(&self.topic),
                message: Arc::new(message),
            })
            .map_err(|e| match e {
                TrySendError::Full(DispatchItem::Publish { message, .. }) => {
                    // Hand the message back; it was never shared.
                    Some(Arc::try_unwrap(message).expect("unshared message"))
                }
                _ => None,
            })
    }
}

/// A handle for consuming messages from one subscription.
///
/// Dropping the subscriber cancels the subscription (non-durable semantics).
pub struct Subscriber {
    id: SubscriptionId,
    topic_name: String,
    receiver: Receiver<Arc<Message>>,
    active: Arc<AtomicBool>,
    /// Durable-subscription state, if this is a durable consumer.
    durable: Option<Arc<DurableState>>,
    /// Retained backlog moved in at (durable) connect time; consumed before
    /// live messages. Interior mutability keeps `receive(&self)` ergonomic
    /// (matching the underlying channel receiver).
    pending: Mutex<VecDeque<Arc<Message>>>,
}

impl fmt::Debug for Subscriber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Subscriber").field("id", &self.id).field("topic", &self.topic_name).finish()
    }
}

impl Subscriber {
    /// This subscription's id.
    pub fn id(&self) -> SubscriptionId {
        self.id
    }

    /// The topic subscribed to.
    pub fn topic(&self) -> &str {
        &self.topic_name
    }

    /// Whether this is a durable subscription consumer.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The durable subscription name, if this is a durable consumer.
    pub fn durable_name(&self) -> Option<&str> {
        self.durable.as_ref().map(|d| d.name.as_str())
    }

    /// Blocking receive. For durable consumers, the retained backlog is
    /// delivered before live messages.
    ///
    /// # Errors
    ///
    /// Returns [`ReceiveError`] when the broker has shut down and the queue
    /// is drained.
    pub fn receive(&self) -> Result<Arc<Message>, ReceiveError> {
        if let Some(m) = self.pending.lock().pop_front() {
            return Ok(m);
        }
        self.receiver.recv().map_err(|_| ReceiveError)
    }

    /// Non-blocking receive (retained backlog first for durable consumers).
    pub fn try_receive(&self) -> Option<Arc<Message>> {
        if let Some(m) = self.pending.lock().pop_front() {
            return Some(m);
        }
        self.receiver.try_recv().ok()
    }

    /// Receive with a timeout; `None` on timeout or closed queue.
    pub fn receive_timeout(&self, timeout: Duration) -> Option<Arc<Message>> {
        if let Some(m) = self.pending.lock().pop_front() {
            return Some(m);
        }
        self.receiver.recv_timeout(timeout).ok()
    }

    /// Returns an unprocessed message to the *front* of this subscriber's
    /// local buffer, so it is the next one received (or, for a durable
    /// subscriber that disconnects, the first one re-retained).
    ///
    /// Intended for consumers that pulled a message but could not process
    /// it — e.g. a network forwarder whose connection died mid-delivery.
    pub fn return_message(&self, message: Arc<Message>) {
        self.pending.lock().push_front(message);
    }

    /// Number of messages currently buffered for this subscriber
    /// (including any retained backlog).
    pub fn queued(&self) -> usize {
        self.pending.lock().len() + self.receiver.len()
    }

    /// Drains all currently buffered messages.
    pub fn drain(&self) -> Vec<Arc<Message>> {
        let mut out: Vec<Arc<Message>> = self.pending.lock().drain(..).collect();
        while let Ok(m) = self.receiver.try_recv() {
            out.push(m);
        }
        out
    }
}

impl Drop for Subscriber {
    fn drop(&mut self) {
        // Mark inactive; the dispatcher prunes plain subscriptions lazily.
        self.active.store(false, Ordering::Relaxed);
        if let Some(durable) = &self.durable {
            // Disconnect: future matches are retained again. Unconsumed
            // backlog and queued-but-unreceived messages go back into the
            // retained buffer so that nothing is lost on reconnect.
            let mut connection = durable.connection.lock();
            *connection = None;
            let mut retained = durable.retained.lock();
            for m in self.pending.lock().drain(..) {
                retained.push_back(m);
            }
            while let Ok(m) = self.receiver.try_recv() {
                retained.push_back(m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Priority;

    fn broker() -> Broker {
        let b = Broker::start(BrokerConfig::default());
        b.create_topic("t").unwrap();
        b
    }

    #[test]
    fn unfiltered_subscriber_gets_all_messages() {
        let b = broker();
        let sub = b.subscribe("t", Filter::None).unwrap();
        let p = b.publisher("t").unwrap();
        for i in 0..10 {
            p.publish(Message::builder().property("i", i as i64).build()).unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..10 {
            got.push(sub.receive_timeout(Duration::from_secs(2)).expect("message"));
        }
        assert_eq!(got.len(), 10);
        // Per-publisher FIFO order is preserved.
        for (i, m) in got.iter().enumerate() {
            assert_eq!(m.property("i"), Some(&(i as i64).into()));
        }
        b.shutdown();
    }

    #[test]
    fn filters_route_messages() {
        let b = broker();
        let red = b.subscribe("t", Filter::selector("color = 'red'").unwrap()).unwrap();
        let blue = b.subscribe("t", Filter::selector("color = 'blue'").unwrap()).unwrap();
        let p = b.publisher("t").unwrap();
        p.publish(Message::builder().property("color", "red").build()).unwrap();
        p.publish(Message::builder().property("color", "blue").build()).unwrap();
        p.publish(Message::builder().property("color", "green").build()).unwrap();

        let r = red.receive_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(r.property("color"), Some(&"red".into()));
        let bl = blue.receive_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(bl.property("color"), Some(&"blue".into()));
        // The green message matched nobody.
        assert!(red.receive_timeout(Duration::from_millis(50)).is_none());
        assert!(blue.receive_timeout(Duration::from_millis(50)).is_none());
        b.shutdown();
    }

    #[test]
    fn replication_to_matching_subscribers() {
        let b = broker();
        let subs: Vec<_> = (0..5).map(|_| b.subscribe("t", Filter::None).unwrap()).collect();
        let p = b.publisher("t").unwrap();
        p.publish(Message::builder().build()).unwrap();
        for s in &subs {
            assert!(s.receive_timeout(Duration::from_secs(2)).is_some());
        }
        // Stats: 1 received, 5 dispatched → replication grade 5.
        let stats = b.stats();
        // Allow the dispatcher a moment to finish counting.
        for _ in 0..100 {
            if stats.dispatched() == 5 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(stats.received(), 1);
        assert_eq!(stats.dispatched(), 5);
        b.shutdown();
    }

    #[test]
    fn topics_isolate_messages() {
        let b = broker();
        b.create_topic("other").unwrap();
        let t_sub = b.subscribe("t", Filter::None).unwrap();
        let o_sub = b.subscribe("other", Filter::None).unwrap();
        let p = b.publisher("t").unwrap();
        p.publish(Message::builder().build()).unwrap();
        assert!(t_sub.receive_timeout(Duration::from_secs(2)).is_some());
        assert!(o_sub.receive_timeout(Duration::from_millis(50)).is_none());
        b.shutdown();
    }

    #[test]
    fn unknown_topic_errors() {
        let b = broker();
        assert!(matches!(b.publisher("nope"), Err(BrokerError::TopicNotFound { .. })));
        assert!(matches!(
            b.subscribe("nope", Filter::None),
            Err(BrokerError::TopicNotFound { .. })
        ));
        b.shutdown();
    }

    #[test]
    fn duplicate_and_invalid_topics_rejected() {
        let b = broker();
        assert!(matches!(b.create_topic("t"), Err(BrokerError::TopicExists { .. })));
        assert!(matches!(b.create_topic(""), Err(BrokerError::InvalidTopicName { .. })));
        b.shutdown();
    }

    #[test]
    fn dropping_subscriber_cancels_subscription() {
        let b = broker();
        let sub = b.subscribe("t", Filter::None).unwrap();
        assert_eq!(b.subscription_count("t"), 1);
        drop(sub);
        assert_eq!(b.subscription_count("t"), 0);
        // Publishing after the drop reaches nobody but still counts received.
        let p = b.publisher("t").unwrap();
        p.publish(Message::builder().build()).unwrap();
        let stats = b.stats();
        for _ in 0..100 {
            if stats.received() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(stats.dispatched(), 0);
        b.shutdown();
    }

    #[test]
    fn publish_after_shutdown_fails() {
        let b = broker();
        let p = b.publisher("t").unwrap();
        b.shutdown();
        assert_eq!(p.publish(Message::builder().build()), Err(BrokerError::Stopped));
    }

    #[test]
    fn subscriber_receives_error_after_shutdown() {
        let b = broker();
        let sub = b.subscribe("t", Filter::None).unwrap();
        let p = b.publisher("t").unwrap();
        p.publish(Message::builder().build()).unwrap();
        b.shutdown();
        // The queued message is still delivered, then the queue closes.
        assert!(sub.receive().is_ok());
        assert!(sub.receive().is_err());
    }

    #[test]
    fn drop_new_policy_drops_on_full_queue() {
        let b = Broker::start(
            BrokerConfig::default()
                .subscriber_queue_capacity(1)
                .overflow_policy(OverflowPolicy::DropNew),
        );
        b.create_topic("t").unwrap();
        let sub = b.subscribe("t", Filter::None).unwrap();
        let p = b.publisher("t").unwrap();
        for _ in 0..10 {
            p.publish(Message::builder().build()).unwrap();
        }
        let stats = b.stats();
        for _ in 0..200 {
            if stats.received() == 10 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(stats.received(), 10);
        assert!(stats.dropped() > 0, "expected drops on a capacity-1 queue");
        assert_eq!(stats.dispatched() + stats.dropped(), 10);
        drop(sub);
        b.shutdown();
    }

    #[test]
    fn try_publish_reports_full_queue() {
        // Tiny publish queue, no subscriber, dispatcher busy: fill it up.
        let b = Broker::start(
            BrokerConfig::default()
                .publish_queue_capacity(1)
                .cost_model(crate::cost::CostModel::new(0.05, 0.0, 0.0)),
        );
        b.create_topic("t").unwrap();
        let p = b.publisher("t").unwrap();
        // First publishes are absorbed; eventually the queue must report full
        // while the dispatcher spins 50 ms per message.
        let mut saw_full = false;
        for _ in 0..64 {
            if let Err(Some(_)) = p.try_publish(Message::builder().build()) {
                saw_full = true;
                break;
            }
        }
        assert!(saw_full, "expected Full from try_publish");
        b.shutdown();
    }

    #[test]
    fn correlation_id_filters_on_broker() {
        let b = broker();
        let sub = b.subscribe("t", Filter::correlation_id("[7;13]").unwrap()).unwrap();
        let p = b.publisher("t").unwrap();
        p.publish(Message::builder().correlation_id("#9").build()).unwrap();
        p.publish(Message::builder().correlation_id("#42").build()).unwrap();
        let got = sub.receive_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got.correlation_id(), Some("#9"));
        assert!(sub.receive_timeout(Duration::from_millis(50)).is_none());
        b.shutdown();
    }

    #[test]
    fn filter_evaluation_counts_are_per_subscription() {
        let b = broker();
        let _subs: Vec<_> = (0..3)
            .map(|i| b.subscribe("t", Filter::correlation_id(&format!("#{i}")).unwrap()).unwrap())
            .collect();
        let p = b.publisher("t").unwrap();
        p.publish(Message::builder().correlation_id("#0").build()).unwrap();
        let stats = b.stats();
        for _ in 0..100 {
            if stats.filter_evaluations() == 3 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        // All 3 filters evaluated (brute force), 1 matched.
        assert_eq!(stats.filter_evaluations(), 3);
        assert_eq!(stats.dispatched(), 1);
        b.shutdown();
    }

    #[test]
    fn multiple_publishers_fifo_per_publisher() {
        let b = broker();
        let sub = b.subscribe("t", Filter::None).unwrap();
        let p1 = b.publisher("t").unwrap();
        let p2 = p1.clone();
        let h1 = std::thread::spawn(move || {
            for i in 0..50i64 {
                p1.publish(Message::builder().property("src", 1i64).property("seq", i).build())
                    .unwrap();
            }
        });
        let h2 = std::thread::spawn(move || {
            for i in 0..50i64 {
                p2.publish(Message::builder().property("src", 2i64).property("seq", i).build())
                    .unwrap();
            }
        });
        h1.join().unwrap();
        h2.join().unwrap();
        let mut last = [-1i64; 3];
        for _ in 0..100 {
            let m = sub.receive_timeout(Duration::from_secs(2)).expect("message");
            let src = match m.property("src") {
                Some(rjms_selector::Value::Int(s)) => *s as usize,
                other => panic!("bad src {other:?}"),
            };
            let seq = match m.property("seq") {
                Some(rjms_selector::Value::Int(s)) => *s,
                other => panic!("bad seq {other:?}"),
            };
            assert!(seq > last[src], "per-publisher order violated");
            last[src] = seq;
        }
        b.shutdown();
    }

    #[test]
    fn priority_header_visible_to_selectors_end_to_end() {
        let b = broker();
        let sub = b.subscribe("t", Filter::selector("JMSPriority >= 7").unwrap()).unwrap();
        let p = b.publisher("t").unwrap();
        p.publish(Message::builder().priority(Priority::new(9)).build()).unwrap();
        p.publish(Message::builder().priority(Priority::new(1)).build()).unwrap();
        assert!(sub.receive_timeout(Duration::from_secs(2)).is_some());
        assert!(sub.receive_timeout(Duration::from_millis(50)).is_none());
        b.shutdown();
    }
}
