//! Per-subscription message filters.
//!
//! The paper distinguishes three message-selection mechanisms with different
//! costs: topics (coarse, free at dispatch time), correlation-ID filters
//! (cheap string/range matching), and application-property filters (full
//! selector evaluation). [`Filter`] is the per-subscription selection rule;
//! topic selection happens one level up, in the broker's topic registry.

use crate::message::Message;
use rjms_selector::corrid::{CorrelationFilter, ParseCorrelationFilterError};
use rjms_selector::typecheck::TypeReport;
use rjms_selector::{ParseError, Selector};
use std::fmt;

/// Error from [`Filter::selector_checked`].
#[derive(Debug, Clone, PartialEq)]
pub enum CheckedSelectorError {
    /// The selector is syntactically invalid.
    Parse(ParseError),
    /// The selector parses but the static analysis found problems that
    /// would make it silently never match.
    Type(Box<TypeReport>),
}

impl fmt::Display for CheckedSelectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse(e) => write!(f, "{e}"),
            Self::Type(report) => {
                write!(f, "selector rejected by type analysis:")?;
                for issue in &report.issues {
                    write!(f, " {issue};")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CheckedSelectorError {}

/// A subscription's message filter.
///
/// # Examples
///
/// ```
/// use rjms_broker::filter::Filter;
/// use rjms_broker::message::Message;
///
/// let f = Filter::correlation_id("[7;13]").unwrap();
/// let hit = Message::builder().correlation_id("#9").build();
/// let miss = Message::builder().correlation_id("#42").build();
/// assert!(f.matches(&hit));
/// assert!(!f.matches(&miss));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Filter {
    /// No filter: every message in the topic is forwarded.
    #[default]
    None,
    /// Correlation-ID filter (exact, range `[lo;hi]`, prefix, or any).
    CorrelationId(CorrelationFilter),
    /// Application-property filter: a full JMS message selector.
    Selector(Selector),
}

impl Filter {
    /// Builds a correlation-ID filter from its pattern syntax.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed range patterns (see
    /// [`CorrelationFilter`]).
    pub fn correlation_id(pattern: &str) -> Result<Self, ParseCorrelationFilterError> {
        Ok(Filter::CorrelationId(pattern.parse()?))
    }

    /// Builds an application-property filter from selector syntax.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] for invalid selectors — JMS requires the
    /// provider to reject them when the subscription is created.
    pub fn selector(selector: &str) -> Result<Self, ParseError> {
        Ok(Filter::Selector(Selector::parse(selector)?))
    }

    /// Like [`Filter::selector`], but additionally runs the static type
    /// analysis and rejects selectors that can never match any message
    /// (contradictory property types, constant falsehood, wrong-typed
    /// literals) — the silent footguns of three-valued logic.
    ///
    /// # Errors
    ///
    /// Returns [`CheckedSelectorError::Parse`] for syntax errors and
    /// [`CheckedSelectorError::Type`] with the full [`TypeReport`] when the
    /// analysis finds issues.
    pub fn selector_checked(selector: &str) -> Result<Self, CheckedSelectorError> {
        let parsed = Selector::parse(selector).map_err(CheckedSelectorError::Parse)?;
        let report = rjms_selector::typecheck::analyze(parsed.expr());
        if !report.is_clean() {
            return Err(CheckedSelectorError::Type(Box::new(report)));
        }
        Ok(Filter::Selector(parsed))
    }

    /// Whether the filter forwards the given message.
    pub fn matches(&self, message: &Message) -> bool {
        match self {
            Filter::None => true,
            Filter::CorrelationId(f) => f.matches_opt(message.correlation_id()),
            Filter::Selector(s) => s.matches(message),
        }
    }

    /// The filter-type label used in reports (mirrors the paper's
    /// terminology).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Filter::None => "none",
            Filter::CorrelationId(_) => "correlation-id",
            Filter::Selector(_) => "application-property",
        }
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Filter::None => f.write_str("<none>"),
            Filter::CorrelationId(c) => write!(f, "corr-id:{c}"),
            Filter::Selector(s) => write!(f, "selector:{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_matches_everything() {
        let m = Message::builder().build();
        assert!(Filter::None.matches(&m));
    }

    #[test]
    fn correlation_filter_requires_id() {
        let f = Filter::correlation_id("#0").unwrap();
        assert!(f.matches(&Message::builder().correlation_id("#0").build()));
        assert!(!f.matches(&Message::builder().correlation_id("#1").build()));
        // No correlation id on the message → no match.
        assert!(!f.matches(&Message::builder().build()));
    }

    #[test]
    fn selector_filter_on_properties() {
        let f = Filter::selector("color = 'red' AND weight > 2").unwrap();
        let hit = Message::builder().property("color", "red").property("weight", 3i64).build();
        let miss = Message::builder().property("color", "red").build();
        assert!(f.matches(&hit));
        assert!(!f.matches(&miss));
    }

    #[test]
    fn invalid_selector_rejected_at_creation() {
        assert!(Filter::selector("((broken").is_err());
        assert!(Filter::correlation_id("[9;1]").is_err());
    }

    #[test]
    fn checked_selector_rejects_type_conflicts() {
        assert!(Filter::selector_checked("price < 50").is_ok());
        let err = Filter::selector_checked("x > 5 AND x LIKE 'a%'").unwrap_err();
        assert!(matches!(err, CheckedSelectorError::Type(_)));
        assert!(err.to_string().contains("never match"));
        let err = Filter::selector_checked("((broken").unwrap_err();
        assert!(matches!(err, CheckedSelectorError::Parse(_)));
    }

    #[test]
    fn display_labels() {
        assert_eq!(Filter::None.to_string(), "<none>");
        assert_eq!(Filter::None.kind_name(), "none");
        assert_eq!(Filter::correlation_id("[1;2]").unwrap().kind_name(), "correlation-id");
        assert_eq!(Filter::selector("a = 1").unwrap().kind_name(), "application-property");
    }
}
