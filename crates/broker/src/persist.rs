//! Journal record encoding for broker persistence.
//!
//! Every state change the broker must survive is one [`JournalRecord`],
//! serialized into a journal frame payload with a compact little-endian,
//! length-prefixed binary format. The journal layer adds checksums and
//! torn-tail recovery; this module only defines what is stored.
//!
//! Filters are persisted by their textual form ([`Filter::correlation_id`]
//! pattern syntax / selector source) and re-parsed on recovery, so the
//! journal format is decoupled from the selector AST.

use crate::filter::Filter;
use crate::message::{Message, Priority};
use rjms_selector::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// One durable broker state change.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A topic was created.
    TopicCreated {
        /// Topic name.
        topic: String,
    },
    /// A message was accepted from a publisher on `topic`.
    Publish {
        /// Topic name.
        topic: String,
        /// The full message.
        message: Message,
    },
    /// A durable subscription was created, or its filter replaced.
    DurableRegistered {
        /// Topic name.
        topic: String,
        /// Durable subscription name.
        name: String,
        /// The subscription filter at registration time.
        filter: Filter,
    },
    /// All publishes on `topic` up to and including `offset` have been
    /// delivered to the named durable subscription's consumer.
    DurableCheckpoint {
        /// Topic name.
        topic: String,
        /// Durable subscription name.
        name: String,
        /// Journal offset of the last delivered publish.
        offset: u64,
    },
    /// A durable subscription was permanently removed.
    DurableUnsubscribed {
        /// Topic name.
        topic: String,
        /// Durable subscription name.
        name: String,
    },
}

/// A record that could not be decoded (format violation, not I/O).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What was malformed.
    pub message: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed journal record: {}", self.message)
    }
}

impl std::error::Error for DecodeError {}

fn err<T>(message: impl Into<String>) -> Result<T, DecodeError> {
    Err(DecodeError { message: message.into() })
}

const TAG_TOPIC_CREATED: u8 = 1;
const TAG_PUBLISH: u8 = 2;
const TAG_DURABLE_REGISTERED: u8 = 3;
const TAG_DURABLE_CHECKPOINT: u8 = 4;
const TAG_DURABLE_UNSUBSCRIBED: u8 = 5;

const FILTER_NONE: u8 = 0;
const FILTER_CORRELATION: u8 = 1;
const FILTER_SELECTOR: u8 = 2;

const VALUE_BOOL: u8 = 0;
const VALUE_INT: u8 = 1;
const VALUE_FLOAT: u8 = 2;
const VALUE_STR: u8 = 3;

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

fn put_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Bool(b) => {
            out.push(VALUE_BOOL);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(VALUE_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(VALUE_FLOAT);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(VALUE_STR);
            put_str(out, s);
        }
    }
}

fn put_filter(out: &mut Vec<u8>, filter: &Filter) {
    match filter {
        Filter::None => out.push(FILTER_NONE),
        Filter::CorrelationId(c) => {
            out.push(FILTER_CORRELATION);
            put_str(out, &c.to_string());
        }
        Filter::Selector(s) => {
            out.push(FILTER_SELECTOR);
            put_str(out, s.source());
        }
    }
}

/// Byte-slice reader with bounds-checked accessors.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.at < n {
            return err(format!(
                "need {n} bytes at position {}, have {}",
                self.at,
                self.buf.len() - self.at
            ));
        }
        let slice = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let raw = self.bytes()?;
        match std::str::from_utf8(raw) {
            Ok(s) => Ok(s.to_owned()),
            Err(_) => err("string field is not UTF-8"),
        }
    }

    fn opt_string(&mut self) -> Result<Option<String>, DecodeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.string()?)),
            flag => err(format!("bad option flag {flag}")),
        }
    }

    fn value(&mut self) -> Result<Value, DecodeError> {
        match self.u8()? {
            VALUE_BOOL => Ok(Value::Bool(self.u8()? != 0)),
            VALUE_INT => Ok(Value::Int(self.i64()?)),
            VALUE_FLOAT => Ok(Value::Float(f64::from_bits(self.u64()?))),
            VALUE_STR => Ok(Value::Str(self.string()?)),
            tag => err(format!("bad value tag {tag}")),
        }
    }

    fn filter(&mut self) -> Result<Filter, DecodeError> {
        match self.u8()? {
            FILTER_NONE => Ok(Filter::None),
            FILTER_CORRELATION => {
                let pattern = self.string()?;
                Filter::correlation_id(&pattern)
                    .map_err(|e| DecodeError { message: format!("stored correlation filter: {e}") })
            }
            FILTER_SELECTOR => {
                let source = self.string()?;
                Filter::selector(&source)
                    .map_err(|e| DecodeError { message: format!("stored selector: {e}") })
            }
            tag => err(format!("bad filter tag {tag}")),
        }
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            err(format!("{} trailing bytes", self.buf.len() - self.at))
        }
    }
}

fn put_message(out: &mut Vec<u8>, message: &Message) {
    out.extend_from_slice(&message.id().as_u64().to_le_bytes());
    out.extend_from_slice(&message.timestamp_millis().to_le_bytes());
    put_opt_str(out, message.correlation_id());
    put_opt_str(out, message.message_type());
    out.push(message.priority().level());
    put_opt_str(out, message.reply_to());
    match message.expiration_millis() {
        None => out.push(0),
        Some(e) => {
            out.push(1);
            out.extend_from_slice(&e.to_le_bytes());
        }
    }
    out.extend_from_slice(&(message.properties().len() as u32).to_le_bytes());
    for (key, value) in message.properties() {
        put_str(out, key);
        put_value(out, value);
    }
    put_bytes(out, message.body());
    out.extend_from_slice(&message.trace_id().to_le_bytes());
    out.extend_from_slice(&message.trace_origin_ns().to_le_bytes());
}

fn read_message(cursor: &mut Cursor<'_>) -> Result<Message, DecodeError> {
    let id_raw = cursor.u64()?;
    let timestamp_millis = cursor.u64()?;
    let correlation_id = cursor.opt_string()?;
    let message_type = cursor.opt_string()?;
    let priority_level = cursor.u8()?;
    if priority_level > 9 {
        return err(format!("priority {priority_level} out of the JMS 0-9 range"));
    }
    let reply_to = cursor.opt_string()?;
    let expiration_millis = match cursor.u8()? {
        0 => None,
        1 => Some(cursor.u64()?),
        flag => return err(format!("bad expiration flag {flag}")),
    };
    let property_count = cursor.u32()?;
    let mut properties = BTreeMap::new();
    for _ in 0..property_count {
        let key = cursor.string()?;
        let value = cursor.value()?;
        properties.insert(key, value);
    }
    let body = cursor.bytes()?.to_vec();
    let trace_id = cursor.u64()?;
    let trace_origin_ns = cursor.u64()?;
    Ok(Message::from_stored_parts(
        id_raw,
        timestamp_millis,
        correlation_id,
        message_type,
        Priority::new(priority_level),
        reply_to,
        expiration_millis,
        properties,
        body.into(),
        trace_id,
        trace_origin_ns,
    ))
}

/// Encodes a [`JournalRecord::Publish`] without cloning the message — the
/// dispatcher's per-message hot path.
pub fn encode_publish(topic: &str, message: &Message) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + message.approximate_size());
    out.push(TAG_PUBLISH);
    put_str(&mut out, topic);
    put_message(&mut out, message);
    out
}

impl JournalRecord {
    /// Serializes the record into a journal frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            JournalRecord::TopicCreated { topic } => {
                out.push(TAG_TOPIC_CREATED);
                put_str(&mut out, topic);
            }
            JournalRecord::Publish { topic, message } => {
                out.push(TAG_PUBLISH);
                put_str(&mut out, topic);
                put_message(&mut out, message);
            }
            JournalRecord::DurableRegistered { topic, name, filter } => {
                out.push(TAG_DURABLE_REGISTERED);
                put_str(&mut out, topic);
                put_str(&mut out, name);
                put_filter(&mut out, filter);
            }
            JournalRecord::DurableCheckpoint { topic, name, offset } => {
                out.push(TAG_DURABLE_CHECKPOINT);
                put_str(&mut out, topic);
                put_str(&mut out, name);
                out.extend_from_slice(&offset.to_le_bytes());
            }
            JournalRecord::DurableUnsubscribed { topic, name } => {
                out.push(TAG_DURABLE_UNSUBSCRIBED);
                put_str(&mut out, topic);
                put_str(&mut out, name);
            }
        }
        out
    }

    /// Deserializes a record from a journal frame payload.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for malformed payloads (a frame that passed
    /// its checksum but does not parse — a version skew or a bug, never a
    /// torn write).
    pub fn decode(payload: &[u8]) -> Result<JournalRecord, DecodeError> {
        let mut cursor = Cursor { buf: payload, at: 0 };
        let record = match cursor.u8()? {
            TAG_TOPIC_CREATED => JournalRecord::TopicCreated { topic: cursor.string()? },
            TAG_PUBLISH => {
                let topic = cursor.string()?;
                let message = read_message(&mut cursor)?;
                JournalRecord::Publish { topic, message }
            }
            TAG_DURABLE_REGISTERED => JournalRecord::DurableRegistered {
                topic: cursor.string()?,
                name: cursor.string()?,
                filter: cursor.filter()?,
            },
            TAG_DURABLE_CHECKPOINT => JournalRecord::DurableCheckpoint {
                topic: cursor.string()?,
                name: cursor.string()?,
                offset: cursor.u64()?,
            },
            TAG_DURABLE_UNSUBSCRIBED => JournalRecord::DurableUnsubscribed {
                topic: cursor.string()?,
                name: cursor.string()?,
            },
            tag => return err(format!("unknown record tag {tag}")),
        };
        cursor.finish()?;
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(record: JournalRecord) {
        let encoded = record.encode();
        let decoded = JournalRecord::decode(&encoded).unwrap();
        assert_eq!(decoded, record);
    }

    #[test]
    fn topic_and_durable_records_roundtrip() {
        roundtrip(JournalRecord::TopicCreated { topic: "stocks".into() });
        roundtrip(JournalRecord::DurableCheckpoint {
            topic: "stocks".into(),
            name: "auditor".into(),
            offset: u64::MAX,
        });
        roundtrip(JournalRecord::DurableUnsubscribed {
            topic: "stocks".into(),
            name: "auditor".into(),
        });
    }

    #[test]
    fn durable_registration_roundtrips_every_filter_kind() {
        for filter in [
            Filter::None,
            Filter::correlation_id("[7;13]").unwrap(),
            Filter::correlation_id("order-*").unwrap(),
            Filter::selector("price < 50.0 AND symbol = 'ACME'").unwrap(),
        ] {
            roundtrip(JournalRecord::DurableRegistered {
                topic: "stocks".into(),
                name: "auditor".into(),
                filter,
            });
        }
    }

    #[test]
    fn publish_roundtrips_full_message() {
        let message = Message::builder()
            .correlation_id("#42")
            .message_type("quote")
            .priority(Priority::new(7))
            .reply_to("replies")
            .property("symbol", "ACME")
            .property("price", 49.5)
            .property("urgent", true)
            .property("volume", 1_000_000i64)
            .body(&b"opaque payload"[..])
            .build();
        let record = JournalRecord::Publish { topic: "stocks".into(), message: message.clone() };
        let decoded = JournalRecord::decode(&record.encode()).unwrap();
        match decoded {
            JournalRecord::Publish { topic, message: recovered } => {
                assert_eq!(topic, "stocks");
                assert_eq!(recovered.id(), message.id());
                assert_eq!(recovered.timestamp_millis(), message.timestamp_millis());
                assert_eq!(recovered.trace_id(), message.trace_id());
                assert_eq!(recovered.trace_origin_ns(), message.trace_origin_ns());
                assert_eq!(recovered, message);
            }
            other => panic!("decoded as {other:?}"),
        }
    }

    #[test]
    fn encode_publish_matches_record_encoding() {
        let message = Message::builder().property("k", 1i64).body(&b"x"[..]).build();
        let via_record =
            JournalRecord::Publish { topic: "t".into(), message: message.clone() }.encode();
        assert_eq!(encode_publish("t", &message), via_record);
    }

    #[test]
    fn truncated_and_garbage_payloads_are_rejected() {
        let encoded = JournalRecord::TopicCreated { topic: "stocks".into() }.encode();
        for cut in 0..encoded.len() {
            assert!(JournalRecord::decode(&encoded[..cut]).is_err(), "cut at {cut}");
        }
        assert!(JournalRecord::decode(&[99, 0, 0]).is_err());
        let mut trailing = encoded.clone();
        trailing.push(0);
        assert!(JournalRecord::decode(&trailing).is_err());
    }
}
