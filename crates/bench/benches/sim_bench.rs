//! Criterion benches for the simulators: Lindley-recursion and
//! event-driven M/G/1 sample rates, and the saturated-testbed message rate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rjms_desim::mg1sim::{simulate_event_driven, simulate_lindley, Mg1SimConfig};
use rjms_desim::random::ExponentialService;
use rjms_desim::testbed::{run_measurement, TestbedConfig};
use rjms_queueing::replication::ReplicationModel;
use std::time::Duration;

fn bench_mg1(c: &mut Criterion) {
    let mut g = c.benchmark_group("mg1_simulator");
    g.measurement_time(Duration::from_secs(5));
    let samples = 50_000usize;
    g.throughput(Throughput::Elements(samples as u64));
    let cfg = Mg1SimConfig { arrival_rate: 0.9, samples, warmup: 1_000, seed: 1 };
    g.bench_function("lindley", |b| {
        b.iter(|| simulate_lindley(&cfg, &ExponentialService { mean: 1.0 }))
    });
    g.bench_function("event_driven", |b| {
        b.iter(|| simulate_event_driven(&cfg, ExponentialService { mean: 1.0 }))
    });
    g.finish();
}

fn bench_testbed(c: &mut Criterion) {
    let mut g = c.benchmark_group("testbed_simulator");
    g.measurement_time(Duration::from_secs(5));
    let mut cfg = TestbedConfig::quick(8.52e-7, 7.02e-6, 1.70e-5);
    cfg.window_secs = 1.0;
    cfg.warmup_secs = 0.1;
    g.bench_function("deterministic_R5_n50", |b| {
        b.iter(|| run_measurement(&cfg, 50, &ReplicationModel::deterministic(5.0)))
    });
    g.bench_function("binomial_R_n50", |b| {
        b.iter(|| run_measurement(&cfg, 50, &ReplicationModel::binomial(50.0, 0.1)))
    });
    g.finish();
}

criterion_group!(benches, bench_mg1, bench_testbed);
criterion_main!(benches);
