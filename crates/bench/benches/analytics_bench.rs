//! Criterion benches for the analytic pipeline: special functions, the full
//! waiting-time report (including two quantile solves), and the calibration
//! fit — the operations a capacity-planning service would run per request.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rjms_core::calibrate::{fit_cost_params, Observation};
use rjms_core::model::ServerModel;
use rjms_core::params::CostParams;
use rjms_core::waiting::WaitingTimeAnalysis;
use rjms_queueing::replication::ReplicationModel;
use rjms_queueing::special::{gamma_p, ln_gamma};

fn bench_special(c: &mut Criterion) {
    let mut g = c.benchmark_group("special_functions");
    g.bench_function("ln_gamma", |b| b.iter(|| ln_gamma(black_box(42.5))));
    g.bench_function("gamma_p_series", |b| b.iter(|| gamma_p(black_box(10.0), black_box(5.0))));
    g.bench_function("gamma_p_contfrac", |b| b.iter(|| gamma_p(black_box(10.0), black_box(50.0))));
    g.finish();
}

fn bench_waiting_report(c: &mut Criterion) {
    let model = ServerModel::new(CostParams::CORRELATION_ID, 100);
    let replication = ReplicationModel::binomial(100.0, 0.1);
    c.bench_function("waiting_time_report", |b| {
        b.iter(|| {
            WaitingTimeAnalysis::for_model(black_box(&model), replication, 0.9).unwrap().report()
        })
    });
}

fn bench_calibration(c: &mut Criterion) {
    let truth = CostParams::CORRELATION_ID;
    let mut obs = Vec::new();
    for n in [5u32, 10, 20, 40, 80, 160] {
        for r in [1.0f64, 2.0, 5.0, 10.0, 20.0, 40.0] {
            obs.push(Observation {
                n_fltr: n + r as u32,
                mean_replication: r,
                received_per_sec: 1.0 / truth.mean_service_time(n + r as u32, r),
            });
        }
    }
    c.bench_function("calibration_fit_36_points", |b| {
        b.iter(|| fit_cost_params(black_box(&obs)).unwrap())
    });
}

criterion_group!(benches, bench_special, bench_waiting_report, bench_calibration);
criterion_main!(benches);
