//! Criterion benches for the broker: end-to-end dispatch throughput as a
//! function of the number of installed filters and the replication grade —
//! the in-vivo analogue of the paper's Fig. 4 on our own substrate (native
//! speed, no synthetic cost model).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rjms_broker::{Broker, BrokerConfig, Filter, Message};
use std::time::Duration;

/// Publishes `count` messages matching exactly `r` of `n_fltr` correlation
/// filters and waits until all copies are consumed.
fn run_batch(broker: &Broker, subs: &[rjms_broker::Subscriber], r: usize, count: usize) {
    let publisher = broker.publisher("bench").unwrap();
    for _ in 0..count {
        publisher.publish(Message::builder().correlation_id("#0").build()).unwrap();
    }
    // The first `r` subscribers match; drain them.
    for sub in subs.iter().take(r) {
        for _ in 0..count {
            sub.receive_timeout(Duration::from_secs(10)).expect("delivery");
        }
    }
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("broker_dispatch");
    g.measurement_time(Duration::from_secs(5));
    for &(n_fltr, r) in &[(1usize, 1usize), (16, 1), (128, 1), (16, 16), (128, 16)] {
        let broker =
            Broker::start(BrokerConfig::builder().subscriber_queue_capacity(65_536).build());
        broker.create_topic("bench").unwrap();
        // r matching subscribers (filter #0) + (n_fltr - r) non-matching.
        let mut subs = Vec::new();
        for _ in 0..r {
            subs.push(
                broker
                    .subscription("bench")
                    .filter(Filter::correlation_id("#0").unwrap())
                    .open()
                    .unwrap(),
            );
        }
        for i in r..n_fltr {
            subs.push(
                broker
                    .subscription("bench")
                    .filter(Filter::correlation_id(&format!("#{i}")).unwrap())
                    .open()
                    .unwrap(),
            );
        }
        let batch = 256usize;
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_with_input(BenchmarkId::new("n_fltr_r", format!("{n_fltr}x{r}")), &(), |b, ()| {
            b.iter(|| run_batch(&broker, &subs, r, batch))
        });
        drop(subs);
        broker.shutdown();
    }
    g.finish();
}

fn bench_selector_dispatch(c: &mut Criterion) {
    // Application-property filtering path (full selector evaluation).
    let mut g = c.benchmark_group("broker_dispatch_selector");
    g.measurement_time(Duration::from_secs(5));
    for &n_fltr in &[16usize, 128] {
        let broker =
            Broker::start(BrokerConfig::builder().subscriber_queue_capacity(65_536).build());
        broker.create_topic("bench").unwrap();
        let mut subs = Vec::new();
        subs.push(
            broker
                .subscription("bench")
                .filter(Filter::selector("key = 0").unwrap())
                .open()
                .unwrap(),
        );
        for i in 1..n_fltr {
            subs.push(
                broker
                    .subscription("bench")
                    .filter(Filter::selector(&format!("key = {i}")).unwrap())
                    .open()
                    .unwrap(),
            );
        }
        let batch = 256usize;
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n_fltr), &(), |b, ()| {
            b.iter(|| {
                let publisher = broker.publisher("bench").unwrap();
                for _ in 0..batch {
                    publisher.publish(Message::builder().property("key", 0i64).build()).unwrap();
                }
                for _ in 0..batch {
                    subs[0].receive_timeout(Duration::from_secs(10)).expect("delivery");
                }
            })
        });
        drop(subs);
        broker.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench_dispatch, bench_selector_dispatch);
criterion_main!(benches);
