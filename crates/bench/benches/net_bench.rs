//! Criterion benches for the wire codec and the TCP path.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rjms_broker::{BrokerConfig, Message};
use rjms_net::client::RemoteBroker;
use rjms_net::server::BrokerServer;
use rjms_net::wire::{decode_request, encode_request, Request, WireFilter, WireMessage};
use std::time::Duration;

fn sample_message() -> WireMessage {
    WireMessage::from_message(
        &Message::builder()
            .correlation_id("#7")
            .property("symbol", "ACME")
            .property("price", 42.5)
            .property("urgent", true)
            .body(vec![0u8; 128])
            .build(),
    )
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_codec");
    let req = Request::Publish { request_id: 1, topic: "stocks".into(), message: sample_message() };
    g.bench_function("encode_publish", |b| b.iter(|| encode_request(black_box(&req))));
    let frame = encode_request(&req);
    g.bench_function("decode_publish", |b| {
        b.iter(|| decode_request(black_box(frame.slice(4..))).unwrap())
    });
    g.finish();
}

fn bench_tcp_roundtrip(c: &mut Criterion) {
    let server = BrokerServer::start(BrokerConfig::default(), "127.0.0.1:0").unwrap();
    let client = RemoteBroker::connect(server.local_addr()).unwrap();
    client.create_topic("bench").unwrap();
    let sub = client.subscribe("bench", WireFilter::None).unwrap();
    let msg = Message::builder().property("k", 1i64).body(vec![0u8; 128]).build();

    let mut g = c.benchmark_group("tcp_path");
    g.measurement_time(Duration::from_secs(5));
    g.throughput(Throughput::Elements(1));
    g.bench_function("publish_receive_roundtrip", |b| {
        b.iter(|| {
            client.publish("bench", &msg).unwrap();
            sub.receive_timeout(Duration::from_secs(5)).expect("delivery")
        })
    });
    g.bench_function("ping", |b| b.iter(|| client.ping().unwrap()));
    g.finish();
    drop(sub);
    drop(client);
    server.shutdown();
}

criterion_group!(benches, bench_codec, bench_tcp_roundtrip);
criterion_main!(benches);
