//! Criterion benches for the selector language: parse cost and per-message
//! evaluation cost — the in-vivo `t_fltr` of our broker substrate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rjms_selector::value::Value;
use rjms_selector::Selector;
use std::collections::HashMap;

const SIMPLE: &str = "color = 'red'";
const MEDIUM: &str = "color = 'red' AND weight BETWEEN 2 AND 5";
const COMPLEX: &str = "msgType = 'presence' AND (userId IN ('alice', 'bob', 'carol') OR \
                       broadcast = TRUE) AND priority BETWEEN 3 AND 9 AND device NOT LIKE 'test%'";

fn props() -> HashMap<String, Value> {
    let mut p = HashMap::new();
    p.insert("color".to_owned(), Value::from("red"));
    p.insert("weight".to_owned(), Value::from(3i64));
    p.insert("msgType".to_owned(), Value::from("presence"));
    p.insert("userId".to_owned(), Value::from("alice"));
    p.insert("priority".to_owned(), Value::from(5i64));
    p.insert("device".to_owned(), Value::from("phone-17"));
    p
}

fn bench_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("selector_parse");
    for (name, src) in [("simple", SIMPLE), ("medium", MEDIUM), ("complex", COMPLEX)] {
        g.bench_function(name, |b| b.iter(|| Selector::parse(black_box(src)).unwrap()));
    }
    g.finish();
}

fn bench_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("selector_eval");
    let p = props();
    for (name, src) in [("simple", SIMPLE), ("medium", MEDIUM), ("complex", COMPLEX)] {
        let sel = Selector::parse(src).unwrap();
        g.bench_function(name, |b| b.iter(|| sel.matches(black_box(&p))));
    }
    // Correlation-ID filters are the cheap path.
    let corr: rjms_selector::CorrelationFilter = "[7;13]".parse().unwrap();
    g.bench_function("correlation_range", |b| b.iter(|| corr.matches(black_box("#9"))));
    g.finish();
}

criterion_group!(benches, bench_parse, bench_eval);
criterion_main!(benches);
