//! Machine-readable experiment artifacts.
//!
//! Each `ext_*` experiment writes a flat `BENCH_<name>.json` at the
//! repository root next to its text tables, so CI can upload the headline
//! numbers as artifacts and runs can be diffed without scraping stdout.
//! The shape is deliberately trivial — one object, scalar values only:
//!
//! ```json
//! {"bench":"ext_observer_overhead","smoke":true,
//!  "calibrated_overhead":0.013,"budget":0.05,"pass":true}
//! ```

use rjms_metrics::json::JsonWriter;
use std::path::{Path, PathBuf};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

#[derive(Debug)]
enum Field {
    Num(f64),
    Uint(u64),
    Text(String),
    Flag(bool),
}

/// Accumulates the headline numbers of one experiment run, then writes
/// them as `BENCH_<name>.json` at the repository root.
#[derive(Debug)]
pub struct BenchReport {
    name: String,
    fields: Vec<(String, Field)>,
    started: Instant,
}

impl BenchReport {
    /// A new report for the experiment binary `name`. The construction
    /// time anchors the `wall_clock_s` provenance field, so create the
    /// report before the measured work starts.
    pub fn new(name: &str) -> Self {
        Self { name: name.to_owned(), fields: Vec::new(), started: Instant::now() }
    }

    /// Adds a float field.
    pub fn num(&mut self, key: &str, value: f64) -> &mut Self {
        self.fields.push((key.to_owned(), Field::Num(value)));
        self
    }

    /// Adds an unsigned integer field.
    pub fn uint(&mut self, key: &str, value: u64) -> &mut Self {
        self.fields.push((key.to_owned(), Field::Uint(value)));
        self
    }

    /// Adds a string field.
    pub fn text(&mut self, key: &str, value: &str) -> &mut Self {
        self.fields.push((key.to_owned(), Field::Text(value.to_owned())));
        self
    }

    /// Adds a boolean field.
    pub fn flag(&mut self, key: &str, value: bool) -> &mut Self {
        self.fields.push((key.to_owned(), Field::Flag(value)));
        self
    }

    /// The JSON text: `{"bench": <name>, <fields in insertion order>,
    /// <provenance fields>}`.
    ///
    /// Every artifact closes with three provenance fields so the perf
    /// trajectory stays attributable across PRs: `git_sha` (HEAD at run
    /// time, or `GITHUB_SHA`, or `"unknown"`), `unix_time` (seconds since
    /// the epoch) and `wall_clock_s` (elapsed since [`BenchReport::new`]).
    pub fn render(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("bench");
        w.string(&self.name);
        for (key, field) in &self.fields {
            w.key(key);
            match field {
                Field::Num(v) => w.float(*v),
                Field::Uint(v) => w.uint(*v),
                Field::Text(v) => w.string(v),
                Field::Flag(v) => w.bool(*v),
            }
        }
        w.key("git_sha");
        w.string(&git_sha());
        w.key("unix_time");
        w.uint(SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_secs()));
        w.key("wall_clock_s");
        w.float(self.started.elapsed().as_secs_f64());
        w.end_object();
        w.finish()
    }

    /// Writes `BENCH_<name>.json` at the repository root and returns its
    /// path. Call this *before* any failure `exit(1)` so the artifact
    /// survives a gate trip.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        // crates/bench -> repository root.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
        let root = root.canonicalize().unwrap_or(root);
        let path = root.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.render() + "\n")?;
        Ok(path)
    }

    /// Writes the artifact and prints where it went; errors are reported
    /// to stderr and swallowed (an unwritable artifact must not fail the
    /// experiment itself).
    pub fn emit(&self) {
        match self.write() {
            Ok(path) => println!("bench artifact: {}", path.display()),
            Err(e) => eprintln!("warning: cannot write BENCH_{}.json: {e}", self.name),
        }
    }
}

/// The commit the artifact was produced from: `git rev-parse HEAD`, then
/// the `GITHUB_SHA` CI variable, then `"unknown"` — never an error, a
/// missing sha must not fail an experiment.
fn git_sha() -> String {
    let from_git = std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .current_dir(Path::new(env!("CARGO_MANIFEST_DIR")))
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|sha| sha.trim().to_owned())
        .filter(|sha| !sha.is_empty());
    from_git
        .or_else(|| std::env::var("GITHUB_SHA").ok().filter(|sha| !sha.is_empty()))
        .unwrap_or_else(|| "unknown".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_object_in_insertion_order() {
        let mut r = BenchReport::new("ext_example");
        r.flag("smoke", true).num("overhead", 0.0125).uint("reps", 7).text("mode", "paired");
        let json = r.render();
        assert!(
            json.starts_with(
                "{\"bench\":\"ext_example\",\"smoke\":true,\"overhead\":0.0125,\
                 \"reps\":7,\"mode\":\"paired\","
            ),
            "user fields must lead in insertion order: {json}"
        );
    }

    #[test]
    fn every_artifact_carries_provenance() {
        let r = BenchReport::new("ext_example");
        let json = r.render();
        assert!(json.contains("\"git_sha\":\""), "missing git_sha: {json}");
        assert!(!json.contains("\"git_sha\":\"\""), "empty git_sha: {json}");
        assert!(json.contains("\"unix_time\":"), "missing unix_time: {json}");
        assert!(json.contains("\"wall_clock_s\":"), "missing wall_clock_s: {json}");
        // In a git checkout the sha must be the real HEAD, 40 hex chars.
        let sha = json.split("\"git_sha\":\"").nth(1).unwrap().split('"').next().unwrap();
        assert!(
            sha == "unknown" || (sha.len() == 40 && sha.chars().all(|c| c.is_ascii_hexdigit())),
            "implausible sha {sha:?}"
        );
    }

    #[test]
    fn write_lands_at_repo_root_and_round_trips() {
        let mut r = BenchReport::new("test_artifact_tmp");
        r.num("v", 1.5);
        let path = r.write().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"bench\":\"test_artifact_tmp\""));
        assert!(path.parent().unwrap().join("Cargo.toml").exists(), "not at repo root: {path:?}");
        std::fs::remove_file(path).unwrap();
    }
}
