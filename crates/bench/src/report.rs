//! Machine-readable experiment artifacts.
//!
//! Each `ext_*` experiment writes a flat `BENCH_<name>.json` at the
//! repository root next to its text tables, so CI can upload the headline
//! numbers as artifacts and runs can be diffed without scraping stdout.
//! The shape is deliberately trivial — one object, scalar values only:
//!
//! ```json
//! {"bench":"ext_observer_overhead","smoke":true,
//!  "calibrated_overhead":0.013,"budget":0.05,"pass":true}
//! ```

use rjms_metrics::json::JsonWriter;
use std::path::{Path, PathBuf};

#[derive(Debug)]
enum Field {
    Num(f64),
    Uint(u64),
    Text(String),
    Flag(bool),
}

/// Accumulates the headline numbers of one experiment run, then writes
/// them as `BENCH_<name>.json` at the repository root.
#[derive(Debug)]
pub struct BenchReport {
    name: String,
    fields: Vec<(String, Field)>,
}

impl BenchReport {
    /// A new report for the experiment binary `name`.
    pub fn new(name: &str) -> Self {
        Self { name: name.to_owned(), fields: Vec::new() }
    }

    /// Adds a float field.
    pub fn num(&mut self, key: &str, value: f64) -> &mut Self {
        self.fields.push((key.to_owned(), Field::Num(value)));
        self
    }

    /// Adds an unsigned integer field.
    pub fn uint(&mut self, key: &str, value: u64) -> &mut Self {
        self.fields.push((key.to_owned(), Field::Uint(value)));
        self
    }

    /// Adds a string field.
    pub fn text(&mut self, key: &str, value: &str) -> &mut Self {
        self.fields.push((key.to_owned(), Field::Text(value.to_owned())));
        self
    }

    /// Adds a boolean field.
    pub fn flag(&mut self, key: &str, value: bool) -> &mut Self {
        self.fields.push((key.to_owned(), Field::Flag(value)));
        self
    }

    /// The JSON text: `{"bench": <name>, <fields in insertion order>}`.
    pub fn render(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("bench");
        w.string(&self.name);
        for (key, field) in &self.fields {
            w.key(key);
            match field {
                Field::Num(v) => w.float(*v),
                Field::Uint(v) => w.uint(*v),
                Field::Text(v) => w.string(v),
                Field::Flag(v) => w.bool(*v),
            }
        }
        w.end_object();
        w.finish()
    }

    /// Writes `BENCH_<name>.json` at the repository root and returns its
    /// path. Call this *before* any failure `exit(1)` so the artifact
    /// survives a gate trip.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        // crates/bench -> repository root.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
        let root = root.canonicalize().unwrap_or(root);
        let path = root.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.render() + "\n")?;
        Ok(path)
    }

    /// Writes the artifact and prints where it went; errors are reported
    /// to stderr and swallowed (an unwritable artifact must not fail the
    /// experiment itself).
    pub fn emit(&self) {
        match self.write() {
            Ok(path) => println!("bench artifact: {}", path.display()),
            Err(e) => eprintln!("warning: cannot write BENCH_{}.json: {e}", self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_object_in_insertion_order() {
        let mut r = BenchReport::new("ext_example");
        r.flag("smoke", true).num("overhead", 0.0125).uint("reps", 7).text("mode", "paired");
        assert_eq!(
            r.render(),
            "{\"bench\":\"ext_example\",\"smoke\":true,\"overhead\":0.0125,\
             \"reps\":7,\"mode\":\"paired\"}"
        );
    }

    #[test]
    fn write_lands_at_repo_root_and_round_trips() {
        let mut r = BenchReport::new("test_artifact_tmp");
        r.num("v", 1.5);
        let path = r.write().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"bench\":\"test_artifact_tmp\""));
        assert!(path.parent().unwrap().join("Cargo.toml").exists(), "not at repo root: {path:?}");
        std::fs::remove_file(path).unwrap();
    }
}
