//! # rjms-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation. Each experiment is a binary (`cargo run -p rjms-bench
//! --release --bin <name>`) that prints the same rows/series the paper
//! reports; `EXPERIMENTS.md` at the repository root records paper-vs-measured
//! for each. The `benches/` directory additionally holds Criterion
//! micro-benchmarks for the runtime-critical components.
//!
//! This library crate carries the shared plumbing: a fixed-width text-table
//! writer and the experiment registry used to index the binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod report;
pub mod table;

pub use report::BenchReport;
pub use table::Table;

/// The experiment ids, one per paper artifact, as `(binary, paper artifact,
/// what it reproduces)`.
pub const EXPERIMENTS: &[(&str, &str, &str)] = &[
    ("table1_calibration", "Table I", "fit (t_rcv, t_fltr, t_tx) from simulated measurements"),
    ("fig4_throughput", "Fig. 4", "overall throughput vs n_fltr and R, measured vs model"),
    ("fig5_service_time", "Fig. 5", "mean service time E[B] vs n_fltr and E[R]"),
    ("fig6_capacity", "Fig. 6", "server capacity at rho=0.9 vs n_fltr and E[R]"),
    ("eq3_filter_benefit", "Eq. 3", "break-even filter match probabilities"),
    ("fig8_cvar_bernoulli", "Fig. 8", "c_var[B] vs n_fltr, scaled Bernoulli R"),
    ("fig9_cvar_binomial", "Fig. 9", "c_var[B] vs n_fltr, binomial R"),
    ("fig10_mean_waiting", "Fig. 10", "normalized mean waiting time vs utilization"),
    ("fig11_waiting_cdf", "Fig. 11", "waiting-time CCDF at rho=0.9, analytic vs simulated"),
    ("fig12_quantiles", "Fig. 12", "99% and 99.99% waiting-time quantiles vs utilization"),
    ("fig15_psr_ssr", "Fig. 15", "PSR vs SSR distributed capacity vs n and m"),
];

/// Prints the standard experiment header.
pub fn experiment_header(id: &str, artifact: &str, description: &str) {
    println!("================================================================");
    println!("{id} — reproduces {artifact}");
    println!("{description}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_has_unique_binary_name() {
        let mut names: Vec<&str> = EXPERIMENTS.iter().map(|e| e.0).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
        assert_eq!(before, 11);
    }
}
