//! Fixed-width text tables for experiment output.

use std::fmt::Display;

/// A simple right-aligned text table.
///
/// # Examples
///
/// ```
/// use rjms_bench::Table;
/// let mut t = Table::new(&["n", "value"]);
/// t.row(&[&1, &3.5]);
/// let s = t.to_string();
/// assert!(s.contains("n"));
/// assert!(s.contains("3.5"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self { headers: headers.iter().map(|s| (*s).to_owned()).collect(), rows: Vec::new() }
    }

    /// Appends a row of displayable cells.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[&dyn Display]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Appends a row of pre-formatted strings.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row_strings(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{self}");
    }
}

impl Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&[&100, &1]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('a') && lines[0].contains("bbbb"));
        assert!(lines[2].ends_with("   1"));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn row_width_checked() {
        Table::new(&["a"]).row(&[&1, &2]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(&["x"]);
        assert!(t.is_empty());
        t.row_strings(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }
}
