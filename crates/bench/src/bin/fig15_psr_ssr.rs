//! Reproduces **Fig. 15**: the system capacity of the two distributed JMS
//! architectures — publisher-side replication (PSR, Eq. 21) and
//! subscriber-side replication (SSR, Eq. 22) — depending on the number of
//! publishers `n` and subscribers `m`, for `E[R] = 1`, ρ = 0.9,
//! correlation-ID filtering and 10 filters per subscriber, plus the
//! crossover condition (corrected Eq. 23).

use rjms_bench::{experiment_header, Table};
use rjms_core::architecture::DistributedScenario;
use rjms_core::params::CostParams;

fn scenario(n: u32, m: u32) -> DistributedScenario {
    DistributedScenario {
        params: CostParams::CORRELATION_ID,
        publishers: n,
        subscribers: m,
        filters_per_subscriber: 10,
        mean_replication: 1.0,
        rho: 0.9,
    }
}

fn main() {
    experiment_header(
        "fig15_psr_ssr",
        "Fig. 15",
        "PSR vs SSR system capacity (msgs/s) vs publishers n, for m in {10, 100, 1000, 10000}",
    );

    let n_sweep = [1u32, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000];
    let m_values = [10u32, 100, 1_000, 10_000];

    let ssr = scenario(1, 10).ssr_capacity();
    println!("SSR capacity (independent of n and m): {ssr:.0} msgs/s\n");

    let mut table = Table::new(&["n", "PSR m=10", "PSR m=100", "PSR m=1000", "PSR m=10000", "SSR"]);
    for &n in &n_sweep {
        let mut cells = vec![n.to_string()];
        for &m in &m_values {
            cells.push(format!("{:.1}", scenario(n, m).psr_capacity()));
        }
        cells.push(format!("{ssr:.0}"));
        table.row_strings(cells);
    }
    table.print();

    println!();
    println!("Crossover: PSR outperforms SSR when n exceeds the service-time ratio");
    println!("(corrected Eq. 23 — the proceedings print the inequality garbled):");
    for &m in &m_values {
        let s = scenario(1, m);
        println!(
            "  m = {m:>6}: n > {:.1}  (PSR per-server capacity there: {:.2} msgs/s)",
            s.crossover_publishers(),
            s.psr_per_server_capacity()
        );
    }

    println!();
    println!("Paper observations reproduced:");
    println!("  - PSR grows linearly in n and decays ~1/m for large m,");
    println!("  - SSR is a horizontal line,");
    println!("  - PSR wins for many publishers / few subscribers, SSR for the converse,");
    println!("  - at m = 10⁴ a single publisher-side server is down to a few msgs/s,");
    println!("    so waiting times reach seconds even though system capacity is large;");
    println!("  - neither architecture scales in both dimensions (paper's conclusion).");

    // Network load comparison (§IV-C.2).
    let s = scenario(100, 1_000);
    println!();
    println!(
        "network load at n=100, m=1000: PSR {:.0} copies/s vs SSR {:.0} copies/s",
        s.psr_network_load(),
        s.ssr_network_load()
    );
}
