//! Reproduces **Fig. 5**: the mean message service time `E[B]` (Eq. 1)
//! depending on the number of filters `n_fltr`, the average replication
//! grade `E[R]`, and the filter type. Both axes are logarithmic in the
//! paper; the table prints the log-spaced sweep.

use rjms_bench::{experiment_header, Table};
use rjms_core::params::CostParams;

fn main() {
    experiment_header(
        "fig5_service_time",
        "Fig. 5",
        "mean service time E[B] (ms) vs n_fltr for E[R] in {1, 10, 100}, both filter types",
    );

    let n_fltr_sweep: Vec<u32> =
        [1u32, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000].to_vec();

    let mut table = Table::new(&[
        "n_fltr",
        "corr E[R]=1",
        "corr E[R]=10",
        "corr E[R]=100",
        "app E[R]=1",
        "app E[R]=10",
        "app E[R]=100",
    ]);

    for &n in &n_fltr_sweep {
        let mut cells = vec![n.to_string()];
        for params in [CostParams::CORRELATION_ID, CostParams::APPLICATION_PROPERTY] {
            for e_r in [1.0, 10.0, 100.0] {
                cells.push(format!("{:.4}", params.mean_service_time(n, e_r) * 1e3));
            }
        }
        table.row_strings(cells);
    }

    table.print();
    println!();
    println!("(values in milliseconds)");
    println!("Paper observations reproduced:");
    println!("  - for small n_fltr, E[B] is dominated by E[R]·t_tx,");
    println!("  - for large n_fltr, the linear n_fltr·t_fltr term dominates,");
    println!("  - the service time spans several orders of magnitude,");
    println!("  - application-property filtering is uniformly slower than correlation-ID.");

    // The crossover the paper highlights: where the filter term overtakes
    // the replication term.
    for (label, p) in
        [("corr-ID", CostParams::CORRELATION_ID), ("app-prop", CostParams::APPLICATION_PROPERTY)]
    {
        for e_r in [10.0, 100.0] {
            let crossover = e_r * p.t_tx / p.t_fltr;
            println!(
                "{label}: filter term overtakes E[R]={e_r:.0} replication term at n_fltr ≈ {crossover:.0}"
            );
        }
    }
}
