//! Reproduces **Fig. 12**: the 99% and 99.99% quantiles of the message
//! waiting time on a normalized axis (`Q_p[W]/E[B]`) depending on the
//! server utilization ρ and the service-time variability `c_var[B]`.
//!
//! Headline numbers the paper derives from this figure: at ρ = 0.9 the
//! 99.99% quantile stays below 50·E[B]; with `E[B] = 20 ms` that bounds the
//! waiting time by 1 s — but the capacity is then only 45 msgs/s.

use rjms_bench::{experiment_header, Table};
use rjms_queueing::mg1::Mg1;
use rjms_queueing::moments::Moments3;

/// Unit-mean service time with the requested cvar; third moment from the
/// scaled-Bernoulli family (Fig. 11 shows the choice is immaterial).
fn unit_service(cvar: f64) -> Moments3 {
    if cvar == 0.0 {
        return Moments3::constant(1.0);
    }
    let m2 = 1.0 + cvar * cvar;
    Moments3::new(1.0, m2, m2 * m2)
}

fn main() {
    experiment_header(
        "fig12_quantiles",
        "Fig. 12",
        "normalized waiting-time quantiles Q_p[W]/E[B] vs utilization rho",
    );

    let cvars = [0.0, 0.2, 0.4];
    let rhos = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95];

    for (p, label) in [(0.99, "99% quantile"), (0.9999, "99.99% quantile")] {
        println!("\n[{label}]");
        let mut table = Table::new(&["rho", "cvar=0", "cvar=0.2", "cvar=0.4"]);
        for &rho in &rhos {
            let mut cells = vec![format!("{rho:.2}")];
            for &c in &cvars {
                let q = Mg1::with_utilization(rho, unit_service(c)).expect("stable");
                cells.push(format!("{:.2}", q.waiting_time_distribution().quantile(p)));
            }
            table.row_strings(cells);
        }
        table.print();
    }

    // The paper's headline bound.
    let q = Mg1::with_utilization(0.9, unit_service(0.4)).unwrap();
    let q9999 = q.waiting_time_distribution().quantile(0.9999);
    println!();
    println!("At rho = 0.9, c_var[B] = 0.4: Q_99.99%[W] = {q9999:.1}·E[B] (paper: < 50·E[B]).");
    println!("With E[B] = 20 ms: bound = {:.2} s at a capacity of only 45 msgs/s —", q9999 * 0.02);
    println!("so whenever the throughput is acceptable, the waiting time is a non-issue.");
    println!("The quantiles are dominated by rho; the c_var[B] effect is secondary.");
}
