//! Reproduces **Fig. 8**: the coefficient of variation `c_var[B]` of the
//! message processing time when the replication grade follows the *scaled
//! Bernoulli* model (all `n_fltr` filters match together with probability
//! `p_match`, else none). The paper reports convergence to
//! filter-type-specific limits and a maximum of ≈ 0.65 over all `p_match`.

use rjms_bench::{experiment_header, Table};
use rjms_core::model::ServerModel;
use rjms_core::params::CostParams;
use rjms_queueing::replication::ReplicationModel;

fn cvar_for(params: CostParams, n_fltr: u32, p_match: f64) -> f64 {
    ServerModel::new(params, n_fltr)
        .service_time(ReplicationModel::scaled_bernoulli(n_fltr as f64, p_match))
        .cvar()
}

fn main() {
    experiment_header(
        "fig8_cvar_bernoulli",
        "Fig. 8",
        "c_var[B] vs n_fltr for scaled-Bernoulli R, p_match in {0.1, 0.3, 0.5, 0.9}",
    );

    let p_values = [0.1, 0.3, 0.5, 0.9];
    let sweep: Vec<u32> = [1u32, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 10_000].to_vec();

    for (label, params) in [
        ("correlation-ID", CostParams::CORRELATION_ID),
        ("application-property", CostParams::APPLICATION_PROPERTY),
    ] {
        println!("\n[{label}]");
        let mut table = Table::new(&["n_fltr", "p=0.1", "p=0.3", "p=0.5", "p=0.9"]);
        for &n in &sweep {
            let mut cells = vec![n.to_string()];
            for &p in &p_values {
                cells.push(format!("{:.4}", cvar_for(params, n, p)));
            }
            table.row_strings(cells);
        }
        table.print();

        // Asymptotic limit: c_var[B] → t_tx·sqrt(p(1-p)) / (t_fltr + p·t_tx).
        println!("asymptotic limits (n_fltr → ∞):");
        for &p in &p_values {
            let limit = params.t_tx * (p * (1.0 - p)).sqrt() / (params.t_fltr + p * params.t_tx);
            println!("  p_match={p:.1}: {limit:.4}");
        }
    }

    // Global maximum over p_match and n_fltr (paper: at most 0.65).
    let mut max_cvar = 0.0f64;
    let mut argmax = (0.0, 0u32);
    for p in (1..100).map(|i| i as f64 / 100.0) {
        for &n in &[100u32, 1_000, 10_000, 100_000] {
            let c = cvar_for(CostParams::CORRELATION_ID, n, p);
            if c > max_cvar {
                max_cvar = c;
                argmax = (p, n);
            }
        }
    }
    println!();
    println!(
        "maximum c_var[B] over the scan: {max_cvar:.3} at p_match={:.2}, n_fltr={} (paper: ≈0.65)",
        argmax.0, argmax.1
    );
}
