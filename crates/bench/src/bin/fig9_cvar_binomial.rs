//! Reproduces **Fig. 9**: the coefficient of variation `c_var[B]` of the
//! message processing time when the `n_fltr` filters match *independently*
//! (binomial replication grade). The paper reports a quick rise to small
//! plateau values — 0.064 for correlation-ID and 0.033 for
//! application-property filtering — far below the Bernoulli worst case,
//! which is why service-time variability barely matters in Fig. 10–12.

use rjms_bench::{experiment_header, Table};
use rjms_core::model::ServerModel;
use rjms_core::params::CostParams;
use rjms_queueing::replication::ReplicationModel;

fn cvar_for(params: CostParams, n_fltr: u32, p_match: f64) -> f64 {
    ServerModel::new(params, n_fltr)
        .service_time(ReplicationModel::binomial(n_fltr as f64, p_match))
        .cvar()
}

fn main() {
    experiment_header(
        "fig9_cvar_binomial",
        "Fig. 9",
        "c_var[B] vs n_fltr for binomial R, p_match in {0.1, 0.3, 0.5, 0.9}",
    );

    let p_values = [0.1, 0.3, 0.5, 0.9];
    let sweep: Vec<u32> = [1u32, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 10_000].to_vec();

    for (label, params) in [
        ("correlation-ID", CostParams::CORRELATION_ID),
        ("application-property", CostParams::APPLICATION_PROPERTY),
    ] {
        println!("\n[{label}]");
        let mut table = Table::new(&["n_fltr", "p=0.1", "p=0.3", "p=0.5", "p=0.9"]);
        for &n in &sweep {
            let mut cells = vec![n.to_string()];
            for &p in &p_values {
                cells.push(format!("{:.4}", cvar_for(params, n, p)));
            }
            table.row_strings(cells);
        }
        table.print();
    }

    println!();
    println!(
        "reference values at n_fltr = 100 (the shoulder of the paper's measured \
         range, where Fig. 9's quoted plateaus sit):"
    );
    println!(
        "  corr-ID, p=0.3:  {:.3} (paper ≈0.064)",
        cvar_for(CostParams::CORRELATION_ID, 100, 0.3)
    );
    println!(
        "  app-prop, p=0.5: {:.3} (paper ≈0.033)",
        cvar_for(CostParams::APPLICATION_PROPERTY, 100, 0.5)
    );
    println!("Independent filter matching averages out: c_var[B] stays tiny, so the");
    println!("waiting time is governed almost entirely by the utilization (Fig. 10).");
}
