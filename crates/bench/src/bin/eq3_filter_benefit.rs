//! Reproduces the **Eq. 3 filter-benefit thresholds** (paper §IV-A.2):
//! a consumer's filters increase server capacity only if
//! `n_fltr^q · t_fltr < (1 − p_match^q) · t_tx`. The paper quotes break-even
//! match probabilities of 58.7% / 17.4% for one / two correlation-ID filters
//! (three or more never help) and 9.9% for a single application-property
//! filter (two or more never help).

use rjms_bench::{experiment_header, Table};
use rjms_core::capacity::{break_even_match_probability, filter_benefit};
use rjms_core::params::CostParams;

fn main() {
    experiment_header(
        "eq3_filter_benefit",
        "Eq. 3 thresholds",
        "break-even match probability per consumer filter count",
    );

    let mut table = Table::new(&["filter type", "n_fltr^q", "break-even p_match", "paper"]);

    let paper_corr = ["58.7%", "17.4%", "never"];
    for (i, n) in (1u32..=3).enumerate() {
        let p = break_even_match_probability(&CostParams::CORRELATION_ID, n);
        table.row_strings(vec![
            "corr. ID".to_owned(),
            n.to_string(),
            p.map_or("never beneficial".to_owned(), |v| format!("{:.1}%", v * 100.0)),
            paper_corr[i].to_owned(),
        ]);
    }
    let paper_app = ["9.9%", "never"];
    for (i, n) in (1u32..=2).enumerate() {
        let p = break_even_match_probability(&CostParams::APPLICATION_PROPERTY, n);
        table.row_strings(vec![
            "app. prop.".to_owned(),
            n.to_string(),
            p.map_or("never beneficial".to_owned(), |v| format!("{:.1}%", v * 100.0)),
            paper_app[i].to_owned(),
        ]);
    }
    table.print();

    println!();
    println!("Spot checks of the raw inequality (Eq. 3):");
    for (label, params, n, p) in [
        ("corr-ID", CostParams::CORRELATION_ID, 1, 0.5),
        ("corr-ID", CostParams::CORRELATION_ID, 1, 0.65),
        ("corr-ID", CostParams::CORRELATION_ID, 3, 0.0),
        ("app-prop", CostParams::APPLICATION_PROPERTY, 1, 0.05),
    ] {
        let b = filter_benefit(&params, n, p);
        println!(
            "  {label}: n={n}, p_match={p:.2} → cost {:.2e}s vs saving {:.2e}s → {}",
            b.filter_cost,
            b.transmission_saving,
            if b.beneficial { "beneficial" } else { "harmful" }
        );
    }
    println!();
    println!("(Filters primarily protect consumers and the network; they raise server");
    println!(" capacity only under the thresholds above.)");
}
