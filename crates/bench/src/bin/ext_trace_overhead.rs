//! `ext_trace_overhead` — cost of the tail-sampled flight recorder.
//!
//! Tracing arms the per-stage stopwatches for *every* message (the tail
//! decision is post-hoc, so durations must exist before the verdict) and
//! adds a threshold comparison, an occasional quantile refresh, and — for
//! kept messages — four ring writes. All of that rides the dispatcher hot
//! path, so it is a `t_*` term of its own in the paper's service-time
//! model, and this experiment gates it the same way `ext_observer_overhead`
//! gates the metrics layer. Two workloads:
//!
//! * **calibrated** — 64 correlation-ID filters with the paper's Table I
//!   cost constants (scaled 1/32), the operating regime the model
//!   describes. This is the **regression gate**: tracing-on throughput
//!   must stay within 5% of the metrics-only baseline.
//! * **null-work** — no cost model, so a message costs only the dispatch
//!   machinery (~2 µs) and the recorder's fixed per-message cost (three
//!   extra clock reads plus the tail bookkeeping) is maximally visible.
//!   Reported for transparency, not gated.
//!
//! Both variants run with the metrics layer enabled — tracing requires the
//! sojourn histogram — so the measured difference isolates the *recorder*,
//! not the instruments underneath it.
//!
//! Methodology (same as `ext_observer_overhead`): fixed-count runs timed
//! until the broker received all messages, alternating variant order
//! between repetitions, median of the paired relative differences. The
//! default tail quantile (0.99) and uniform baseline (1/128) are used, so
//! the kept fraction matches production defaults.
//!
//! The process exits non-zero if the calibrated-workload overhead exceeds
//! the acceptance budget (5%), which lets CI run it as a regression gate:
//!
//! ```text
//! cargo run --release -p rjms-bench --bin ext_trace_overhead -- --smoke
//! ```

use rjms_bench::{experiment_header, BenchReport, Table};
use rjms_broker::{
    Broker, BrokerConfig, CostModel, Filter, Message, MetricsConfig, OverflowPolicy, TraceConfig,
};
use std::time::{Duration, Instant};

/// Acceptance budget on the calibrated workload: tracing-enabled dispatch
/// must stay within this fraction of the metrics-only baseline.
const MAX_OVERHEAD: f64 = 0.05;

/// Filters installed on the bench topic (one of them matches).
const N_FILTERS: u32 = 64;

/// Table I correlation-ID constants divided by this factor for the
/// calibrated workload (see `ext_observer_overhead`).
const COST_SCALE: f64 = 32.0;

/// One fixed-count run; returns received msgs/s. `trace` toggles the
/// flight recorder on top of an always-on metrics layer.
fn measure(trace: bool, cost: Option<CostModel>, n: u64) -> f64 {
    let mut config = BrokerConfig::builder()
        .publish_queue_capacity(256)
        .subscriber_queue_capacity(1 << 18)
        .overflow_policy(OverflowPolicy::DropNew)
        .metrics(MetricsConfig::default());
    if trace {
        config = config.trace(TraceConfig::default());
    }
    if let Some(c) = cost {
        config = config.cost_model(c);
    }
    let broker = Broker::start(config.build());
    broker.create_topic("bench").unwrap();

    let _subscribers: Vec<_> = (0..N_FILTERS)
        .map(|i| {
            broker
                .subscription("bench")
                .filter(Filter::correlation_id(&format!("#{i}")).unwrap())
                .open()
                .unwrap()
        })
        .collect();

    let publisher = broker.publisher("bench").unwrap();
    let warmup = n / 10;
    for _ in 0..warmup {
        publisher.publish(Message::builder().correlation_id("#0").build()).unwrap();
    }
    while broker.snapshot().messages.received < warmup {
        std::thread::sleep(Duration::from_millis(1));
    }

    let t0 = Instant::now();
    for _ in 0..n {
        publisher.publish(Message::builder().correlation_id("#0").build()).unwrap();
    }
    while broker.snapshot().messages.received < warmup + n {
        std::thread::yield_now();
    }
    let elapsed = t0.elapsed();
    broker.shutdown();
    n as f64 / elapsed.as_secs_f64()
}

/// Paired off/on measurements for one workload; returns the median of the
/// per-repetition relative differences (positive = tracing cost).
fn run_workload(
    name: &str,
    cost: Option<CostModel>,
    n: u64,
    reps: usize,
    table: &mut Table,
) -> f64 {
    let mut diffs = Vec::with_capacity(reps);
    for rep in 0..reps {
        // Alternate order so slow drift (thermal, background load) cancels.
        let (off, on) = if rep % 2 == 0 {
            let off = measure(false, cost, n);
            let on = measure(true, cost, n);
            (off, on)
        } else {
            let on = measure(true, cost, n);
            let off = measure(false, cost, n);
            (off, on)
        };
        let diff = 1.0 - on / off;
        diffs.push(diff);
        table.row(&[
            &name,
            &(rep + 1),
            &format!("{off:.0}"),
            &format!("{on:.0}"),
            &format!("{:+.2}%", diff * 100.0),
        ]);
    }
    diffs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    diffs[diffs.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (reps, n_calibrated, n_null) =
        if smoke { (3, 12_000, 40_000) } else { (7, 50_000, 100_000) };

    experiment_header(
        "ext_trace_overhead",
        "extension (observability)",
        "dispatch throughput with the flight recorder on vs off; gate at 5%",
    );
    if smoke {
        println!("smoke mode: reduced counts and repetitions, CI regression gate\n");
    }

    let calibrated = CostModel::new(
        CostModel::CORRELATION_ID.t_rcv / COST_SCALE,
        CostModel::CORRELATION_ID.t_fltr / COST_SCALE,
        CostModel::CORRELATION_ID.t_tx / COST_SCALE,
    );
    let per_msg = calibrated.processing_time(N_FILTERS as usize, 1);
    println!(
        "calibrated workload: Table I (correlation ID) / {COST_SCALE:.0}, \
         {N_FILTERS} filters -> E[B] = {:.1} us/msg",
        per_msg * 1e6
    );
    println!("null-work workload:  no cost model, dispatch machinery only");
    println!("baseline is metrics-on in both: the diff isolates the recorder\n");

    let mut table =
        Table::new(&["workload", "rep", "trace off (msg/s)", "trace on (msg/s)", "overhead"]);
    let gated = run_workload("calibrated", Some(calibrated), n_calibrated, reps, &mut table);
    let null = run_workload("null-work", None, n_null, reps, &mut table);
    table.print();

    println!();
    println!(
        "calibrated overhead (median of paired diffs): {:+.2}%  [GATE: budget {:.0}%]",
        gated * 100.0,
        MAX_OVERHEAD * 100.0
    );
    println!("null-work overhead (median of paired diffs): {:+.2}%  [informational]", null * 100.0);

    let pass = gated <= MAX_OVERHEAD;
    let mut report = BenchReport::new("ext_trace_overhead");
    report
        .flag("smoke", smoke)
        .uint("reps", reps as u64)
        .num("calibrated_overhead", gated)
        .num("null_work_overhead", null)
        .num("budget", MAX_OVERHEAD)
        .flag("pass", pass);
    report.emit();

    if !pass {
        println!("FAIL: flight recorder exceeds the overhead budget on the calibrated workload");
        std::process::exit(1);
    }
    println!("PASS: flight recorder is within the overhead budget on the calibrated workload");
}
