//! **Ablation**: how accurate is the two-moment Gamma approximation of the
//! waiting-time distribution (Eq. 20)?
//!
//! The paper cites [23] for the approximation being "very good"; this
//! ablation quantifies it on our own stack twice over. The *reference* is
//! the exact Pollaczek–Khinchine transform inversion
//! (`rjms_queueing::inversion`), which carries no simulation noise; long
//! discrete-event simulations of the same queues are kept as an
//! independent cross-check of the inversion itself. The headline residual
//! — the worst W99 error of the Gamma fit against the exact distribution
//! on the overload-test workload — is gated here and folded into the
//! saturation forecaster's confidence (`rjms_obs::forecast`).

use rjms_bench::{experiment_header, BenchReport, Table};
use rjms_core::params::CostParams;
use rjms_desim::mg1sim::{simulate_lindley, Mg1SimConfig};
use rjms_desim::random::ReplicationService;
use rjms_queueing::inversion::ExactWaiting;
use rjms_queueing::mg1::Mg1;
use rjms_queueing::replication::ReplicationModel;
use rjms_queueing::service::ServiceTime;

/// Gate on the Gamma fit's W99 error against the exact inversion, across
/// the whole (rho, cvar) grid. Exceeding it means Eq. 20 has degraded
/// past "a few percent" and the approximation (or its use in the SLO
/// planner) needs revisiting.
const MAX_W99_RESIDUAL: f64 = 0.05;

fn main() {
    experiment_header(
        "ablation_gamma_accuracy",
        "Eq. 20 accuracy (paper cites [23])",
        "Gamma-approximated vs exact (transform-inverted) and simulated quantiles",
    );
    let mut report = BenchReport::new("ablation_gamma_accuracy");

    let params = CostParams::CORRELATION_ID;
    let n_fltr = 100u32;
    let d = params.deterministic_part(n_fltr);

    let mut table = Table::new(&[
        "rho",
        "cvar[B]",
        "Q99 approx",
        "Q99 exact",
        "err",
        "Q99 sim",
        "Q99.99 approx",
        "Q99.99 exact",
        "err",
    ]);

    // Worst Gamma-vs-exact residuals over the grid; the overload-test
    // workload (tests/slo_overload.rs, tests/flow_overload.rs) lives on
    // this same CORRELATION_ID + n_fltr=100 service family.
    let (mut worst_w99, mut worst_w9999, mut worst_sim_gap) = (0.0f64, 0.0f64, 0.0f64);

    for &rho in &[0.5, 0.7, 0.9, 0.95] {
        for &(label, replication) in &[
            ("0.00", ReplicationModel::deterministic(20.0)),
            ("low", ReplicationModel::binomial(100.0, 0.2)),
            ("high", ReplicationModel::scaled_bernoulli(100.0, 0.2)),
        ] {
            let service = ServiceTime::new(d, params.t_tx, replication);
            let queue = Mg1::with_utilization(rho, service.moments()).expect("stable");
            let dist = queue.waiting_time_distribution();
            let (q99_a, q9999_a) = (dist.quantile(0.99), dist.quantile(0.9999));

            let exact = ExactWaiting::for_service(&service, rho).expect("stable");
            let (q99_e, q9999_e) = (exact.quantile(0.99), exact.quantile(0.9999));

            let sampler = ReplicationService { deterministic: d, t_tx: params.t_tx, replication };
            let mut sim = simulate_lindley(
                &Mg1SimConfig {
                    arrival_rate: queue.arrival_rate(),
                    samples: 600_000,
                    warmup: 60_000,
                    seed: 1000 + (rho * 100.0) as u64,
                },
                &sampler,
            );
            let q99_s = sim.waiting_samples.quantile(0.99);

            let e99 = (q99_a - q99_e).abs() / q99_e.max(1e-12);
            let e9999 = (q9999_a - q9999_e).abs() / q9999_e.max(1e-12);
            worst_w99 = worst_w99.max(e99);
            worst_w9999 = worst_w9999.max(e9999);
            worst_sim_gap = worst_sim_gap.max((q99_s - q99_e).abs() / q99_e.max(1e-12));
            table.row_strings(vec![
                format!("{rho:.2}"),
                format!("{label} ({:.3})", service.cvar()),
                format!("{:.2}ms", q99_a * 1e3),
                format!("{:.2}ms", q99_e * 1e3),
                format!("{:.1}%", e99 * 100.0),
                format!("{:.2}ms", q99_s * 1e3),
                format!("{:.2}ms", q9999_a * 1e3),
                format!("{:.2}ms", q9999_e * 1e3),
                format!("{:.1}%", e9999 * 100.0),
            ]);
        }
    }
    table.print();

    println!();
    println!("worst W99 residual (gamma vs exact inversion):    {:.2}%", worst_w99 * 100.0);
    println!("worst W99.99 residual (gamma vs exact inversion): {:.2}%", worst_w9999 * 100.0);
    println!("worst W99 gap (simulation vs exact inversion):    {:.2}%", worst_sim_gap * 100.0);
    println!();
    println!("the two-moment Gamma fit tracks the exact transform inversion across");
    println!("the whole (rho, cvar) grid — justifying the paper's use of Eq. 20 for");
    println!("Figs. 11-12. The simulation column independently validates the");
    println!("inversion; residual gap there is finite-sample noise, not model error.");

    let pass = worst_w99 <= MAX_W99_RESIDUAL;
    report
        .num("w99_residual", worst_w99)
        .num("w9999_residual", worst_w9999)
        .num("sim_vs_exact_gap", worst_sim_gap)
        .num("budget", MAX_W99_RESIDUAL)
        .flag("pass", pass);
    report.emit();
    if !pass {
        eprintln!(
            "GATE FAILED: gamma W99 residual {:.2}% exceeds {:.1}% budget",
            worst_w99 * 100.0,
            MAX_W99_RESIDUAL * 100.0
        );
        std::process::exit(1);
    }
}
