//! **Ablation**: how accurate is the two-moment Gamma approximation of the
//! waiting-time distribution (Eq. 20)?
//!
//! The paper cites [23] for the approximation being "very good"; this
//! ablation quantifies it on our own stack: for a grid of utilizations and
//! service-time variabilities, compare the approximated quantiles and tail
//! probabilities against long discrete-event simulations of the exact
//! M/G/1 queue.

use rjms_bench::{experiment_header, Table};
use rjms_core::params::CostParams;
use rjms_desim::mg1sim::{simulate_lindley, Mg1SimConfig};
use rjms_desim::random::ReplicationService;
use rjms_queueing::mg1::Mg1;
use rjms_queueing::replication::ReplicationModel;
use rjms_queueing::service::ServiceTime;

fn main() {
    experiment_header(
        "ablation_gamma_accuracy",
        "Eq. 20 accuracy (paper cites [23])",
        "Gamma-approximated vs simulated waiting-time quantiles",
    );

    let params = CostParams::CORRELATION_ID;
    let n_fltr = 100u32;
    let d = params.deterministic_part(n_fltr);

    let mut table = Table::new(&[
        "rho",
        "cvar[B]",
        "Q99 approx",
        "Q99 sim",
        "err",
        "Q99.99 approx",
        "Q99.99 sim",
        "err",
    ]);

    for &rho in &[0.5, 0.7, 0.9, 0.95] {
        for &(label, replication) in &[
            ("0.00", ReplicationModel::deterministic(20.0)),
            ("low", ReplicationModel::binomial(100.0, 0.2)),
            ("high", ReplicationModel::scaled_bernoulli(100.0, 0.2)),
        ] {
            let service = ServiceTime::new(d, params.t_tx, replication);
            let queue = Mg1::with_utilization(rho, service.moments()).expect("stable");
            let dist = queue.waiting_time_distribution();
            let (q99_a, q9999_a) = (dist.quantile(0.99), dist.quantile(0.9999));

            let sampler = ReplicationService { deterministic: d, t_tx: params.t_tx, replication };
            let mut sim = simulate_lindley(
                &Mg1SimConfig {
                    arrival_rate: queue.arrival_rate(),
                    samples: 600_000,
                    warmup: 60_000,
                    seed: 1000 + (rho * 100.0) as u64,
                },
                &sampler,
            );
            let (q99_s, q9999_s) =
                (sim.waiting_samples.quantile(0.99), sim.waiting_samples.quantile(0.9999));

            let e99 = (q99_a - q99_s).abs() / q99_s.max(1e-12);
            let e9999 = (q9999_a - q9999_s).abs() / q9999_s.max(1e-12);
            table.row_strings(vec![
                format!("{rho:.2}"),
                format!("{label} ({:.3})", service.cvar()),
                format!("{:.2}ms", q99_a * 1e3),
                format!("{:.2}ms", q99_s * 1e3),
                format!("{:.1}%", e99 * 100.0),
                format!("{:.2}ms", q9999_a * 1e3),
                format!("{:.2}ms", q9999_s * 1e3),
                format!("{:.1}%", e9999 * 100.0),
            ]);
        }
    }
    table.print();

    println!();
    println!("the two-moment Gamma fit tracks the simulated quantiles across the");
    println!("whole (rho, cvar) grid — justifying the paper's use of Eq. 20 for");
    println!("Figs. 11-12 (errors concentrate in the deep tail at high variability,");
    println!("where the finite simulation is itself noisy).");
}
