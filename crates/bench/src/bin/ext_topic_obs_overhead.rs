//! `ext_topic_obs_overhead` — cost of the per-topic workload observatory
//! on the dispatch path.
//!
//! The observatory's dispatch-path footprint is one thread-local
//! `HashMap` upsert per message (ten floating-point accumulations into
//! the staged [`CostRegression`] sums) plus a mutex-guarded merge into
//! the shared table every `FLUSH_EVERY` messages or on idle — the same
//! staging discipline as the histogram scratch. This experiment measures
//! that footprint with the observatory off vs on and gates it at 5%,
//! the same budget as `ext_obs_overhead`.
//!
//! Both variants run with metrics **on** (the observatory implies them);
//! the paired difference isolates the accounting table. The workload
//! spreads traffic over several topics so the staging map holds more
//! than one entry and the merge path actually exercises contention.
//!
//! Methodology matches `ext_obs_overhead`: fixed message counts,
//! alternating order between repetitions, median of paired relative
//! differences, and a non-zero exit when the calibrated workload exceeds
//! the budget so CI can run it as a regression gate:
//!
//! ```text
//! cargo run --release -p rjms-bench --bin ext_topic_obs_overhead -- --smoke
//! ```

use rjms_bench::{experiment_header, BenchReport, Table};
use rjms_broker::{
    Broker, BrokerConfig, CostModel, Filter, Message, MetricsConfig, OverflowPolicy, TopicObsConfig,
};
use std::time::{Duration, Instant};

/// Acceptance budget on the calibrated workload: dispatch throughput with
/// the observatory recording must stay within this fraction of baseline.
const MAX_OVERHEAD: f64 = 0.05;

/// Filters installed per bench topic (one of them matches).
const N_FILTERS: u32 = 64;

/// Topics the traffic is spread over (each gets its own table row).
const N_TOPICS: usize = 8;

/// Table I correlation-ID constants divided by this factor for the
/// calibrated workload (see `ext_observer_overhead`).
const COST_SCALE: f64 = 32.0;

/// One fixed-count run; returns received msgs/s. Metrics are always on;
/// `obs` additionally records into the per-topic observatory.
fn measure(obs: bool, cost: Option<CostModel>, n: u64) -> f64 {
    let mut config = BrokerConfig::builder()
        .publish_queue_capacity(256)
        .subscriber_queue_capacity(1 << 18)
        .overflow_policy(OverflowPolicy::DropNew)
        .metrics(MetricsConfig::default());
    if obs {
        config = config.topic_obs(TopicObsConfig::default());
    }
    if let Some(c) = cost {
        config = config.cost_model(c);
    }
    let broker = Broker::start(config.build());
    let mut publishers = Vec::with_capacity(N_TOPICS);
    let mut _subscribers = Vec::new();
    for t in 0..N_TOPICS {
        let topic = format!("bench-{t}");
        broker.create_topic(&topic).unwrap();
        for i in 0..N_FILTERS {
            _subscribers.push(
                broker
                    .subscription(&topic)
                    .filter(Filter::correlation_id(&format!("#{i}")).unwrap())
                    .open()
                    .unwrap(),
            );
        }
        publishers.push(broker.publisher(&topic).unwrap());
    }

    let warmup = n / 10;
    for i in 0..warmup {
        publishers[i as usize % N_TOPICS]
            .publish(Message::builder().correlation_id("#0").build())
            .unwrap();
    }
    while broker.snapshot().messages.received < warmup {
        std::thread::sleep(Duration::from_millis(1));
    }

    let t0 = Instant::now();
    for i in 0..n {
        publishers[i as usize % N_TOPICS]
            .publish(Message::builder().correlation_id("#0").build())
            .unwrap();
    }
    while broker.snapshot().messages.received < warmup + n {
        std::thread::yield_now();
    }
    let elapsed = t0.elapsed();
    broker.shutdown();
    n as f64 / elapsed.as_secs_f64()
}

/// Paired off/on measurements; returns the median relative difference
/// (positive = the observatory costs throughput).
fn run_workload(
    name: &str,
    cost: Option<CostModel>,
    n: u64,
    reps: usize,
    table: &mut Table,
) -> f64 {
    let mut diffs = Vec::with_capacity(reps);
    for rep in 0..reps {
        // Alternate order so slow drift (thermal, background load) cancels.
        let (off, on) = if rep % 2 == 0 {
            let off = measure(false, cost, n);
            let on = measure(true, cost, n);
            (off, on)
        } else {
            let on = measure(true, cost, n);
            let off = measure(false, cost, n);
            (off, on)
        };
        let diff = 1.0 - on / off;
        diffs.push(diff);
        table.row(&[
            &name,
            &(rep + 1),
            &format!("{off:.0}"),
            &format!("{on:.0}"),
            &format!("{:+.2}%", diff * 100.0),
        ]);
    }
    diffs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    diffs[diffs.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Same rep/count calibration as ext_obs_overhead: 5 reps over 25k
    // messages keep the smoke gate's spread well inside the 5% budget.
    let (reps, n_calibrated, n_null) =
        if smoke { (5, 25_000, 60_000) } else { (7, 50_000, 100_000) };

    experiment_header(
        "ext_topic_obs_overhead",
        "extension (observability)",
        "dispatch throughput with the per-topic observatory recording vs not; gate at 5%",
    );
    if smoke {
        println!("smoke mode: reduced counts and repetitions, CI regression gate\n");
    }

    let calibrated = CostModel::new(
        CostModel::CORRELATION_ID.t_rcv / COST_SCALE,
        CostModel::CORRELATION_ID.t_fltr / COST_SCALE,
        CostModel::CORRELATION_ID.t_tx / COST_SCALE,
    );
    let per_msg = calibrated.processing_time(N_FILTERS as usize, 1);
    println!(
        "calibrated workload: Table I (correlation ID) / {COST_SCALE:.0}, \
         {N_FILTERS} filters x {N_TOPICS} topics -> E[B] = {:.1} us/msg",
        per_msg * 1e6
    );
    println!("null-work workload:  no cost model, dispatch machinery only");
    println!("baseline is metrics-on in both; observatory at its default cap\n");

    let mut table =
        Table::new(&["workload", "rep", "obs off (msg/s)", "obs on (msg/s)", "overhead"]);
    let gated = run_workload("calibrated", Some(calibrated), n_calibrated, reps, &mut table);
    let null = run_workload("null-work", None, n_null, reps, &mut table);
    table.print();

    println!();
    println!(
        "calibrated overhead (median of paired diffs): {:+.2}%  [GATE: budget {:.0}%]",
        gated * 100.0,
        MAX_OVERHEAD * 100.0
    );
    println!("null-work overhead (median of paired diffs): {:+.2}%  [informational]", null * 100.0);

    let pass = gated <= MAX_OVERHEAD;
    let mut report = BenchReport::new("ext_topic_obs_overhead");
    report
        .flag("smoke", smoke)
        .uint("reps", reps as u64)
        .uint("topics", N_TOPICS as u64)
        .num("calibrated_overhead", gated)
        .num("null_work_overhead", null)
        .num("budget", MAX_OVERHEAD)
        .flag("pass", pass);
    report.emit();

    if !pass {
        println!("FAIL: per-topic observatory exceeds the overhead budget");
        std::process::exit(1);
    }
    println!("PASS: per-topic observatory is within the overhead budget");
}
