//! `ext_forecast_overhead` — cost of the saturation forecaster on the
//! dispatch path.
//!
//! The forecaster is pure sampler-side arithmetic: each engine tick fits
//! an arrival-rate trend over the history rings, moment-matches the
//! measured service distribution, and inverts the Eq. 1 + M/GI/1 model
//! for the saturation and W99-breach rates. None of that touches the
//! dispatcher directly — like the SLO engine it rides on, its only
//! dispatch-path footprint is registry contention (the snapshot it reads
//! from) plus the tick-thread CPU it steals from the broker's cores.
//! This experiment bounds that footprint.
//!
//! Both variants run with metrics **and** the SLO engine on; the paired
//! difference isolates the forecast stage alone (trend fit, Little's-law
//! check, model inversions). The sampling interval is forced down to
//! 25 ms — 40× the production default rate — so the gate bounds a
//! deliberately adversarial configuration.
//!
//! Methodology matches `ext_obs_overhead`: fixed message counts,
//! alternating order between repetitions, median of paired relative
//! differences, and a non-zero exit when the calibrated workload exceeds
//! the budget so CI can run it as a regression gate:
//!
//! ```text
//! cargo run --release -p rjms-bench --bin ext_forecast_overhead -- --smoke
//! ```

use rjms_bench::{experiment_header, BenchReport, Table};
use rjms_broker::{
    Broker, BrokerConfig, CostModel, Filter, Message, MetricsConfig, OverflowPolicy,
};
use rjms_obs::{ForecastConfig, ObsConfig, ObsCore, ObsRuntime};
use std::time::{Duration, Instant};

/// Acceptance budget on the calibrated workload: dispatch throughput with
/// forecasting on must stay within this fraction of the forecast-off run.
const MAX_OVERHEAD: f64 = 0.05;

/// Filters installed on the bench topic (one of them matches).
const N_FILTERS: u32 = 64;

/// Table I correlation-ID constants divided by this factor for the
/// calibrated workload (see `ext_observer_overhead`).
const COST_SCALE: f64 = 32.0;

/// Sampling interval during the measurement: 40× the production default,
/// so every tick's trend fit and model inversion runs 40× as often as it
/// would in production.
const SAMPLE_EVERY: Duration = Duration::from_millis(25);

/// One fixed-count run; returns received msgs/s. Metrics and the SLO
/// engine are always on; `forecast` additionally runs the trend fit and
/// breach projection on every sampler tick.
fn measure(forecast: bool, cost: Option<CostModel>, n: u64) -> f64 {
    let mut config = BrokerConfig::builder()
        .publish_queue_capacity(256)
        .subscriber_queue_capacity(1 << 18)
        .overflow_policy(OverflowPolicy::DropNew)
        .metrics(MetricsConfig::default());
    if let Some(c) = cost {
        config = config.cost_model(c);
    }
    let broker = Broker::start(config.build());
    broker.create_topic("bench").unwrap();
    let _subscribers: Vec<_> = (0..N_FILTERS)
        .map(|i| {
            broker
                .subscription("bench")
                .filter(Filter::correlation_id(&format!("#{i}")).unwrap())
                .open()
                .unwrap()
        })
        .collect();
    let obs_config = ObsConfig {
        forecast: ForecastConfig { enabled: forecast, ..ForecastConfig::default() },
        ..ObsConfig::default()
    };
    let registry = broker.metrics().expect("metrics enabled above");
    let runtime = ObsRuntime::start(ObsCore::new(obs_config), registry, None, SAMPLE_EVERY);

    let publisher = broker.publisher("bench").unwrap();
    let warmup = n / 10;
    for _ in 0..warmup {
        publisher.publish(Message::builder().correlation_id("#0").build()).unwrap();
    }
    while broker.snapshot().messages.received < warmup {
        std::thread::sleep(Duration::from_millis(1));
    }

    let t0 = Instant::now();
    for _ in 0..n {
        publisher.publish(Message::builder().correlation_id("#0").build()).unwrap();
    }
    while broker.snapshot().messages.received < warmup + n {
        std::thread::yield_now();
    }
    let elapsed = t0.elapsed();
    drop(runtime); // joins the sampling thread before shutdown
    broker.shutdown();
    n as f64 / elapsed.as_secs_f64()
}

/// Paired off/on measurements; returns the median relative difference
/// (positive = forecasting costs throughput).
fn run_workload(
    name: &str,
    cost: Option<CostModel>,
    n: u64,
    reps: usize,
    table: &mut Table,
) -> f64 {
    let mut diffs = Vec::with_capacity(reps);
    for rep in 0..reps {
        // Alternate order so slow drift (thermal, background load) cancels.
        let (off, on) = if rep % 2 == 0 {
            let off = measure(false, cost, n);
            let on = measure(true, cost, n);
            (off, on)
        } else {
            let on = measure(true, cost, n);
            let off = measure(false, cost, n);
            (off, on)
        };
        let diff = 1.0 - on / off;
        diffs.push(diff);
        table.row(&[
            &name,
            &(rep + 1),
            &format!("{off:.0}"),
            &format!("{on:.0}"),
            &format!("{:+.2}%", diff * 100.0),
        ]);
    }
    diffs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    diffs[diffs.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Same counts as ext_obs_overhead: 5 reps over 25k messages keeps the
    // smoke gate's spread well inside the 5% budget while the true
    // overhead sits near zero.
    let (reps, n_calibrated, n_null) =
        if smoke { (5, 25_000, 60_000) } else { (7, 50_000, 100_000) };

    experiment_header(
        "ext_forecast_overhead",
        "extension (observability)",
        "dispatch throughput with the saturation forecaster on vs off; gate at 5%",
    );
    if smoke {
        println!("smoke mode: reduced counts and repetitions, CI regression gate\n");
    }

    let calibrated = CostModel::new(
        CostModel::CORRELATION_ID.t_rcv / COST_SCALE,
        CostModel::CORRELATION_ID.t_fltr / COST_SCALE,
        CostModel::CORRELATION_ID.t_tx / COST_SCALE,
    );
    let per_msg = calibrated.processing_time(N_FILTERS as usize, 1);
    println!(
        "calibrated workload: Table I (correlation ID) / {COST_SCALE:.0}, \
         {N_FILTERS} filters -> E[B] = {:.1} us/msg",
        per_msg * 1e6
    );
    println!("null-work workload:  no cost model, dispatch machinery only");
    println!(
        "baseline is metrics + SLO engine in both; sampler at {} ms (production default 1 s)\n",
        SAMPLE_EVERY.as_millis()
    );

    let mut table =
        Table::new(&["workload", "rep", "forecast off (msg/s)", "forecast on (msg/s)", "overhead"]);
    let gated = run_workload("calibrated", Some(calibrated), n_calibrated, reps, &mut table);
    let null = run_workload("null-work", None, n_null, reps, &mut table);
    table.print();

    println!();
    println!(
        "calibrated overhead (median of paired diffs): {:+.2}%  [GATE: budget {:.0}%]",
        gated * 100.0,
        MAX_OVERHEAD * 100.0
    );
    println!("null-work overhead (median of paired diffs): {:+.2}%  [informational]", null * 100.0);

    let pass = gated <= MAX_OVERHEAD;
    let mut report = BenchReport::new("ext_forecast_overhead");
    report
        .flag("smoke", smoke)
        .uint("reps", reps as u64)
        .num("sample_interval_ms", SAMPLE_EVERY.as_secs_f64() * 1e3)
        .num("calibrated_overhead", gated)
        .num("null_work_overhead", null)
        .num("budget", MAX_OVERHEAD)
        .flag("pass", pass);
    report.emit();

    if !pass {
        println!("FAIL: the forecaster exceeds the overhead budget on the calibrated workload");
        std::process::exit(1);
    }
    println!("PASS: the forecaster is within the overhead budget on the calibrated workload");
}
