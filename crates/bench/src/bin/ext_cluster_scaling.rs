//! **Extension** (the paper's announced future work, §V): capacity of a
//! subscriber-partitioned broker *cluster* — `k` brokers, each carrying
//! `m/k` subscribers' filters, publishers multicasting to all `k`.
//!
//! Also demonstrates the work-conservation ablation: under brute-force
//! filtering, a `k`-broker cluster and `k` PSR brokers perform the same
//! total filter work, so their system capacities nearly coincide; the
//! cluster's advantage is structural (publisher-count independence, one
//! logical server), and SSR is recovered as the `k = m` corner case.

use rjms_bench::{experiment_header, BenchReport, Table};
use rjms_core::architecture::{ClusterScenario, DistributedScenario};
use rjms_core::params::CostParams;

fn main() {
    experiment_header(
        "ext_cluster_scaling",
        "extension of §IV-C / §V",
        "subscriber-partitioned cluster capacity vs broker count k",
    );

    let m = 10_000u32;
    let base = ClusterScenario {
        params: CostParams::CORRELATION_ID,
        brokers: 1,
        subscribers: m,
        filters_per_subscriber: 10,
        mean_replication: 1.0,
        rho: 0.9,
    };
    let psr_base = DistributedScenario {
        params: CostParams::CORRELATION_ID,
        publishers: 1,
        subscribers: m,
        filters_per_subscriber: 10,
        mean_replication: 1.0,
        rho: 0.9,
    };
    let ssr = psr_base.ssr_capacity();

    println!("m = {m} subscribers, 10 filters each, E[R] = 1, rho = 0.9\n");
    let mut report = BenchReport::new("ext_cluster_scaling");
    report.uint("subscribers", m as u64).num("ssr_capacity", ssr);
    let mut table = Table::new(&["k brokers", "cluster msgs/s", "PSR(n=k) msgs/s", "SSR msgs/s"]);
    for k in [1u32, 2, 5, 10, 50, 100, 500, 1_000, 10_000] {
        let clus = ClusterScenario { brokers: k, ..base };
        let psr = DistributedScenario { publishers: k, ..psr_base };
        report.num(&format!("cluster_capacity_k{k}"), clus.capacity());
        report.num(&format!("psr_capacity_k{k}"), psr.psr_capacity());
        table.row_strings(vec![
            k.to_string(),
            format!("{:.1}", clus.capacity()),
            format!("{:.1}", psr.psr_capacity()),
            format!("{ssr:.0}"),
        ]);
    }
    table.print();
    report.emit();

    println!();
    println!("observations:");
    println!("  - cluster capacity scales ~linearly in k (filter partitioning),");
    println!("    independently of the number of publishers,");
    println!("  - cluster ≈ PSR at equal broker count: brute-force filter work is");
    println!("    conserved whether messages or filters are partitioned,");
    println!("  - k = m recovers SSR (one broker per subscriber).");

    println!();
    println!("cluster sizing (brokers needed for a target received rate):");
    for target in [100.0, 1_000.0, 5_000.0, 10_000.0] {
        match base.brokers_needed_for(target) {
            Some(k) => println!("  {target:>8.0} msgs/s → k = {k}"),
            None => println!("  {target:>8.0} msgs/s → unreachable (t_rcv floor)"),
        }
    }
}
