//! Reproduces **Fig. 4**: overall message throughput vs the number of
//! installed filters `n_fltr` and the replication grade `R`, for
//! correlation-ID filters — measured (simulated testbed, solid lines in the
//! paper) against the model prediction (dashed lines).

use rjms_bench::{experiment_header, Table};
use rjms_core::model::ServerModel;
use rjms_core::params::CostParams;
use rjms_desim::testbed::{run_measurement, TestbedConfig};
use rjms_queueing::replication::ReplicationModel;

fn main() {
    experiment_header(
        "fig4_throughput",
        "Fig. 4",
        "overall throughput (received + dispatched, msgs/s) vs n_fltr for R in {1,2,5,10,20,40}",
    );

    let truth = CostParams::CORRELATION_ID;
    let cfg = TestbedConfig::paper_methodology(truth.t_rcv, truth.t_fltr, truth.t_tx);

    let mut table = Table::new(&["R", "n_fltr", "measured overall", "model overall", "rel err"]);
    let mut worst_rel = 0.0f64;

    for r in [1u32, 2, 5, 10, 20, 40] {
        for n in [5u32, 10, 20, 40, 80, 160] {
            let n_fltr = n + r;
            let m = run_measurement(&cfg, n_fltr, &ReplicationModel::deterministic(r as f64));
            let model = ServerModel::new(truth, n_fltr);
            let predicted = model.predict_throughput(r as f64);
            let rel =
                (predicted.overall_per_sec() - m.overall_per_sec()).abs() / m.overall_per_sec();
            worst_rel = worst_rel.max(rel);
            table.row_strings(vec![
                r.to_string(),
                n_fltr.to_string(),
                format!("{:.0}", m.overall_per_sec()),
                format!("{:.0}", predicted.overall_per_sec()),
                format!("{:.2}%", rel * 100.0),
            ]);
        }
    }

    table.print();
    println!();
    println!("Worst relative model error over the grid: {:.2}%", worst_rel * 100.0);
    println!("Paper observations reproduced:");
    println!("  - throughput falls as n_fltr grows (linear filter cost),");
    println!("  - larger R raises *overall* throughput at small n_fltr,");
    println!("  - model (dashed) tracks measurement (solid) across the whole grid.");
    println!("Application-property filtering behaves identically with ~50% absolute level;");
    println!("rerun with the APPLICATION_PROPERTY constants to see it.");
}
