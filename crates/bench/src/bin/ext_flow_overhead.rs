//! `ext_flow_overhead` — cost of the admission gate on the publish path.
//!
//! `rjms-flow` puts one decision on every publish: a token-bucket check
//! under a mutex, plus (when metrics are bound) a decision-latency
//! histogram sample. This experiment measures that footprint under the
//! calibrated Table I workload with the gate's budget set *above* the
//! offered load — the production regime the ISSUE gates: at or below
//! `ρ ≈ 0.7` of the budget, admission control must cost less than 5% of
//! throughput and shed nothing.
//!
//! The gate's seed model is the same correlation-ID constants the broker
//! burns, scaled so `λ_max` lands ~1.5× above the broker's own dispatch
//! capacity; the run then reports the *measured* budget utilization and
//! fails if any message was shed or deferred (the pairing would otherwise
//! compare unequal work).
//!
//! Methodology matches the other `ext_*_overhead` gates: fixed message
//! counts, alternating order between repetitions, median of paired
//! relative differences, non-zero exit on a blown budget so CI can run it
//! as a regression gate:
//!
//! ```text
//! cargo run --release -p rjms-bench --bin ext_flow_overhead -- --smoke
//! ```

use rjms_bench::{experiment_header, BenchReport, Table};
use rjms_broker::{
    Broker, BrokerConfig, CostModel, Filter, FlowConfig, Message, MetricsConfig, OverflowPolicy,
};
use rjms_core::CostParams;
use std::time::{Duration, Instant};

/// Acceptance budget: publish throughput with the gate on must stay
/// within this fraction of the gate-off baseline.
const MAX_OVERHEAD: f64 = 0.05;

/// Filters installed on the bench topic (one of them matches).
const N_FILTERS: u32 = 64;

/// Table I correlation-ID constants divided by this factor for the
/// calibrated workload (see `ext_observer_overhead`).
const COST_SCALE: f64 = 32.0;

/// The gate's seed model is the calibrated workload scaled by this
/// factor, so `λ_max ≈ 1.5×` the broker's dispatch capacity and the
/// offered load sits near `ρ ≈ 0.65` of the budget.
const GATE_SCALE: f64 = 0.65;

/// One fixed-count run; returns (received msgs/s, budget utilization).
/// Metrics are on in both variants; `flow` additionally runs every
/// publish through the admission gate.
fn measure(flow: bool, cost: CostModel, gate_params: CostParams, n: u64) -> (f64, f64) {
    let mut config = BrokerConfig::builder()
        .publish_queue_capacity(256)
        .subscriber_queue_capacity(1 << 18)
        .overflow_policy(OverflowPolicy::DropNew)
        .metrics(MetricsConfig::default())
        .cost_model(cost);
    if flow {
        // Long refresh interval: the drift loop must not recalibrate the
        // budget mid-measurement. One producer, so no per-producer cap.
        config = config.flow(
            FlowConfig::default()
                .params(gate_params)
                .filters(N_FILTERS)
                .w99_objective(0.010)
                .producer_share(1.0)
                .refresh_interval_ms(60_000),
        );
    }
    let broker = Broker::start(config.build());
    broker.create_topic("bench").unwrap();
    let _subscribers: Vec<_> = (0..N_FILTERS)
        .map(|i| {
            broker
                .subscription("bench")
                .filter(Filter::correlation_id(&format!("#{i}")).unwrap())
                .open()
                .unwrap()
        })
        .collect();

    let publisher = broker.publisher("bench").unwrap();
    let warmup = n / 10;
    for _ in 0..warmup {
        publisher.publish(Message::builder().correlation_id("#0").build()).unwrap();
    }
    while broker.snapshot().messages.received < warmup {
        std::thread::sleep(Duration::from_millis(1));
    }

    let t0 = Instant::now();
    for _ in 0..n {
        publisher.publish(Message::builder().correlation_id("#0").build()).unwrap();
    }
    while broker.snapshot().messages.received < warmup + n {
        std::thread::yield_now();
    }
    let elapsed = t0.elapsed();
    let rate = n as f64 / elapsed.as_secs_f64();

    let mut utilization = 0.0;
    if let Some(gate) = broker.flow() {
        let snap = gate.snapshot();
        let (deferred, shed): (u64, u64) =
            snap.per_class.iter().fold((0, 0), |(d, s), c| (d + c.deferred, s + c.shed));
        assert_eq!(
            (deferred, shed),
            (0, 0),
            "the gate interfered below budget (deferred {deferred}, shed {shed}): \
             the off/on pairing would compare unequal work"
        );
        utilization = rate / snap.lambda_max;
    }
    broker.shutdown();
    (rate, utilization)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (reps, n) = if smoke { (5, 25_000) } else { (7, 50_000) };

    experiment_header(
        "ext_flow_overhead",
        "extension (flow control)",
        "publish throughput with the admission gate on vs off below budget; gate at 5%",
    );
    if smoke {
        println!("smoke mode: reduced counts and repetitions, CI regression gate\n");
    }

    let calibrated = CostModel::new(
        CostModel::CORRELATION_ID.t_rcv / COST_SCALE,
        CostModel::CORRELATION_ID.t_fltr / COST_SCALE,
        CostModel::CORRELATION_ID.t_tx / COST_SCALE,
    );
    let gate_params = CostParams::new(
        CostParams::CORRELATION_ID.t_rcv / COST_SCALE * GATE_SCALE,
        CostParams::CORRELATION_ID.t_fltr / COST_SCALE * GATE_SCALE,
        CostParams::CORRELATION_ID.t_tx / COST_SCALE * GATE_SCALE,
    );
    let per_msg = calibrated.processing_time(N_FILTERS as usize, 1);
    println!(
        "calibrated workload: Table I (correlation ID) / {COST_SCALE:.0}, \
         {N_FILTERS} filters -> E[B] = {:.1} us/msg",
        per_msg * 1e6
    );
    println!(
        "gate budget: same constants x {GATE_SCALE}, so lambda_max sits ~{:.1}x above capacity\n",
        1.0 / GATE_SCALE
    );

    let mut table =
        Table::new(&["rep", "flow off (msg/s)", "flow on (msg/s)", "overhead", "rho (budget)"]);
    let mut diffs = Vec::with_capacity(reps);
    let mut utilizations = Vec::with_capacity(reps);
    for rep in 0..reps {
        // Alternate order so slow drift (thermal, background load) cancels.
        let (off, on, rho) = if rep % 2 == 0 {
            let (off, _) = measure(false, calibrated, gate_params, n);
            let (on, rho) = measure(true, calibrated, gate_params, n);
            (off, on, rho)
        } else {
            let (on, rho) = measure(true, calibrated, gate_params, n);
            let (off, _) = measure(false, calibrated, gate_params, n);
            (off, on, rho)
        };
        let diff = 1.0 - on / off;
        diffs.push(diff);
        utilizations.push(rho);
        table.row(&[
            &(rep + 1),
            &format!("{off:.0}"),
            &format!("{on:.0}"),
            &format!("{:+.2}%", diff * 100.0),
            &format!("{rho:.2}"),
        ]);
    }
    table.print();
    diffs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let overhead = diffs[diffs.len() / 2];
    let rho_max = utilizations.iter().cloned().fold(0.0, f64::max);

    println!();
    println!(
        "admission-gate overhead (median of paired diffs): {:+.2}%  [GATE: budget {:.0}%]",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );
    println!("peak budget utilization across reps: rho = {rho_max:.2} (regime: rho <= 0.7)");

    let pass = overhead <= MAX_OVERHEAD;
    let mut report = BenchReport::new("ext_flow_overhead");
    report
        .flag("smoke", smoke)
        .uint("reps", reps as u64)
        .uint("messages", n)
        .num("overhead", overhead)
        .num("budget", MAX_OVERHEAD)
        .num("peak_budget_utilization", rho_max)
        .flag("pass", pass);
    report.emit();

    if !pass {
        println!("FAIL: admission gate exceeds the overhead budget below lambda_max");
        std::process::exit(1);
    }
    println!("PASS: admission gate is within the overhead budget below lambda_max");
}
