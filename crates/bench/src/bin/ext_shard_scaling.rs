//! `ext_shard_scaling` — throughput scaling of the sharded dispatcher.
//!
//! The single-dispatcher broker serializes Eq. 1 on one thread: its
//! capacity is `1/E[B]` no matter how many cores the host has. The
//! sharded broker hashes topics onto `N` dispatcher threads, so for a
//! topic-parallel workload the capacity should approach `N/E[B]`. This
//! experiment offers the *same* saturating workload — four topics, 50
//! spinning filter evaluations per message, Table-I-shaped constants —
//! to a 1-shard and a 4-shard broker and gates on the ratio.
//!
//! **Gate (CI):** with 4+ cores, 4 shards must clear at least 2× the
//! single-dispatcher throughput at the same per-message work. On smaller
//! hosts the dispatchers time-slice one core and the ratio is
//! meaningless, so the gate degrades to a report-only run (`pass` stays
//! true, `gated` records false) — the measurement is still emitted for
//! the record.
//!
//! Methodology matches the other `ext_*` gates: fixed message counts,
//! alternating order between repetitions, median ratio, JSON artifact
//! via [`BenchReport`], non-zero exit on a blown gate:
//!
//! ```text
//! cargo run --release -p rjms-bench --bin ext_shard_scaling -- --smoke
//! ```

use rjms_bench::{experiment_header, BenchReport, Table};
use rjms_broker::{shard_of, Broker, BrokerConfig, CostModel, Message, OverflowPolicy};
use std::time::{Duration, Instant};

/// Acceptance gate: 4-shard throughput over 1-shard throughput.
const MIN_RATIO: f64 = 2.0;

/// Cores needed for the hard gate (4 dispatchers must actually overlap).
const GATE_CORES: usize = 4;

/// Topics in the workload, one per shard at `SHARDS = 4`.
const TOPICS: usize = 4;

/// Always-evaluated subscriptions per topic (the `n_fltr` spin count).
const FILTERS: usize = 50;

/// Per-message constants: Table-I correlation-ID shape, inflated so the
/// spin dominates native dispatch overhead (`E[B] ≈ 370 µs` at 50
/// filters — one dispatcher saturates near 2.7k msg/s).
fn cost() -> CostModel {
    CostModel::new(0.85e-6, 7.02e-6, 17.0e-6)
}

fn cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// One saturated fixed-count run; returns received msgs/s.
///
/// The publisher round-robins the four topics and blocks on full shard
/// queues, so every dispatcher's queue stays non-empty — the measured
/// rate is the broker's capacity, not the offered load.
fn measure(shards: usize, n_per_topic: u64) -> f64 {
    let broker = Broker::start(
        BrokerConfig::builder()
            .shards(shards)
            .cost_model(cost())
            .publish_queue_capacity(64)
            .subscriber_queue_capacity(1 << 12)
            .overflow_policy(OverflowPolicy::DropNew)
            .build(),
    );
    // One topic per shard of the 4-shard layout; at shards = 1 the same
    // names all land on the lone dispatcher, keeping the work identical.
    let mut names = vec![None; TOPICS];
    let mut found = 0;
    for trial in 0.. {
        let name = format!("bench-{trial}");
        let shard = shard_of(&name, TOPICS);
        if names[shard].is_none() {
            names[shard] = Some(name);
            found += 1;
            if found == TOPICS {
                break;
            }
        }
    }
    let topics: Vec<String> = names.into_iter().map(Option::unwrap).collect();
    let mut subscribers = Vec::new();
    let mut publishers = Vec::new();
    for topic in &topics {
        broker.create_topic(topic).unwrap();
        for _ in 0..FILTERS {
            subscribers.push(broker.subscription(topic).open().unwrap());
        }
        publishers.push(broker.publisher(topic).unwrap());
    }

    let total = n_per_topic * TOPICS as u64;
    let warmup = total / 10;
    for i in 0..warmup {
        publishers[i as usize % TOPICS].publish(Message::builder().build()).unwrap();
    }
    while broker.snapshot().messages.received < warmup {
        std::thread::sleep(Duration::from_millis(1));
    }

    let t0 = Instant::now();
    for i in 0..total {
        publishers[i as usize % TOPICS].publish(Message::builder().build()).unwrap();
    }
    while broker.snapshot().messages.received < warmup + total {
        std::thread::yield_now();
    }
    let rate = total as f64 / t0.elapsed().as_secs_f64();
    broker.shutdown();
    rate
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (reps, n_per_topic) = if smoke { (3, 400) } else { (5, 1_000) };
    let gated = cores() >= GATE_CORES;

    experiment_header(
        "ext_shard_scaling",
        "extension (sharded dispatch)",
        "saturated throughput, 4 dispatcher shards vs 1, same per-message work; gate at 2x",
    );
    if smoke {
        println!("smoke mode: reduced counts and repetitions, CI regression gate\n");
    }
    println!(
        "workload: {TOPICS} topics x {FILTERS} filters, E[B] = {:.0} us/msg; host cores: {}",
        cost().processing_time(FILTERS, 1) * 1e6,
        cores(),
    );
    if !gated {
        println!("fewer than {GATE_CORES} cores: dispatchers time-slice, ratio is report-only\n");
    } else {
        println!();
    }

    let mut table = Table::new(&["rep", "1 shard (msg/s)", "4 shards (msg/s)", "ratio"]);
    let mut ratios = Vec::with_capacity(reps);
    for rep in 0..reps {
        // Alternate order so slow drift (thermal, background load) cancels.
        let (single, sharded) = if rep % 2 == 0 {
            let single = measure(1, n_per_topic);
            let sharded = measure(4, n_per_topic);
            (single, sharded)
        } else {
            let sharded = measure(4, n_per_topic);
            let single = measure(1, n_per_topic);
            (single, sharded)
        };
        let ratio = sharded / single;
        ratios.push(ratio);
        table.row(&[
            &(rep + 1),
            &format!("{single:.0}"),
            &format!("{sharded:.0}"),
            &format!("{ratio:.2}x"),
        ]);
    }
    table.print();
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let ratio = ratios[ratios.len() / 2];

    println!();
    println!(
        "shard scaling (median ratio): {ratio:.2}x  [GATE: >= {MIN_RATIO:.1}x on {GATE_CORES}+ cores]"
    );

    let pass = !gated || ratio >= MIN_RATIO;
    let mut report = BenchReport::new("ext_shard_scaling");
    report
        .flag("smoke", smoke)
        .flag("gated", gated)
        .uint("cores", cores() as u64)
        .uint("reps", reps as u64)
        .uint("messages_per_topic", n_per_topic)
        .num("ratio", ratio)
        .num("gate", MIN_RATIO)
        .flag("pass", pass);
    report.emit();

    if !pass {
        println!("FAIL: sharded dispatch does not scale throughput on this host");
        std::process::exit(1);
    }
    println!("PASS: sharded dispatch meets the scaling gate");
}
