//! Reproduces **Fig. 10**: the normalized mean waiting time `E[W]/E[B]`
//! depending on the server utilization ρ, for service-time coefficients of
//! variation `c_var[B] ∈ {0, 0.2, 0.4, 0.65}`. By Pollaczek–Khinchine,
//! `E[W]/E[B] = ρ(1 + c_var²)/(2(1−ρ))` — the diagram is a lookup table
//! valid for any application scenario.

use rjms_bench::{experiment_header, Table};
use rjms_queueing::mg1::Mg1;
use rjms_queueing::moments::Moments3;

/// Service-time moments with E[B] = 1 and the requested cvar; the third
/// moment is irrelevant for E[W].
fn unit_service(cvar: f64) -> Moments3 {
    let m2 = 1.0 + cvar * cvar;
    Moments3::new(1.0, m2, m2 * m2) // any consistent third moment
}

fn main() {
    experiment_header(
        "fig10_mean_waiting",
        "Fig. 10",
        "normalized mean waiting time E[W]/E[B] vs utilization rho",
    );

    let cvars = [0.0, 0.2, 0.4, 0.65];
    let rhos: Vec<f64> = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99].to_vec();

    let mut table = Table::new(&["rho", "cvar=0", "cvar=0.2", "cvar=0.4", "cvar=0.65"]);
    for &rho in &rhos {
        let mut cells = vec![format!("{rho:.2}")];
        for &c in &cvars {
            let q = Mg1::with_utilization(rho, unit_service(c)).expect("stable");
            cells.push(format!("{:.3}", q.mean_waiting_time()));
        }
        table.row_strings(cells);
    }
    table.print();

    println!();
    println!("Closed form: E[W]/E[B] = rho·(1 + c_var²)/(2(1 − rho)).");
    println!("Paper observations reproduced:");
    println!("  - the utilization dominates: the c_var spread is at most a factor");
    println!("    (1 + 0.65²)/1 ≈ 1.42 while rho spans orders of magnitude,");
    println!("  - at rho = 0.9 the mean wait is ≈ 4.5–6.4 service times.");
}
