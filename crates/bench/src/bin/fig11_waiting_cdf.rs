//! Reproduces **Fig. 11**: the complementary distribution function
//! `P(W > t)` of the message waiting time at ρ = 0.9 for service-time
//! coefficients of variation `c_var[B] ∈ {0, 0.2, 0.4}`, on a normalized
//! x-axis `t/E[B]`.
//!
//! The paper's point is twofold: (1) larger `c_var[B]` shifts the
//! distribution right, and (2) the *shape* of the replication-grade
//! distribution barely matters beyond its first two moments — the curves
//! for different R-models with identical `(E[B], c_var[B])` coincide. We
//! show (2) by recomputing each curve with the third moment halved and
//! doubled (bracketing any plausible family, incl. the binomial where it is
//! feasible), and validate the Gamma approximation against discrete-event
//! simulation.

use rjms_bench::{experiment_header, Table};
use rjms_core::params::CostParams;
use rjms_desim::mg1sim::{simulate_lindley, Mg1SimConfig};
use rjms_desim::random::ReplicationService;
use rjms_queueing::mg1::Mg1;
use rjms_queueing::moments::Moments3;
use rjms_queueing::replication::ReplicationModel;
use rjms_queueing::service::ServiceTime;

const N_FLTR: u32 = 100;
const TARGET_EB: f64 = 1.5e-3;
const RHO: f64 = 0.9;

/// Builds the service-time moments for a target cvar with a given
/// third-moment scale applied to the replication grade's Bernoulli-family
/// third moment.
fn service_moments(cvar: f64, m3_scale: f64) -> Moments3 {
    let params = CostParams::CORRELATION_ID;
    let d = params.deterministic_part(N_FLTR);
    if cvar == 0.0 {
        let r = (TARGET_EB - d) / params.t_tx;
        return Moments3::constant(r).scaled(params.t_tx).shifted(d);
    }
    let (m1, m2) = ServiceTime::replication_moments_for_target(d, params.t_tx, TARGET_EB, cvar)
        .expect("target reachable");
    // Scaled-Bernoulli family third moment (Eq. 15), scaled to bracket
    // other families.
    let m3 = m3_scale * m2 * m2 / m1;
    Moments3::new(m1, m2, m3).scaled(params.t_tx).shifted(d)
}

fn main() {
    experiment_header(
        "fig11_waiting_cdf",
        "Fig. 11",
        "P(W > t) at rho = 0.9 vs normalized time t/E[B], c_var[B] in {0, 0.2, 0.4}",
    );

    let t_grid: Vec<f64> = (0..=10).map(|i| i as f64 * 5.0).collect();

    let mut table = Table::new(&[
        "t/E[B]",
        "cvar=0",
        "cvar=0.2",
        "cvar=0.2 (m3/2)",
        "cvar=0.2 (m3*2)",
        "cvar=0.4",
        "cvar=0.4 sim",
    ]);

    // Analytic distributions.
    let dists: Vec<_> = [(0.0, 1.0), (0.2, 1.0), (0.2, 0.5), (0.2, 2.0), (0.4, 1.0)]
        .iter()
        .map(|&(c, s)| {
            Mg1::with_utilization(RHO, service_moments(c, s))
                .expect("stable")
                .waiting_time_distribution()
        })
        .collect();

    // DES validation for cvar = 0.4 with a genuine scaled-Bernoulli R.
    let params = CostParams::CORRELATION_ID;
    let d = params.deterministic_part(N_FLTR);
    let (m1, m2) =
        ServiceTime::replication_moments_for_target(d, params.t_tx, TARGET_EB, 0.4).unwrap();
    let bern = ReplicationModel::scaled_bernoulli_from_moments(m1, m2).unwrap();
    // Round to an integer-support Bernoulli for sampling; the tiny moment
    // shift is irrelevant at table precision.
    let bern_int = match bern {
        ReplicationModel::ScaledBernoulli { n_fltr, p_match } => {
            ReplicationModel::scaled_bernoulli(n_fltr.round(), p_match)
        }
        other => other,
    };
    let service = ReplicationService { deterministic: d, t_tx: params.t_tx, replication: bern_int };
    let e_b = d + bern_int.moments().m1 * params.t_tx;
    let sim = simulate_lindley(
        &Mg1SimConfig { arrival_rate: RHO / e_b, samples: 400_000, warmup: 40_000, seed: 11 },
        &service,
    );
    let mut samples = sim.waiting_samples;

    for &mult in &t_grid {
        let t = mult * TARGET_EB;
        let mut cells = vec![format!("{mult:.0}")];
        for dist in &dists {
            cells.push(format!("{:.4}", dist.ccdf(t)));
        }
        cells.push(format!("{:.4}", samples.ccdf(mult * e_b)));
        table.row_strings(cells);
    }
    table.print();

    println!();
    println!("Paper observations reproduced:");
    println!("  - larger c_var[B] shifts P(W > t) toward larger waiting times,");
    println!("  - halving/doubling the third moment (bracketing Bernoulli vs binomial");
    println!("    vs deterministic families) leaves the curve nearly unchanged →");
    println!("    the first two moments of B suffice, as the paper concludes,");
    println!("  - the Gamma approximation (Eq. 20) tracks the simulated M/G/1 queue.");
    println!();
    println!("note: at this operating point the binomial family cannot reach");
    println!("c_var[B] = 0.2 (it would need Var[R] > E[R]); its feasible region lies");
    println!("below the plateau of Fig. 9, where its curve coincides with the");
    println!("Bernoulli curve of equal first two moments — the m3-bracketing columns");
    println!("make that argument quantitative.");
}
