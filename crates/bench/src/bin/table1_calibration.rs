//! Reproduces **Table I**: the fitted per-message cost constants.
//!
//! Runs the paper's full measurement grid (§III-B.2) on the simulated
//! testbed — whose ground truth is the Table I constants plus 2% jitter —
//! and fits `(t_rcv, t_fltr, t_tx)` by least squares, exactly how the paper
//! derived the table from its FioranoMQ measurements. The fit must recover
//! the ground truth; residual diagnostics quantify how well.

use rjms_bench::{experiment_header, Table};
use rjms_core::calibrate::{fit_cost_params, Observation};
use rjms_core::params::CostParams;
use rjms_desim::testbed::{run_paper_grid, TestbedConfig};

fn main() {
    experiment_header(
        "table1_calibration",
        "Table I",
        "fit (t_rcv, t_fltr, t_tx) from simulated saturated-throughput measurements",
    );

    let mut table = Table::new(&[
        "overhead type",
        "t_rcv (s)",
        "t_fltr (s)",
        "t_tx (s)",
        "R^2",
        "rms resid (s)",
    ]);

    for (label, truth) in [
        ("corr. ID filtering", CostParams::CORRELATION_ID),
        ("app. prop. filtering", CostParams::APPLICATION_PROPERTY),
    ] {
        let cfg = TestbedConfig::paper_methodology(truth.t_rcv, truth.t_fltr, truth.t_tx);
        let grid = run_paper_grid(&cfg);
        let obs: Vec<Observation> = grid
            .iter()
            .map(|m| Observation {
                n_fltr: m.n_fltr,
                mean_replication: m.mean_replication,
                received_per_sec: m.received_per_sec,
            })
            .collect();
        let cal = fit_cost_params(&obs).expect("calibration must succeed on the paper grid");
        table.row_strings(vec![
            format!("{label} (fitted)"),
            format!("{:.3e}", cal.params.t_rcv),
            format!("{:.3e}", cal.params.t_fltr),
            format!("{:.3e}", cal.params.t_tx),
            format!("{:.6}", cal.r_squared),
            format!("{:.2e}", cal.residual_rms),
        ]);
        table.row_strings(vec![
            format!("{label} (paper)"),
            format!("{:.3e}", truth.t_rcv),
            format!("{:.3e}", truth.t_fltr),
            format!("{:.3e}", truth.t_tx),
            "-".to_owned(),
            "-".to_owned(),
        ]);
    }

    table.print();
    println!();
    println!(
        "Paper Table I: corr-ID (8.52e-7, 7.02e-6, 1.70e-5); app-prop (4.10e-6, 1.46e-5, 1.62e-5)."
    );
    println!("The fit recovers the slopes (t_fltr, t_tx) to within the injected 2% noise;");
    println!("the tiny intercept t_rcv is the least identified, as in any linear fit.");
}
