//! **Ablation**: identical vs distinct filters (paper §II-B / §III-B.2).
//!
//! The paper measured FioranoMQ with `n` filters all looking for the *same*
//! value and with `n` filters looking for *different* values, found the
//! same throughput, and concluded that FioranoMQ implements no
//! identical-filter optimization [15]. Our broker scans subscriptions
//! brute-force by construction; this ablation runs the paper's check
//! against the real threaded broker to demonstrate the same behaviour (and
//! to document what an optimizing broker would change).

use rjms_bench::{experiment_header, Table};
use rjms_broker::{Broker, BrokerConfig, CostModel, Filter, Message, ThroughputProbe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Measures saturated received throughput with the given subscriber
/// filters; one extra matching subscriber keeps the replication grade 1.
fn measure(filters: Vec<Filter>) -> f64 {
    let broker = Broker::start(
        BrokerConfig::builder()
            .publish_queue_capacity(64)
            .subscriber_queue_capacity(1 << 15)
            .cost_model(CostModel::CORRELATION_ID)
            .build(),
    );
    broker.create_topic("t").unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();

    let matching =
        broker.subscription("t").filter(Filter::correlation_id("#0").unwrap()).open().unwrap();
    {
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let _ = matching.receive_timeout(Duration::from_millis(10));
            }
        }));
    }
    let _subs: Vec<_> =
        filters.into_iter().map(|f| broker.subscription("t").filter(f).open().unwrap()).collect();

    for _ in 0..4 {
        let publisher = broker.publisher("t").unwrap();
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if publisher.publish(Message::builder().correlation_id("#0").build()).is_err() {
                    break;
                }
            }
        }));
    }

    std::thread::sleep(Duration::from_millis(200));
    let probe = ThroughputProbe::begin(&broker);
    std::thread::sleep(Duration::from_millis(1500));
    let throughput = probe.end(&broker);
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        let _ = w.join();
    }
    broker.shutdown();
    throughput.received_per_sec
}

fn main() {
    experiment_header(
        "ablation_filter_identity",
        "§II-B / §III-B.2 observation",
        "n identical vs n distinct non-matching filters: same throughput?",
    );

    let mut table = Table::new(&["n filters", "identical msgs/s", "distinct msgs/s", "ratio"]);
    for n in [8usize, 32, 96] {
        let identical = measure((0..n).map(|_| Filter::correlation_id("#1").unwrap()).collect());
        let distinct = measure(
            (0..n).map(|i| Filter::correlation_id(&format!("#{}", i + 1)).unwrap()).collect(),
        );
        table.row_strings(vec![
            n.to_string(),
            format!("{identical:.0}"),
            format!("{distinct:.0}"),
            format!("{:.3}", identical / distinct),
        ]);
    }
    table.print();

    println!();
    println!("ratio ≈ 1: like FioranoMQ, this broker evaluates every subscription's");
    println!("filter independently — installing the *same* filter n times costs as");
    println!("much as n different filters. A broker with filter-identity hashing or");
    println!("predicate indexing [15] would show ratios ≫ 1 on the identical column;");
    println!("the paper's linear n_fltr·t_fltr model only holds for brute-force scans.");
}
