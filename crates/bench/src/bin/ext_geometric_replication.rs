//! **Extension** (paper §V future work: "validate our model for ... other
//! distributions"): waiting times under an *over-dispersed* geometric
//! replication grade.
//!
//! The paper's three families top out at `Var[R] = E[R]²·(1−p)/p`
//! (Bernoulli) and `Var[R] < E[R]` (binomial). The geometric family has
//! `Var[R] = E[R](1+E[R])` — always over-dispersed — and models bursty
//! interest (most messages match few subscribers, a long tail matches
//! many). This experiment runs the Fig. 10–12 pipeline under geometric `R`
//! and validates the analytics against simulation.

use rjms_bench::{experiment_header, BenchReport, Table};
use rjms_core::model::ServerModel;
use rjms_core::params::CostParams;
use rjms_core::waiting::WaitingTimeAnalysis;
use rjms_desim::mg1sim::{simulate_lindley, Mg1SimConfig};
use rjms_desim::random::ReplicationService;
use rjms_queueing::replication::ReplicationModel;

fn main() {
    experiment_header(
        "ext_geometric_replication",
        "extension of §IV-B (future work: other R distributions)",
        "waiting time under over-dispersed geometric replication, analytic vs simulated",
    );

    let params = CostParams::CORRELATION_ID;
    let n_fltr = 100u32;
    let model = ServerModel::new(params, n_fltr);

    let mut table =
        Table::new(&["E[R]", "cvar[B]", "rho", "E[W] analytic", "E[W] sim", "Q99.99/E[B]"]);

    let mut artifact = BenchReport::new("ext_geometric_replication");
    for &mean_r in &[2.0, 10.0, 30.0] {
        let replication = ReplicationModel::geometric(mean_r);
        for &rho in &[0.7, 0.9] {
            let analysis =
                WaitingTimeAnalysis::for_model(&model, replication, rho).expect("stable");
            let report = analysis.report();
            let sampler = ReplicationService {
                deterministic: params.deterministic_part(n_fltr),
                t_tx: params.t_tx,
                replication,
            };
            let sim = simulate_lindley(
                &Mg1SimConfig {
                    arrival_rate: report.arrival_rate,
                    samples: 300_000,
                    warmup: 30_000,
                    seed: 77,
                },
                &sampler,
            );
            let tag = format!("r{mean_r:.0}_rho{}", (rho * 100.0) as u32);
            artifact.num(&format!("ew_analytic_ms_{tag}"), report.mean_waiting_time * 1e3);
            artifact.num(&format!("ew_sim_ms_{tag}"), sim.waiting.mean() * 1e3);
            artifact.num(&format!("cvar_{tag}"), report.service_cvar);
            table.row_strings(vec![
                format!("{mean_r:.0}"),
                format!("{:.3}", report.service_cvar),
                format!("{rho:.1}"),
                format!("{:.3}ms", report.mean_waiting_time * 1e3),
                format!("{:.3}ms", sim.waiting.mean() * 1e3),
                format!("{:.1}", report.normalized_q9999()),
            ]);
        }
    }
    table.print();
    artifact.emit();

    println!();
    println!("findings:");
    println!("  - the geometric family pushes c_var[B] beyond the Bernoulli ceiling");
    println!("    at equal E[R] when replication dominates the service time,");
    println!("  - the Pollaczek-Khinchine/Gamma pipeline needs no modification: the");
    println!("    analytic means match simulation, confirming the paper's conclusion");
    println!("    that only the first moments of R matter — for *any* family,");
    println!("  - the 99.99% quantile grows with over-dispersion but the utilization");
    println!("    remains the dominant factor, extending Fig. 12's message.");
}
