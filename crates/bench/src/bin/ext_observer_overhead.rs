//! `ext_observer_overhead` — cost of the live observability layer.
//!
//! The metrics layer (per-message waiting/service/sojourn histograms plus
//! the sampled Eq. 1 stage decomposition) sits directly on the dispatcher
//! hot path, so its cost is itself a `t_*` term in the paper's service-time
//! model. This experiment measures it on two workloads:
//!
//! * **calibrated** — 64 correlation-ID filters with the paper's Table I
//!   cost constants (scaled 1/32 to keep bench time reasonable on modern
//!   hardware), i.e. the operating regime the model describes, with
//!   per-message service in the tens of microseconds. This workload is the
//!   **regression gate**: metrics-on throughput must stay within 5% of
//!   metrics-off.
//! * **null-work** — the same topology with no cost model, so a message
//!   costs only the dispatch machinery itself (~2 µs). This is an
//!   adversarial microbenchmark: the two instrumentation clock reads per
//!   message (publish stamp + fan-out end; the dispatch start reuses the
//!   previous end) are a fixed ~100-150 ns, which is deliberately made
//!   maximally visible. Reported for transparency, not gated.
//!
//! Methodology: each measurement publishes a fixed message count from the
//! bench thread and times until the broker has received all of them — a
//! deterministic amount of work, unlike duration-window sampling, which on
//! a single-CPU host is dominated by scheduler noise. The two variants
//! alternate order between repetitions and the estimate is the median of
//! the per-repetition paired relative differences.
//!
//! The process exits non-zero if the calibrated-workload overhead exceeds
//! the acceptance budget (5%), which lets CI run it as a regression gate:
//!
//! ```text
//! cargo run --release -p rjms-bench --bin ext_observer_overhead -- --smoke
//! ```
//!
//! `--smoke` shrinks the message counts and repetitions for CI; without it
//! the counts are large enough for stable numbers on an idle machine.

use rjms_bench::{experiment_header, BenchReport, Table};
use rjms_broker::{
    Broker, BrokerConfig, CostModel, Filter, Message, MetricsConfig, OverflowPolicy,
};
use std::time::{Duration, Instant};

/// Acceptance budget on the calibrated workload: metrics-enabled dispatch
/// must stay within this fraction of the disabled baseline.
const MAX_OVERHEAD: f64 = 0.05;

/// Filters installed on the bench topic (one of them matches).
const N_FILTERS: u32 = 64;

/// Table I correlation-ID constants divided by this factor for the
/// calibrated workload (the unscaled constants give ~2k msg/s with 64
/// filters, which would make the bench take minutes).
const COST_SCALE: f64 = 32.0;

/// One fixed-count run; returns received msgs/s.
///
/// The publisher runs on the bench thread: with a bounded publish queue it
/// is back-pressured by the dispatcher, so elapsed time is the dispatcher's
/// per-message service time once the queue fills. No drain threads run —
/// subscriber queues are sized to hold the full count and overflow drops
/// new copies, so throughput never depends on consumer scheduling.
fn measure(metrics: Option<MetricsConfig>, cost: Option<CostModel>, n: u64) -> f64 {
    let mut config = BrokerConfig::builder()
        .publish_queue_capacity(256)
        .subscriber_queue_capacity(1 << 18)
        .overflow_policy(OverflowPolicy::DropNew);
    if let Some(m) = metrics {
        config = config.metrics(m);
    }
    if let Some(c) = cost {
        config = config.cost_model(c);
    }
    let broker = Broker::start(config.build());
    broker.create_topic("bench").unwrap();

    // One matching subscriber plus (N_FILTERS - 1) non-matching ones: the
    // dispatcher scans all 64 filters per message and copies once.
    let _subscribers: Vec<_> = (0..N_FILTERS)
        .map(|i| {
            broker
                .subscription("bench")
                .filter(Filter::correlation_id(&format!("#{i}")).unwrap())
                .open()
                .unwrap()
        })
        .collect();

    let publisher = broker.publisher("bench").unwrap();
    let warmup = n / 10;
    for _ in 0..warmup {
        publisher.publish(Message::builder().correlation_id("#0").build()).unwrap();
    }
    while broker.snapshot().messages.received < warmup {
        std::thread::sleep(Duration::from_millis(1));
    }

    let t0 = Instant::now();
    for _ in 0..n {
        publisher.publish(Message::builder().correlation_id("#0").build()).unwrap();
    }
    while broker.snapshot().messages.received < warmup + n {
        std::thread::yield_now();
    }
    let elapsed = t0.elapsed();
    broker.shutdown();
    n as f64 / elapsed.as_secs_f64()
}

/// Paired off/on measurements for one workload; returns the median of the
/// per-repetition relative differences (positive = metrics cost).
fn run_workload(
    name: &str,
    cost: Option<CostModel>,
    n: u64,
    reps: usize,
    table: &mut Table,
) -> f64 {
    let mut diffs = Vec::with_capacity(reps);
    for rep in 0..reps {
        // Alternate order so slow drift (thermal, background load) cancels.
        let (off, on) = if rep % 2 == 0 {
            let off = measure(None, cost, n);
            let on = measure(Some(MetricsConfig::default()), cost, n);
            (off, on)
        } else {
            let on = measure(Some(MetricsConfig::default()), cost, n);
            let off = measure(None, cost, n);
            (off, on)
        };
        let diff = 1.0 - on / off;
        diffs.push(diff);
        table.row(&[
            &name,
            &(rep + 1),
            &format!("{off:.0}"),
            &format!("{on:.0}"),
            &format!("{:+.2}%", diff * 100.0),
        ]);
    }
    diffs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    diffs[diffs.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (reps, n_calibrated, n_null) =
        if smoke { (3, 12_000, 40_000) } else { (7, 50_000, 100_000) };

    experiment_header(
        "ext_observer_overhead",
        "extension (observability)",
        "dispatch throughput with the metrics layer on vs off; gate at 5%",
    );
    if smoke {
        println!("smoke mode: reduced counts and repetitions, CI regression gate\n");
    }

    let calibrated = CostModel::new(
        CostModel::CORRELATION_ID.t_rcv / COST_SCALE,
        CostModel::CORRELATION_ID.t_fltr / COST_SCALE,
        CostModel::CORRELATION_ID.t_tx / COST_SCALE,
    );
    let per_msg = calibrated.processing_time(N_FILTERS as usize, 1);
    println!(
        "calibrated workload: Table I (correlation ID) / {COST_SCALE:.0}, \
         {N_FILTERS} filters -> E[B] = {:.1} us/msg",
        per_msg * 1e6
    );
    println!("null-work workload:  no cost model, dispatch machinery only\n");

    let mut table =
        Table::new(&["workload", "rep", "metrics off (msg/s)", "metrics on (msg/s)", "overhead"]);
    let gated = run_workload("calibrated", Some(calibrated), n_calibrated, reps, &mut table);
    let null = run_workload("null-work", None, n_null, reps, &mut table);
    table.print();

    println!();
    println!(
        "calibrated overhead (median of paired diffs): {:+.2}%  [GATE: budget {:.0}%]",
        gated * 100.0,
        MAX_OVERHEAD * 100.0
    );
    println!("null-work overhead (median of paired diffs): {:+.2}%  [informational]", null * 100.0);

    let pass = gated <= MAX_OVERHEAD;
    let mut report = BenchReport::new("ext_observer_overhead");
    report
        .flag("smoke", smoke)
        .uint("reps", reps as u64)
        .num("calibrated_overhead", gated)
        .num("null_work_overhead", null)
        .num("budget", MAX_OVERHEAD)
        .flag("pass", pass);
    report.emit();

    if !pass {
        println!("FAIL: metrics layer exceeds the overhead budget on the calibrated workload");
        std::process::exit(1);
    }
    println!("PASS: metrics layer is within the overhead budget on the calibrated workload");
}
