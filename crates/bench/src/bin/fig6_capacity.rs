//! Reproduces **Fig. 6**: the server capacity `λ_max = ρ/E[B]` (Eq. 2) at a
//! CPU budget of ρ = 0.9, for correlation-ID filtering, depending on
//! `n_fltr` and `E[R]` — including the equivalence annotations (`E[R] = 10`
//! without filters costs as much as 22 filters at `E[R] = 1`, and
//! `E[R] = 100` as much as 240).

use rjms_bench::{experiment_header, Table};
use rjms_core::capacity::{equivalent_filter_count, server_capacity};
use rjms_core::params::CostParams;

fn main() {
    experiment_header(
        "fig6_capacity",
        "Fig. 6",
        "server capacity (received msgs/s) at rho = 0.9 vs n_fltr for E[R] in {1, 10, 100}",
    );

    let params = CostParams::CORRELATION_ID;
    let rho = 0.9;
    let sweep: Vec<u32> =
        [0u32, 1, 2, 5, 10, 22, 50, 100, 240, 500, 1_000, 2_000, 5_000, 10_000].to_vec();

    let mut table = Table::new(&["n_fltr", "E[R]=1", "E[R]=10", "E[R]=100"]);
    for &n in &sweep {
        table.row_strings(vec![
            n.to_string(),
            format!("{:.1}", server_capacity(&params, n, 1.0, rho)),
            format!("{:.1}", server_capacity(&params, n, 10.0, rho)),
            format!("{:.1}", server_capacity(&params, n, 100.0, rho)),
        ]);
    }
    table.print();

    println!();
    let eq10 = equivalent_filter_count(&params, 10.0, 1.0);
    let eq100 = equivalent_filter_count(&params, 100.0, 1.0);
    println!("Equivalence annotations (paper: 22 and 240 filters):");
    println!("  E[R] = 10 without extra filters ≙ E[R] = 1 with {eq10:.1} filters");
    println!("  E[R] = 100 without extra filters ≙ E[R] = 1 with {eq100:.1} filters");

    // Verify numerically: capacities coincide at the computed equivalents.
    let cap_r10 = server_capacity(&params, 0, 10.0, rho);
    let cap_eq10 = server_capacity(&params, eq10.round() as u32, 1.0, rho);
    println!(
        "  check: capacity(E[R]=10, n=0) = {cap_r10:.1} vs capacity(E[R]=1, n={:.0}) = {cap_eq10:.1}",
        eq10.round()
    );
}
