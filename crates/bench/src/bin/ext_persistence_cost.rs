//! **Extension** (beyond the paper's in-memory measurements): the cost of
//! persistent messaging as an extra additive service-time term.
//!
//! The paper's Eq. 1 model `E[B] = t_rcv + n_fltr·t_fltr + E[R]·t_tx` was
//! fitted to a JMS server whose persistence settings were fixed. This
//! experiment measures the per-message write-ahead journal cost `t_store`
//! of `rjms-journal` under each fsync policy, extends the model to
//! `E[B] = t_rcv + n_fltr·t_fltr + E[R]·t_tx + t_store`, and reports how
//! server capacity (Eq. 2) and the mean waiting time (Fig. 10 pipeline)
//! move as durability is tightened from `Never` to `Always`.

use rjms_bench::{experiment_header, BenchReport, Table};
use rjms_broker::persist::encode_publish;
use rjms_broker::Message;
use rjms_core::capacity::server_capacity;
use rjms_core::model::ServerModel;
use rjms_core::params::CostParams;
use rjms_core::waiting::WaitingTimeAnalysis;
use rjms_journal::{scratch_dir, FsyncPolicy, Journal, JournalConfig};
use rjms_queueing::replication::ReplicationModel;
use std::time::{Duration, Instant};

/// Measured storage cost for one fsync policy.
struct StoreCost {
    policy: FsyncPolicy,
    /// Mean wall-clock seconds per journal append (including its share of
    /// fsyncs), i.e. the measured `t_store`.
    t_store: f64,
    fsyncs_per_msg: f64,
    frame_bytes: usize,
}

/// Appends `n` copies of a representative publish record and returns the
/// mean per-append wall-clock cost.
fn measure(policy: FsyncPolicy, n: u64) -> StoreCost {
    let payload = encode_publish(
        "stocks",
        &Message::builder()
            .correlation_id("order-4711")
            .property("symbol", "ACME")
            .property("price", 42.5)
            .body(vec![0xA5; 64])
            .build(),
    );
    let dir = scratch_dir("ext-persistence");
    let config = JournalConfig::new(&dir).fsync(policy);
    let (mut journal, _) = Journal::open(config).expect("open scratch journal");

    // Warm up the file and the allocator outside the timed window.
    for _ in 0..64 {
        journal.append(&payload).expect("warmup append");
    }
    journal.sync().expect("warmup sync");
    let base = journal.stats();

    let start = Instant::now();
    for _ in 0..n {
        journal.append(&payload).expect("timed append");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = journal.stats();
    drop(journal);
    let _ = std::fs::remove_dir_all(&dir);

    StoreCost {
        policy,
        t_store: elapsed / n as f64,
        fsyncs_per_msg: (stats.fsyncs - base.fsyncs) as f64 / n as f64,
        frame_bytes: payload.len(),
    }
}

fn main() {
    experiment_header(
        "ext_persistence_cost",
        "extension of Eq. 1/Eq. 2 (persistent messaging)",
        "measured journal t_store per fsync policy and its capacity/waiting-time impact",
    );

    // Fewer timed appends where every append pays a disk round-trip.
    let sweep: &[(FsyncPolicy, u64)] = &[
        (FsyncPolicy::Never, 50_000),
        (FsyncPolicy::Interval(Duration::from_millis(1)), 20_000),
        (FsyncPolicy::EveryN(64), 20_000),
        (FsyncPolicy::EveryN(8), 5_000),
        (FsyncPolicy::Always, 1_000),
    ];
    let costs: Vec<StoreCost> = sweep.iter().map(|&(policy, n)| measure(policy, n)).collect();

    // Model operating point: the paper's running example — correlation-ID
    // filtering, n_fltr = 100 filters, E[R] = 10 copies (binomial matching,
    // p = 0.1), utilization budget rho = 0.9.
    let n_fltr = 100u32;
    let replication = ReplicationModel::binomial(n_fltr as f64, 0.1);
    let mean_r = replication.mean();
    let rho = 0.9;
    let memory_only = CostParams::CORRELATION_ID;
    let base_capacity = server_capacity(&memory_only, n_fltr, mean_r, rho);

    let mut table = Table::new(&[
        "fsync policy",
        "t_store",
        "fsync/msg",
        "E[B]",
        "lambda_max",
        "capacity vs mem",
        "E[W] rho=0.9",
    ]);
    let mut artifact = BenchReport::new("ext_persistence_cost");
    artifact.num("memory_only_capacity", base_capacity);
    for cost in &costs {
        let params = memory_only.with_t_store(cost.t_store);
        let capacity = server_capacity(&params, n_fltr, mean_r, rho);
        let analysis =
            WaitingTimeAnalysis::for_model(&ServerModel::new(params, n_fltr), replication, rho)
                .expect("stable at rho < 1");
        let report = analysis.report();
        let tag: String = cost
            .policy
            .label()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        artifact.num(&format!("t_store_us_{tag}"), cost.t_store * 1e6);
        artifact.num(&format!("capacity_ratio_{tag}"), capacity / base_capacity);
        table.row_strings(vec![
            cost.policy.label(),
            format!("{:.2}us", cost.t_store * 1e6),
            format!("{:.3}", cost.fsyncs_per_msg),
            format!("{:.1}us", params.mean_service_time(n_fltr, mean_r) * 1e6),
            format!("{capacity:.0}/s"),
            format!("{:.1}%", 100.0 * capacity / base_capacity),
            format!("{:.3}ms", report.mean_waiting_time * 1e3),
        ]);
    }
    table.print();
    artifact.emit();

    println!();
    println!(
        "operating point: correlation-ID Table I params, n_fltr={n_fltr}, \
         E[R]={mean_r:.0}, {}-byte journal frames, memory-only capacity \
         {base_capacity:.0} msgs/s",
        costs[0].frame_bytes,
    );
    println!();
    println!("findings:");
    println!("  - t_store is an additive term in E[B], so its capacity impact shrinks");
    println!("    as n_fltr or E[R] grow: at the paper's operating point the service");
    println!("    time is dominated by filtering + replication, and only fsync-heavy");
    println!("    policies move the capacity curve materially,");
    println!("  - group commit (every-N / interval) amortizes the disk round-trip and");
    println!("    keeps t_store within a small factor of the no-sync append cost,");
    println!("  - fsync=always prices each message at a full disk flush; the measured");
    println!("    t_store then dominates E[B] and capacity collapses accordingly —");
    println!("    quantifying the durability/throughput trade the paper left out.");
    println!();
    println!("note: wall-clock measurements; absolute numbers vary with the machine");
    println!("and filesystem, ratios between policies are the robust signal.");
}
