//! Correlation-ID filters.
//!
//! The paper's measurement study uses *correlation ID filtering*: each JMS
//! message carries a correlation ID string in its header, and a subscriber's
//! filter either matches an exact ID or a *wildcard range* "in the form of
//! ranges like `[7;13]`" (paper §II-A). This module implements that filter
//! family, which is substantially cheaper to evaluate than a full selector —
//! the origin of the different `t_fltr` constants in Table I.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A correlation-ID filter pattern.
///
/// # Examples
///
/// ```
/// use rjms_selector::corrid::CorrelationFilter;
///
/// let exact: CorrelationFilter = "#0".parse().unwrap();
/// assert!(exact.matches("#0"));
/// assert!(!exact.matches("#1"));
///
/// let range: CorrelationFilter = "[7;13]".parse().unwrap();
/// assert!(range.matches("9"));
/// assert!(!range.matches("14"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CorrelationFilter {
    /// Matches any correlation ID (including messages without one? No —
    /// a missing ID never matches any filter, mirroring JMS selector
    /// unknown-semantics).
    Any,
    /// Matches exactly this ID string.
    Exact(String),
    /// Matches IDs whose numeric value (after an optional non-numeric
    /// prefix such as `#`) lies in the inclusive range `[lo; hi]`.
    Range {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Matches IDs starting with the given prefix (`abc*`).
    Prefix(String),
}

impl CorrelationFilter {
    /// Creates an exact-match filter.
    pub fn exact(id: impl Into<String>) -> Self {
        Self::Exact(id.into())
    }

    /// Creates an inclusive numeric range filter.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "range requires lo <= hi, got [{lo};{hi}]");
        Self::Range { lo, hi }
    }

    /// Whether the filter matches the given correlation ID.
    ///
    /// Range filters extract the numeric part of the ID: an ID like `#42` or
    /// `id-42` matches `[7;50]` because its trailing integer is 42; IDs
    /// without a trailing integer never match a range.
    pub fn matches(&self, correlation_id: &str) -> bool {
        match self {
            Self::Any => true,
            Self::Exact(id) => id == correlation_id,
            Self::Range { lo, hi } => match trailing_integer(correlation_id) {
                Some(v) => *lo <= v && v <= *hi,
                None => false,
            },
            Self::Prefix(p) => correlation_id.starts_with(p.as_str()),
        }
    }

    /// Whether the filter matches an *optional* correlation ID; `None`
    /// (message without a correlation ID) never matches.
    pub fn matches_opt(&self, correlation_id: Option<&str>) -> bool {
        correlation_id.is_some_and(|id| self.matches(id))
    }
}

impl fmt::Display for CorrelationFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Any => f.write_str("*"),
            Self::Exact(id) => f.write_str(id),
            Self::Range { lo, hi } => write!(f, "[{lo};{hi}]"),
            Self::Prefix(p) => write!(f, "{p}*"),
        }
    }
}

/// Error parsing a correlation-filter pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParseCorrelationFilterError {
    /// The rejected pattern.
    pub pattern: String,
    /// Why it was rejected.
    pub message: String,
}

impl fmt::Display for ParseCorrelationFilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid correlation filter `{}`: {}", self.pattern, self.message)
    }
}

impl std::error::Error for ParseCorrelationFilterError {}

impl FromStr for CorrelationFilter {
    type Err = ParseCorrelationFilterError;

    /// Parses the pattern syntax used throughout the paper and this crate:
    ///
    /// * `*` — any ID,
    /// * `[lo;hi]` — inclusive numeric range,
    /// * `prefix*` — prefix match,
    /// * anything else — exact match.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "*" {
            return Ok(Self::Any);
        }
        if let Some(body) = s.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            let Some((lo, hi)) = body.split_once(';') else {
                return Err(ParseCorrelationFilterError {
                    pattern: s.to_owned(),
                    message: "range must be `[lo;hi]`".to_owned(),
                });
            };
            let parse = |t: &str| {
                t.trim().parse::<i64>().map_err(|e| ParseCorrelationFilterError {
                    pattern: s.to_owned(),
                    message: format!("bad bound `{t}`: {e}"),
                })
            };
            let (lo, hi) = (parse(lo)?, parse(hi)?);
            if lo > hi {
                return Err(ParseCorrelationFilterError {
                    pattern: s.to_owned(),
                    message: format!("empty range [{lo};{hi}]"),
                });
            }
            return Ok(Self::Range { lo, hi });
        }
        if let Some(prefix) = s.strip_suffix('*') {
            if prefix.contains('*') {
                return Err(ParseCorrelationFilterError {
                    pattern: s.to_owned(),
                    message: "`*` may only appear at the end".to_owned(),
                });
            }
            return Ok(Self::Prefix(prefix.to_owned()));
        }
        Ok(Self::Exact(s.to_owned()))
    }
}

/// Extracts the trailing decimal integer of an ID (`#42` → 42, `id-7` → 7,
/// `-3` → -3). A `-` counts as a sign only at the very start of the ID;
/// elsewhere it is a separator.
fn trailing_integer(s: &str) -> Option<i64> {
    let digits_start = s.rfind(|c: char| !c.is_ascii_digit()).map_or(0, |i| i + 1);
    let digits = &s[digits_start..];
    if digits.is_empty() {
        return None;
    }
    if digits_start == 1 && s.as_bytes()[0] == b'-' {
        return s.parse::<i64>().ok();
    }
    digits.parse::<i64>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match() {
        let f = CorrelationFilter::exact("#0");
        assert!(f.matches("#0"));
        assert!(!f.matches("#00"));
        assert!(!f.matches(""));
    }

    #[test]
    fn range_match_plain_numbers() {
        let f = CorrelationFilter::range(7, 13);
        assert!(f.matches("7"));
        assert!(f.matches("13"));
        assert!(f.matches("10"));
        assert!(!f.matches("6"));
        assert!(!f.matches("14"));
    }

    #[test]
    fn range_match_with_prefix() {
        let f = CorrelationFilter::range(7, 13);
        assert!(f.matches("#9"));
        assert!(f.matches("id-12"));
        assert!(!f.matches("id-42"));
        assert!(!f.matches("nodigits"));
    }

    #[test]
    fn range_match_negative() {
        let f = CorrelationFilter::range(-5, 5);
        assert!(f.matches("-3"));
        assert!(f.matches("3"));
        assert!(!f.matches("-6"));
    }

    #[test]
    fn prefix_match() {
        let f: CorrelationFilter = "sensor-*".parse().unwrap();
        assert!(f.matches("sensor-42"));
        assert!(!f.matches("actuator-42"));
    }

    #[test]
    fn any_matches_everything_but_none() {
        assert!(CorrelationFilter::Any.matches(""));
        assert!(CorrelationFilter::Any.matches("x"));
        assert!(!CorrelationFilter::Any.matches_opt(None));
        assert!(CorrelationFilter::Any.matches_opt(Some("x")));
    }

    #[test]
    fn parse_forms() {
        assert_eq!("*".parse::<CorrelationFilter>().unwrap(), CorrelationFilter::Any);
        assert_eq!(
            "[7;13]".parse::<CorrelationFilter>().unwrap(),
            CorrelationFilter::Range { lo: 7, hi: 13 }
        );
        assert_eq!(
            "#0".parse::<CorrelationFilter>().unwrap(),
            CorrelationFilter::Exact("#0".into())
        );
        assert_eq!(
            "abc*".parse::<CorrelationFilter>().unwrap(),
            CorrelationFilter::Prefix("abc".into())
        );
    }

    #[test]
    fn parse_rejects_bad_ranges() {
        assert!("[7]".parse::<CorrelationFilter>().is_err());
        assert!("[a;b]".parse::<CorrelationFilter>().is_err());
        assert!("[13;7]".parse::<CorrelationFilter>().is_err());
    }

    #[test]
    fn parse_rejects_inner_star() {
        assert!("a*b*".parse::<CorrelationFilter>().is_err());
    }

    #[test]
    fn display_roundtrip() {
        for p in ["*", "[7;13]", "#0", "abc*"] {
            let f: CorrelationFilter = p.parse().unwrap();
            let again: CorrelationFilter = f.to_string().parse().unwrap();
            assert_eq!(f, again);
        }
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn range_constructor_validates() {
        CorrelationFilter::range(5, 1);
    }

    #[test]
    fn trailing_integer_extraction() {
        assert_eq!(trailing_integer("42"), Some(42));
        assert_eq!(trailing_integer("#42"), Some(42));
        assert_eq!(trailing_integer("id-42"), Some(42));
        assert_eq!(trailing_integer("-42"), Some(-42));
        assert_eq!(trailing_integer("x"), None);
        assert_eq!(trailing_integer(""), None);
    }
}
