//! Tokenizer for the JMS message selector syntax.
//!
//! Keywords are case-insensitive (`AND`, `and`, `And` are equivalent);
//! identifiers are case-sensitive Java identifiers; string literals use
//! single quotes with `''` as the embedded-quote escape; numeric literals
//! follow Java syntax (decimal integers, decimal floats with optional
//! exponent).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character in the input.
    pub offset: usize,
}

/// The kinds of tokens in the selector language.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Property / header identifier.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal (already unescaped).
    Str(String),
    /// A reserved keyword.
    Keyword(Keyword),
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Float(v) => write!(f, "float `{v}`"),
            TokenKind::Str(s) => write!(f, "string '{s}'"),
            TokenKind::Keyword(k) => write!(f, "keyword `{k}`"),
            TokenKind::Eq => f.write_str("`=`"),
            TokenKind::Ne => f.write_str("`<>`"),
            TokenKind::Lt => f.write_str("`<`"),
            TokenKind::Le => f.write_str("`<=`"),
            TokenKind::Gt => f.write_str("`>`"),
            TokenKind::Ge => f.write_str("`>=`"),
            TokenKind::Plus => f.write_str("`+`"),
            TokenKind::Minus => f.write_str("`-`"),
            TokenKind::Star => f.write_str("`*`"),
            TokenKind::Slash => f.write_str("`/`"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::Comma => f.write_str("`,`"),
        }
    }
}

/// Reserved words of the selector language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Keyword {
    And,
    Or,
    Not,
    Between,
    In,
    Like,
    Escape,
    Is,
    Null,
    True,
    False,
}

impl Keyword {
    /// Parses a keyword case-insensitively; `None` for ordinary identifiers.
    pub fn from_ident(s: &str) -> Option<Keyword> {
        // JMS reserves these words regardless of case.
        Some(match s.to_ascii_uppercase().as_str() {
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "BETWEEN" => Keyword::Between,
            "IN" => Keyword::In,
            "LIKE" => Keyword::Like,
            "ESCAPE" => Keyword::Escape,
            "IS" => Keyword::Is,
            "NULL" => Keyword::Null,
            "TRUE" => Keyword::True,
            "FALSE" => Keyword::False,
            _ => return None,
        })
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Keyword::And => "AND",
            Keyword::Or => "OR",
            Keyword::Not => "NOT",
            Keyword::Between => "BETWEEN",
            Keyword::In => "IN",
            Keyword::Like => "LIKE",
            Keyword::Escape => "ESCAPE",
            Keyword::Is => "IS",
            Keyword::Null => "NULL",
            Keyword::True => "TRUE",
            Keyword::False => "FALSE",
        };
        f.write_str(s)
    }
}

/// Error raised while tokenizing a selector string.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Explanation of what went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Splits a selector string into tokens.
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated string literals, malformed numbers
/// and characters outside the selector alphabet.
///
/// # Examples
///
/// ```
/// use rjms_selector::lexer::{tokenize, TokenKind};
/// let toks = tokenize("price >= 10.5").unwrap();
/// assert_eq!(toks.len(), 3);
/// assert_eq!(toks[1].kind, TokenKind::Ge);
/// ```
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;

    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '(' => {
                tokens.push(Token { kind: TokenKind::LParen, offset: start });
                i += 1;
            }
            ')' => {
                tokens.push(Token { kind: TokenKind::RParen, offset: start });
                i += 1;
            }
            ',' => {
                tokens.push(Token { kind: TokenKind::Comma, offset: start });
                i += 1;
            }
            '+' => {
                tokens.push(Token { kind: TokenKind::Plus, offset: start });
                i += 1;
            }
            '-' => {
                tokens.push(Token { kind: TokenKind::Minus, offset: start });
                i += 1;
            }
            '*' => {
                tokens.push(Token { kind: TokenKind::Star, offset: start });
                i += 1;
            }
            '/' => {
                tokens.push(Token { kind: TokenKind::Slash, offset: start });
                i += 1;
            }
            '=' => {
                tokens.push(Token { kind: TokenKind::Eq, offset: start });
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token { kind: TokenKind::Ne, offset: start });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Le, offset: start });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Lt, offset: start });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Ge, offset: start });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Gt, offset: start });
                    i += 1;
                }
            }
            '\'' => {
                let (s, next) = lex_string(input, i)?;
                tokens.push(Token { kind: TokenKind::Str(s), offset: start });
                i = next;
            }
            '0'..='9' | '.' => {
                let (kind, next) = lex_number(input, i)?;
                tokens.push(Token { kind, offset: start });
                i = next;
            }
            c if is_ident_start(c) => {
                let mut j = i + 1;
                while j < bytes.len() && is_ident_continue(bytes[j] as char) {
                    j += 1;
                }
                let word = &input[i..j];
                let kind = match Keyword::from_ident(word) {
                    Some(k) => TokenKind::Keyword(k),
                    None => TokenKind::Ident(word.to_owned()),
                };
                tokens.push(Token { kind, offset: start });
                i = j;
            }
            other => {
                return Err(LexError {
                    offset: start,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    Ok(tokens)
}

/// Java identifier start: letter, `_` or `$`.
fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == '$'
}

/// Java identifier continuation: start characters plus digits.
fn is_ident_continue(c: char) -> bool {
    is_ident_start(c) || c.is_ascii_digit()
}

/// Lexes a single-quoted string literal starting at `start`; `''` is an
/// escaped quote. Returns the unescaped contents and the index just past the
/// closing quote.
fn lex_string(input: &str, start: usize) -> Result<(String, usize), LexError> {
    let bytes = input.as_bytes();
    debug_assert_eq!(bytes[start], b'\'');
    let mut out = String::new();
    let mut i = start + 1;
    loop {
        match bytes.get(i) {
            None => {
                return Err(LexError {
                    offset: start,
                    message: "unterminated string literal".to_owned(),
                })
            }
            Some(b'\'') => {
                if bytes.get(i + 1) == Some(&b'\'') {
                    out.push('\'');
                    i += 2;
                } else {
                    return Ok((out, i + 1));
                }
            }
            Some(_) => {
                // Copy the full UTF-8 character.
                let ch = input[i..].chars().next().expect("in-bounds char");
                out.push(ch);
                i += ch.len_utf8();
            }
        }
    }
}

/// Lexes an integer or float literal starting at `start`.
fn lex_number(input: &str, start: usize) -> Result<(TokenKind, usize), LexError> {
    let bytes = input.as_bytes();
    let mut i = start;
    let mut saw_dot = false;
    let mut saw_exp = false;
    let mut saw_digit = false;

    while i < bytes.len() {
        match bytes[i] {
            b'0'..=b'9' => {
                saw_digit = true;
                i += 1;
            }
            b'.' if !saw_dot && !saw_exp => {
                saw_dot = true;
                i += 1;
            }
            b'e' | b'E' if saw_digit && !saw_exp => {
                saw_exp = true;
                i += 1;
                if matches!(bytes.get(i), Some(b'+') | Some(b'-')) {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    let text = &input[start..i];
    if !saw_digit {
        return Err(LexError {
            offset: start,
            message: format!("malformed numeric literal `{text}`"),
        });
    }
    if saw_dot || saw_exp {
        text.parse::<f64>()
            .map(|v| (TokenKind::Float(v), i))
            .map_err(|e| LexError { offset: start, message: format!("bad float `{text}`: {e}") })
    } else {
        // Fall back to float on i64 overflow (JMS has no arbitrary precision).
        match text.parse::<i64>() {
            Ok(v) => Ok((TokenKind::Int(v), i)),
            Err(_) => text.parse::<f64>().map(|v| (TokenKind::Float(v), i)).map_err(|e| LexError {
                offset: start,
                message: format!("bad number `{text}`: {e}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_operators() {
        assert_eq!(
            kinds("= <> < <= > >= + - * / ( ) ,"),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Comma,
            ]
        );
    }

    #[test]
    fn tokenizes_keywords_case_insensitively() {
        assert_eq!(
            kinds("and OR Not beTWEEN"),
            vec![
                TokenKind::Keyword(Keyword::And),
                TokenKind::Keyword(Keyword::Or),
                TokenKind::Keyword(Keyword::Not),
                TokenKind::Keyword(Keyword::Between),
            ]
        );
    }

    #[test]
    fn identifiers_are_case_sensitive_and_allow_underscores() {
        assert_eq!(
            kinds("Color _private $dollar x9"),
            vec![
                TokenKind::Ident("Color".into()),
                TokenKind::Ident("_private".into()),
                TokenKind::Ident("$dollar".into()),
                TokenKind::Ident("x9".into()),
            ]
        );
    }

    #[test]
    fn string_literal_with_escaped_quote() {
        assert_eq!(kinds("'it''s'"), vec![TokenKind::Str("it's".into())]);
        assert_eq!(kinds("''"), vec![TokenKind::Str(String::new())]);
    }

    #[test]
    fn string_literal_unicode() {
        assert_eq!(kinds("'héllo→'"), vec![TokenKind::Str("héllo→".into())]);
    }

    #[test]
    fn unterminated_string_is_error() {
        let err = tokenize("'oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.offset, 0);
    }

    #[test]
    fn numeric_literals() {
        assert_eq!(kinds("42"), vec![TokenKind::Int(42)]);
        assert_eq!(kinds("2.5"), vec![TokenKind::Float(2.5)]);
        assert_eq!(kinds("1e3"), vec![TokenKind::Float(1000.0)]);
        assert_eq!(kinds("1.5E-2"), vec![TokenKind::Float(0.015)]);
        assert_eq!(kinds(".5"), vec![TokenKind::Float(0.5)]);
    }

    #[test]
    fn huge_integer_falls_back_to_float() {
        assert_eq!(kinds("99999999999999999999"), vec![TokenKind::Float(1e20)]);
    }

    #[test]
    fn bare_dot_is_error() {
        assert!(tokenize(".").is_err());
    }

    #[test]
    fn unexpected_character_is_error() {
        let err = tokenize("a ; b").unwrap_err();
        assert_eq!(err.offset, 2);
    }

    #[test]
    fn offsets_are_byte_positions() {
        let toks = tokenize("ab >= 1").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
        assert_eq!(toks[2].offset, 6);
    }

    #[test]
    fn whole_selector_example() {
        let toks = kinds("JMSPriority > 5 AND color IN ('red', 'blue')");
        assert_eq!(toks.len(), 11);
        assert_eq!(toks[0], TokenKind::Ident("JMSPriority".into()));
        assert_eq!(toks[5], TokenKind::Keyword(Keyword::In));
    }
}
