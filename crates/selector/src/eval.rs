//! Three-valued-logic evaluation of selector expressions.
//!
//! Evaluation follows SQL-92/JMS semantics: a reference to a property that is
//! not set on the message, and any type-incompatible operation, yields
//! *unknown*; `AND`/`OR`/`NOT` combine truth values by the three-valued truth
//! tables; the message is forwarded only if the whole selector is *true*.

use crate::ast::{ArithOp, CmpOp, Expr};
use crate::value::{Truth, Value};

/// Source of property values for selector evaluation.
///
/// Implemented by the broker's message type; also implemented for
/// `&[(String, Value)]` slices and `std::collections::HashMap` so that the
/// evaluator can be used standalone.
///
/// # Examples
///
/// ```
/// use std::collections::HashMap;
/// use rjms_selector::{parse, eval::{evaluate, PropertySource}, value::{Truth, Value}};
///
/// let mut props = HashMap::new();
/// props.insert("color".to_owned(), Value::from("red"));
/// let expr = parse("color = 'red'").unwrap();
/// assert_eq!(evaluate(&expr, &props), Truth::True);
/// ```
pub trait PropertySource {
    /// The value of the named property, or `None` if it is not set.
    fn property(&self, name: &str) -> Option<Value>;
}

impl PropertySource for std::collections::HashMap<String, Value> {
    fn property(&self, name: &str) -> Option<Value> {
        self.get(name).cloned()
    }
}

impl PropertySource for std::collections::BTreeMap<String, Value> {
    fn property(&self, name: &str) -> Option<Value> {
        self.get(name).cloned()
    }
}

impl PropertySource for [(String, Value)] {
    fn property(&self, name: &str) -> Option<Value> {
        self.iter().find(|(k, _)| k == name).map(|(_, v)| v.clone())
    }
}

impl<T: PropertySource + ?Sized> PropertySource for &T {
    fn property(&self, name: &str) -> Option<Value> {
        (**self).property(name)
    }
}

/// The empty property source: every lookup is `None`.
///
/// Useful for evaluating selectors that only reference literals, and in
/// tests that exercise unknown-propagation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProperties;

impl PropertySource for NoProperties {
    fn property(&self, _name: &str) -> Option<Value> {
        None
    }
}

/// Evaluates a selector expression against a property source.
///
/// Never panics, regardless of the expression or message contents: all type
/// mismatches yield [`Truth::Unknown`], as the JMS specification requires.
pub fn evaluate<P: PropertySource + ?Sized>(expr: &Expr, props: &P) -> Truth {
    truth_of(expr, props)
}

/// Convenience wrapper: `true` iff the selector evaluates to [`Truth::True`]
/// (the message-forwarding criterion).
pub fn matches<P: PropertySource + ?Sized>(expr: &Expr, props: &P) -> bool {
    evaluate(expr, props).is_true()
}

/// Evaluates an expression to a *value* (`None` = unknown/null).
fn value_of<P: PropertySource + ?Sized>(expr: &Expr, props: &P) -> Option<Value> {
    match expr {
        Expr::Literal(v) => Some(v.clone()),
        Expr::Ident(name) => props.property(name),
        Expr::Neg(e) => match value_of(e, props)? {
            Value::Int(v) => Some(Value::Int(-v)),
            Value::Float(v) => Some(Value::Float(-v)),
            _ => None,
        },
        Expr::Arith { op, lhs, rhs } => {
            let (a, b) = (value_of(lhs, props)?, value_of(rhs, props)?);
            arith(*op, &a, &b)
        }
        // Boolean-valued sub-expressions used as values (e.g. a bare
        // identifier in `flag = TRUE` is handled above; a nested predicate
        // has no value semantics in JMS, so it maps onto booleans with
        // unknown → None).
        other => match truth_of(other, props) {
            Truth::True => Some(Value::Bool(true)),
            Truth::False => Some(Value::Bool(false)),
            Truth::Unknown => None,
        },
    }
}

/// SQL-92 arithmetic: exact on integers, promoting to float when mixed;
/// non-numeric operands and division by integer zero yield unknown.
fn arith(op: ArithOp, a: &Value, b: &Value) -> Option<Value> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => match op {
            ArithOp::Add => Some(Value::Int(x.wrapping_add(*y))),
            ArithOp::Sub => Some(Value::Int(x.wrapping_sub(*y))),
            ArithOp::Mul => Some(Value::Int(x.wrapping_mul(*y))),
            ArithOp::Div => {
                if *y == 0 {
                    None
                } else {
                    Some(Value::Int(x.wrapping_div(*y)))
                }
            }
        },
        _ => {
            let (x, y) = (a.numeric()?, b.numeric()?);
            let r = match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => x / y,
            };
            Some(Value::Float(r))
        }
    }
}

/// Evaluates an expression to a truth value.
fn truth_of<P: PropertySource + ?Sized>(expr: &Expr, props: &P) -> Truth {
    match expr {
        Expr::Not(e) => truth_of(e, props).not(),
        Expr::And(a, b) => {
            // Short-circuit on definite False, preserving three-valued
            // semantics (False AND anything = False).
            let ta = truth_of(a, props);
            if ta == Truth::False {
                return Truth::False;
            }
            ta.and(truth_of(b, props))
        }
        Expr::Or(a, b) => {
            let ta = truth_of(a, props);
            if ta == Truth::True {
                return Truth::True;
            }
            ta.or(truth_of(b, props))
        }
        Expr::Cmp { op, lhs, rhs } => {
            let (a, b) = match (value_of(lhs, props), value_of(rhs, props)) {
                (Some(a), Some(b)) => (a, b),
                _ => return Truth::Unknown,
            };
            compare(*op, &a, &b)
        }
        Expr::Between { expr, lo, hi, negated } => {
            let v = value_of(expr, props);
            let l = value_of(lo, props);
            let h = value_of(hi, props);
            let (v, l, h) = match (v, l, h) {
                (Some(v), Some(l), Some(h)) => (v, l, h),
                _ => return Truth::Unknown,
            };
            let ge_lo = compare(CmpOp::Ge, &v, &l);
            let le_hi = compare(CmpOp::Le, &v, &h);
            let t = ge_lo.and(le_hi);
            if *negated {
                t.not()
            } else {
                t
            }
        }
        Expr::InList { expr, list, negated } => {
            let v = match value_of(expr, props) {
                Some(Value::Str(s)) => s,
                Some(_) => return Truth::Unknown, // IN applies to strings only
                None => return Truth::Unknown,
            };
            let t = Truth::from(list.contains(&v));
            if *negated {
                t.not()
            } else {
                t
            }
        }
        Expr::Like { expr, pattern, escape, negated } => {
            let v = match value_of(expr, props) {
                Some(Value::Str(s)) => s,
                Some(_) => return Truth::Unknown, // LIKE applies to strings only
                None => return Truth::Unknown,
            };
            let t = Truth::from(like_match(&v, pattern, *escape));
            if *negated {
                t.not()
            } else {
                t
            }
        }
        Expr::IsNull { expr, negated } => {
            let is_null = value_of(expr, props).is_none();
            // IS NULL is the one operator that never yields unknown.
            Truth::from(is_null != *negated)
        }
        // A bare value in boolean position: TRUE literal or boolean property.
        other => match value_of(other, props) {
            Some(Value::Bool(b)) => Truth::from(b),
            Some(_) => Truth::Unknown,
            None => Truth::Unknown,
        },
    }
}

/// SQL-92 comparison with numeric promotion.
fn compare(op: CmpOp, a: &Value, b: &Value) -> Truth {
    match op {
        CmpOp::Eq => Truth::from(a.sql_eq(b)),
        CmpOp::Ne => Truth::from(a.sql_eq(b).map(|e| !e)),
        _ => {
            let (x, y) = match (a.numeric(), b.numeric()) {
                (Some(x), Some(y)) => (x, y),
                _ => return Truth::Unknown,
            };
            Truth::from(match op {
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
                CmpOp::Eq | CmpOp::Ne => unreachable!("handled above"),
            })
        }
    }
}

/// SQL `LIKE` pattern matching: `%` matches any run of characters, `_` any
/// single character; an escape character (if given) makes the following
/// wildcard literal.
///
/// Implemented with the classic two-pointer algorithm (linear in practice,
/// no recursion, no allocation beyond the char vectors).
pub fn like_match(text: &str, pattern: &str, escape: Option<char>) -> bool {
    let text: Vec<char> = text.chars().collect();

    /// A compiled pattern element.
    #[derive(Clone, Copy, PartialEq)]
    enum Pat {
        AnyRun,    // %
        AnyOne,    // _
        Lit(char), // literal character
    }

    let mut pat = Vec::with_capacity(pattern.len());
    let mut chars = pattern.chars();
    while let Some(c) = chars.next() {
        if Some(c) == escape {
            match chars.next() {
                // An escaped character is literal — including the escape
                // character itself and both wildcards.
                Some(next) => pat.push(Pat::Lit(next)),
                // Trailing escape: treat it as a literal escape character
                // (JMS leaves this unspecified; matching SQL engines vary).
                None => pat.push(Pat::Lit(c)),
            }
        } else if c == '%' {
            // Collapse runs of % — they are equivalent to one.
            if pat.last() != Some(&Pat::AnyRun) {
                pat.push(Pat::AnyRun);
            }
        } else if c == '_' {
            pat.push(Pat::AnyOne);
        } else {
            pat.push(Pat::Lit(c));
        }
    }

    // Two-pointer matching with backtracking to the last %.
    let (mut t, mut p) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pat index of %, text index)
    while t < text.len() {
        if p < pat.len() && (pat[p] == Pat::AnyOne || pat[p] == Pat::Lit(text[t])) {
            t += 1;
            p += 1;
        } else if p < pat.len() && pat[p] == Pat::AnyRun {
            star = Some((p, t));
            p += 1;
        } else if let Some((sp, st)) = star {
            // Backtrack: let the last % absorb one more character.
            p = sp + 1;
            t = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while p < pat.len() && pat[p] == Pat::AnyRun {
        p += 1;
    }
    p == pat.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use std::collections::HashMap;

    fn props(pairs: &[(&str, Value)]) -> HashMap<String, Value> {
        pairs.iter().map(|(k, v)| ((*k).to_owned(), v.clone())).collect()
    }

    fn eval_str(selector: &str, pairs: &[(&str, Value)]) -> Truth {
        evaluate(&parse(selector).unwrap(), &props(pairs))
    }

    #[test]
    fn simple_equality() {
        assert_eq!(eval_str("color = 'red'", &[("color", "red".into())]), Truth::True);
        assert_eq!(eval_str("color = 'red'", &[("color", "blue".into())]), Truth::False);
    }

    #[test]
    fn missing_property_is_unknown() {
        assert_eq!(eval_str("color = 'red'", &[]), Truth::Unknown);
        assert_eq!(eval_str("NOT color = 'red'", &[]), Truth::Unknown);
    }

    #[test]
    fn numeric_promotion_in_comparison() {
        assert_eq!(eval_str("x = 3.0", &[("x", 3i64.into())]), Truth::True);
        assert_eq!(eval_str("x < 3.5", &[("x", 3i64.into())]), Truth::True);
    }

    #[test]
    fn cross_type_comparison_is_unknown() {
        assert_eq!(eval_str("x = 'red'", &[("x", 3i64.into())]), Truth::Unknown);
        assert_eq!(eval_str("x < 'red'", &[("x", 3i64.into())]), Truth::Unknown);
        assert_eq!(eval_str("b > 0", &[("b", true.into())]), Truth::Unknown);
    }

    #[test]
    fn three_valued_and_or() {
        // False AND Unknown = False; True OR Unknown = True.
        assert_eq!(eval_str("a = 1 AND missing = 2", &[("a", 2i64.into())]), Truth::False);
        assert_eq!(eval_str("a = 2 OR missing = 2", &[("a", 2i64.into())]), Truth::True);
        assert_eq!(eval_str("a = 2 AND missing = 2", &[("a", 2i64.into())]), Truth::Unknown);
    }

    #[test]
    fn arithmetic_in_predicates() {
        assert_eq!(eval_str("a + b = 5", &[("a", 2i64.into()), ("b", 3i64.into())]), Truth::True);
        assert_eq!(eval_str("a * 2 > 5", &[("a", 3i64.into())]), Truth::True);
        assert_eq!(eval_str("a / 2 = 1", &[("a", 3i64.into())]), Truth::True); // int div
        assert_eq!(eval_str("a / 2.0 = 1.5", &[("a", 3i64.into())]), Truth::True);
    }

    #[test]
    fn division_by_integer_zero_is_unknown() {
        assert_eq!(eval_str("a / 0 = 1", &[("a", 3i64.into())]), Truth::Unknown);
        // Float division by zero follows IEEE (inf), which compares normally.
        assert_eq!(eval_str("a / 0.0 > 1000", &[("a", 3i64.into())]), Truth::True);
    }

    #[test]
    fn between_inclusive() {
        let p: &[(&str, Value)] = &[("w", 5i64.into())];
        assert_eq!(eval_str("w BETWEEN 5 AND 10", p), Truth::True);
        assert_eq!(eval_str("w BETWEEN 1 AND 5", p), Truth::True);
        assert_eq!(eval_str("w BETWEEN 6 AND 10", p), Truth::False);
        assert_eq!(eval_str("w NOT BETWEEN 6 AND 10", p), Truth::True);
        assert_eq!(eval_str("w BETWEEN 1 AND missing", p), Truth::Unknown);
    }

    #[test]
    fn in_list_semantics() {
        let p: &[(&str, Value)] = &[("c", "UK".into())];
        assert_eq!(eval_str("c IN ('UK', 'US')", p), Truth::True);
        assert_eq!(eval_str("c IN ('DE')", p), Truth::False);
        assert_eq!(eval_str("c NOT IN ('DE')", p), Truth::True);
        assert_eq!(eval_str("missing IN ('DE')", &[]), Truth::Unknown);
        // IN on a non-string property is unknown.
        assert_eq!(eval_str("n IN ('5')", &[("n", 5i64.into())]), Truth::Unknown);
    }

    #[test]
    fn is_null_never_unknown() {
        assert_eq!(eval_str("missing IS NULL", &[]), Truth::True);
        assert_eq!(eval_str("missing IS NOT NULL", &[]), Truth::False);
        assert_eq!(eval_str("x IS NULL", &[("x", 1i64.into())]), Truth::False);
        assert_eq!(eval_str("x IS NOT NULL", &[("x", 1i64.into())]), Truth::True);
    }

    #[test]
    fn boolean_property_in_boolean_position() {
        assert_eq!(eval_str("urgent", &[("urgent", true.into())]), Truth::True);
        assert_eq!(eval_str("urgent", &[("urgent", false.into())]), Truth::False);
        assert_eq!(eval_str("urgent", &[]), Truth::Unknown);
        // Non-boolean property in boolean position is unknown, not an error.
        assert_eq!(eval_str("urgent", &[("urgent", 1i64.into())]), Truth::Unknown);
    }

    #[test]
    fn like_basic_wildcards() {
        assert!(like_match("abc", "abc", None));
        assert!(like_match("abc", "a%", None));
        assert!(like_match("abc", "%c", None));
        assert!(like_match("abc", "a_c", None));
        assert!(!like_match("abc", "a_b", None));
        assert!(like_match("", "%", None));
        assert!(!like_match("", "_", None));
    }

    #[test]
    fn like_multiple_percent_runs() {
        assert!(like_match("abcdefg", "a%d%g", None));
        assert!(!like_match("abcdefg", "a%x%g", None));
        assert!(like_match("aaa", "%%%", None));
        assert!(like_match("mississippi", "%ss%ss%", None));
    }

    #[test]
    fn like_escape_makes_wildcards_literal() {
        assert!(like_match("50%", r"50\%", Some('\\')));
        assert!(!like_match("50x", r"50\%", Some('\\')));
        assert!(like_match("a_b", r"a\_b", Some('\\')));
        assert!(!like_match("axb", r"a\_b", Some('\\')));
        // Escaped escape char.
        assert!(like_match(r"a\b", r"a\\b", Some('\\')));
    }

    #[test]
    fn like_unicode() {
        assert!(like_match("grüße", "gr_ße", None));
        assert!(like_match("grüße", "gr%e", None));
    }

    #[test]
    fn like_expression_integration() {
        assert_eq!(eval_str("phone LIKE '12%3'", &[("phone", "12993".into())]), Truth::True);
        assert_eq!(eval_str("phone NOT LIKE '12%3'", &[("phone", "12994".into())]), Truth::True);
        assert_eq!(eval_str("phone LIKE '12%3'", &[]), Truth::Unknown);
    }

    #[test]
    fn matches_only_on_true() {
        let e = parse("missing = 1").unwrap();
        assert!(!matches(&e, &NoProperties));
        let e = parse("1 = 1").unwrap();
        assert!(matches(&e, &NoProperties));
    }

    #[test]
    fn jms_spec_example() {
        // The canonical example from the JMS spec §3.8.1.1.
        let sel = "JMSType = 'car' AND color = 'blue' AND weight > 2500";
        let p = props(&[
            ("JMSType", "car".into()),
            ("color", "blue".into()),
            ("weight", 3000i64.into()),
        ]);
        assert_eq!(evaluate(&parse(sel).unwrap(), &p), Truth::True);
    }

    #[test]
    fn slice_property_source() {
        let pairs = vec![("a".to_owned(), Value::Int(1))];
        let e = parse("a = 1").unwrap();
        assert!(matches(&e, pairs.as_slice()));
    }
}
