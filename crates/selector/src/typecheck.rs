//! Static type analysis of selectors.
//!
//! JMS providers reject selectors with *syntactic* errors at subscription
//! time; type mismatches, however, silently evaluate to *unknown* and the
//! subscriber simply never receives a message. This module catches the most
//! common such footguns statically:
//!
//! * a property used with contradictory types (`x > 5 AND x LIKE 'a%'`),
//! * an operator applied to a literal of the wrong type (`5 LIKE '5%'`),
//! * a selector that is constantly non-true regardless of any message
//!   (`1 = 2 AND ...`).
//!
//! The analysis is sound but deliberately incomplete: it reports
//! *certain* problems, never false positives on the type lattice.

use crate::ast::{CmpOp, Expr};
use crate::eval::{evaluate, NoProperties};
use crate::value::{Truth, Value};
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

/// The type classes of the selector language (numeric promotion collapses
/// integers and floats into one class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum PropType {
    /// Boolean property.
    Bool,
    /// Integral or floating-point property.
    Number,
    /// String property.
    Str,
}

impl fmt::Display for PropType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropType::Bool => f.write_str("boolean"),
            PropType::Number => f.write_str("number"),
            PropType::Str => f.write_str("string"),
        }
    }
}

fn type_of_value(v: &Value) -> PropType {
    match v {
        Value::Bool(_) => PropType::Bool,
        Value::Int(_) | Value::Float(_) => PropType::Number,
        Value::Str(_) => PropType::Str,
    }
}

/// A problem detected by the analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum TypeIssue {
    /// One property is required to have two different types at once; the
    /// conjunction can never be true on any message.
    ConflictingTypes {
        /// The property name.
        property: String,
        /// The first required type.
        first: PropType,
        /// The contradicting required type.
        second: PropType,
    },
    /// An operator was applied to a literal of an impossible type
    /// (e.g. `5 LIKE 'x%'` — LIKE applies to strings).
    LiteralTypeMismatch {
        /// The operator or construct.
        construct: &'static str,
        /// The type required by the construct.
        expected: PropType,
        /// The literal's actual type.
        found: PropType,
    },
    /// The selector evaluates to false/unknown for *every* message (its
    /// truth value is already determined without looking at any property).
    ConstantlyNonTrue,
}

impl fmt::Display for TypeIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ConflictingTypes { property, first, second } => write!(
                f,
                "property `{property}` is used both as {first} and as {second}; \
                 the selector can never match"
            ),
            Self::LiteralTypeMismatch { construct, expected, found } => {
                write!(f, "{construct} requires a {expected} operand, found a {found} literal")
            }
            Self::ConstantlyNonTrue => {
                f.write_str("selector is constantly non-true: no message can ever match")
            }
        }
    }
}

/// The result of analyzing a selector.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TypeReport {
    /// Types inferred for each referenced property (only properties whose
    /// type is forced by usage appear).
    pub property_types: BTreeMap<String, PropType>,
    /// Detected issues, in discovery order.
    pub issues: Vec<TypeIssue>,
}

impl TypeReport {
    /// Whether the analysis found no problems.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Analyzes a selector expression.
///
/// # Examples
///
/// ```
/// use rjms_selector::{parse, typecheck::analyze};
///
/// let ok = analyze(&parse("price < 50 AND color = 'red'").unwrap());
/// assert!(ok.is_clean());
///
/// let bad = analyze(&parse("x > 5 AND x LIKE 'a%'").unwrap());
/// assert!(!bad.is_clean());
/// ```
pub fn analyze(expr: &Expr) -> TypeReport {
    let mut cx = Context { types: BTreeMap::new(), issues: Vec::new() };
    walk_bool(expr, &mut cx);

    // A selector whose truth value ignores every property is suspicious;
    // report it when that constant value is not True.
    if expr.referenced_properties().is_empty() && evaluate(expr, &NoProperties) != Truth::True {
        cx.issues.push(TypeIssue::ConstantlyNonTrue);
    }

    TypeReport { property_types: cx.types, issues: cx.issues }
}

struct Context {
    types: BTreeMap<String, PropType>,
    issues: Vec<TypeIssue>,
}

impl Context {
    /// Requires `name` to have type `t`; records a conflict otherwise.
    fn require(&mut self, name: &str, t: PropType) {
        match self.types.get(name) {
            None => {
                self.types.insert(name.to_owned(), t);
            }
            Some(&existing) if existing == t => {}
            Some(&existing) => {
                // Report each conflicting pair once.
                let issue = TypeIssue::ConflictingTypes {
                    property: name.to_owned(),
                    first: existing,
                    second: t,
                };
                if !self.issues.contains(&issue) {
                    self.issues.push(issue);
                }
            }
        }
    }

    fn literal_mismatch(&mut self, construct: &'static str, expected: PropType, found: PropType) {
        self.issues.push(TypeIssue::LiteralTypeMismatch { construct, expected, found });
    }
}

/// Requires a *value* expression to have type `t`.
fn require_type(expr: &Expr, t: PropType, construct: &'static str, cx: &mut Context) {
    match expr {
        Expr::Ident(name) => cx.require(name, t),
        Expr::Literal(v) => {
            let found = type_of_value(v);
            if found != t {
                cx.literal_mismatch(construct, t, found);
            }
        }
        Expr::Arith { lhs, rhs, .. } => {
            // Arithmetic yields a number; its operands must be numbers.
            if t != PropType::Number {
                cx.literal_mismatch(construct, t, PropType::Number);
            }
            require_type(lhs, PropType::Number, "arithmetic", cx);
            require_type(rhs, PropType::Number, "arithmetic", cx);
        }
        Expr::Neg(inner) => {
            if t != PropType::Number {
                cx.literal_mismatch(construct, t, PropType::Number);
            }
            require_type(inner, PropType::Number, "unary minus", cx);
        }
        // Boolean-valued sub-expressions used as values.
        other => {
            if t != PropType::Bool {
                // e.g. `(a = b) LIKE 'x'` — a predicate is boolean.
                cx.literal_mismatch(construct, t, PropType::Bool);
            }
            walk_bool(other, cx);
        }
    }
}

/// Walks a boolean-position expression.
fn walk_bool(expr: &Expr, cx: &mut Context) {
    match expr {
        Expr::Literal(v) => {
            if type_of_value(v) != PropType::Bool {
                cx.literal_mismatch("boolean position", PropType::Bool, type_of_value(v));
            }
        }
        Expr::Ident(name) => cx.require(name, PropType::Bool),
        Expr::Not(e) => walk_bool(e, cx),
        Expr::And(a, b) | Expr::Or(a, b) => {
            walk_bool(a, cx);
            walk_bool(b, cx);
        }
        Expr::Cmp { op, lhs, rhs } => match op {
            CmpOp::Eq | CmpOp::Ne => walk_equality(lhs, rhs, cx),
            _ => {
                require_type(lhs, PropType::Number, "ordering comparison", cx);
                require_type(rhs, PropType::Number, "ordering comparison", cx);
            }
        },
        Expr::Arith { .. } | Expr::Neg(_) => {
            // A bare number in boolean position is never true.
            cx.literal_mismatch("boolean position", PropType::Bool, PropType::Number);
        }
        Expr::Between { expr, lo, hi, .. } => {
            require_type(expr, PropType::Number, "BETWEEN", cx);
            require_type(lo, PropType::Number, "BETWEEN", cx);
            require_type(hi, PropType::Number, "BETWEEN", cx);
        }
        Expr::InList { expr, .. } => {
            require_type(expr, PropType::Str, "IN", cx);
        }
        Expr::Like { expr, .. } => {
            require_type(expr, PropType::Str, "LIKE", cx);
        }
        Expr::IsNull { .. } => {
            // IS NULL constrains presence, not type.
        }
    }
}

/// Equality: both sides must share a type class when both are typed.
fn walk_equality(lhs: &Expr, rhs: &Expr, cx: &mut Context) {
    let l = shallow_type(lhs, cx);
    let r = shallow_type(rhs, cx);
    match (l, r) {
        (Some(t), None) => require_type(rhs, t, "equality", cx),
        (None, Some(t)) => require_type(lhs, t, "equality", cx),
        (Some(a), Some(b)) if a != b => {
            cx.literal_mismatch("equality", a, b);
        }
        _ => {
            // Both untyped (two idents): tie them together once one side
            // becomes known — approximate by leaving them unconstrained.
            visit_value_children(lhs, cx);
            visit_value_children(rhs, cx);
        }
    }
}

/// The type class an expression *evaluates to*, if statically known without
/// consulting the context.
fn shallow_type(expr: &Expr, cx: &mut Context) -> Option<PropType> {
    match expr {
        Expr::Literal(v) => Some(type_of_value(v)),
        Expr::Arith { lhs, rhs, .. } => {
            require_type(lhs, PropType::Number, "arithmetic", cx);
            require_type(rhs, PropType::Number, "arithmetic", cx);
            Some(PropType::Number)
        }
        Expr::Neg(inner) => {
            require_type(inner, PropType::Number, "unary minus", cx);
            Some(PropType::Number)
        }
        Expr::Ident(_) => None,
        // Predicates evaluate to booleans.
        _ => Some(PropType::Bool),
    }
}

/// Visits children of a value expression without imposing a type.
fn visit_value_children(expr: &Expr, cx: &mut Context) {
    if let Expr::Arith { lhs, rhs, .. } = expr {
        require_type(lhs, PropType::Number, "arithmetic", cx);
        require_type(rhs, PropType::Number, "arithmetic", cx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn report(src: &str) -> TypeReport {
        analyze(&parse(src).unwrap())
    }

    #[test]
    fn clean_selector_infers_types() {
        let r = report("price < 50 AND color = 'red' AND urgent");
        assert!(r.is_clean(), "{:?}", r.issues);
        assert_eq!(r.property_types.get("price"), Some(&PropType::Number));
        assert_eq!(r.property_types.get("color"), Some(&PropType::Str));
        assert_eq!(r.property_types.get("urgent"), Some(&PropType::Bool));
    }

    #[test]
    fn conflicting_usage_detected() {
        let r = report("x > 5 AND x LIKE 'a%'");
        assert_eq!(r.issues.len(), 1);
        assert!(matches!(
            &r.issues[0],
            TypeIssue::ConflictingTypes { property, .. } if property == "x"
        ));
    }

    #[test]
    fn conflict_reported_once_per_pair() {
        let r = report("x > 5 AND x LIKE 'a%' AND x LIKE 'b%'");
        assert_eq!(r.issues.len(), 1);
    }

    #[test]
    fn like_on_numeric_literal_flagged() {
        let r = report("5 LIKE '5%'");
        assert!(matches!(
            &r.issues[0],
            TypeIssue::LiteralTypeMismatch { expected: PropType::Str, found: PropType::Number, .. }
        ));
    }

    #[test]
    fn between_on_string_literal_flagged() {
        let r = report("'a' BETWEEN 1 AND 2");
        assert!(!r.is_clean());
    }

    #[test]
    fn equality_binds_type_through_literal() {
        let r = report("name = 'alice' AND name = 'bob'");
        assert!(r.is_clean());
        assert_eq!(r.property_types.get("name"), Some(&PropType::Str));
        // ... and conflicts are caught through equality too.
        let r = report("name = 'alice' AND name = 5");
        assert!(!r.is_clean());
    }

    #[test]
    fn cross_type_literal_equality_flagged() {
        let r = report("1 = 'one'");
        assert!(r
            .issues
            .iter()
            .any(|i| matches!(i, TypeIssue::LiteralTypeMismatch { construct: "equality", .. })));
    }

    #[test]
    fn constant_false_selector_flagged() {
        let r = report("1 = 2");
        assert!(r.issues.contains(&TypeIssue::ConstantlyNonTrue));
        let r = report("TRUE AND FALSE");
        assert!(r.issues.contains(&TypeIssue::ConstantlyNonTrue));
    }

    #[test]
    fn constant_true_selector_not_flagged() {
        let r = report("1 = 1");
        assert!(r.is_clean(), "{:?}", r.issues);
    }

    #[test]
    fn arithmetic_forces_numbers() {
        let r = report("a + b > 10");
        assert!(r.is_clean());
        assert_eq!(r.property_types.get("a"), Some(&PropType::Number));
        assert_eq!(r.property_types.get("b"), Some(&PropType::Number));
        let r = report("a + b > 10 AND a LIKE 'x%'");
        assert!(!r.is_clean());
    }

    #[test]
    fn is_null_imposes_no_type() {
        let r = report("x IS NULL");
        assert!(r.is_clean());
        assert!(!r.property_types.contains_key("x"));
    }

    #[test]
    fn in_list_forces_string() {
        let r = report("country IN ('UK', 'US')");
        assert_eq!(r.property_types.get("country"), Some(&PropType::Str));
    }

    #[test]
    fn bare_number_in_boolean_position_flagged() {
        let r = report("a = 1 OR 5 + 3");
        assert!(!r.is_clean());
    }

    #[test]
    fn ident_to_ident_equality_stays_unconstrained() {
        let r = report("a = b");
        assert!(r.is_clean());
        assert!(r.property_types.is_empty());
    }
}
