//! # rjms-selector
//!
//! A complete implementation of the JMS 1.1 message-selector language
//! (SQL-92 conditional expression subset) plus the correlation-ID filter
//! family used by the paper's measurement study.
//!
//! A *message selector* is the filter a subscriber installs on a JMS server
//! so that only matching messages are forwarded. The server evaluates every
//! subscriber's selector against every published message — the per-filter
//! cost `t_fltr` in the paper's service-time model (Eq. 1). This crate
//! provides:
//!
//! * [`parse`] — selector string → [`ast::Expr`], with precise errors,
//! * [`eval::evaluate`] / [`eval::matches`] — three-valued-logic evaluation
//!   against any [`eval::PropertySource`],
//! * [`corrid::CorrelationFilter`] — exact / range (`[7;13]`) / prefix
//!   correlation-ID filters,
//! * [`Selector`] — a parsed, reusable selector handle.
//!
//! ## Example
//!
//! ```
//! use rjms_selector::Selector;
//! use rjms_selector::value::Value;
//! use std::collections::HashMap;
//!
//! # fn main() -> Result<(), rjms_selector::parser::ParseError> {
//! let sel = Selector::parse("color = 'red' AND weight BETWEEN 2 AND 5")?;
//! let mut msg = HashMap::new();
//! msg.insert("color".to_owned(), Value::from("red"));
//! msg.insert("weight".to_owned(), Value::from(3i64));
//! assert!(sel.matches(&msg));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod corrid;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod typecheck;
pub mod value;

pub use ast::Expr;
pub use corrid::CorrelationFilter;
pub use eval::{evaluate, matches, PropertySource};
pub use parser::{parse, ParseError};
pub use typecheck::{analyze, PropType, TypeIssue, TypeReport};
pub use value::{Truth, Value};

use serde::{Deserialize, Serialize};

/// A parsed message selector, ready for repeated evaluation.
///
/// Wraps the AST together with the original source text; cloning is cheap
/// relative to parsing, and [`std::fmt::Display`] returns the original
/// selector string.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Selector {
    source: String,
    expr: Expr,
}

impl Selector {
    /// Parses a selector string.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] for syntactically invalid selectors, exactly
    /// as a JMS provider must reject them when the subscription is created.
    pub fn parse(source: &str) -> Result<Self, ParseError> {
        let expr = parse(source)?;
        Ok(Self { source: source.to_owned(), expr })
    }

    /// The original selector text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The parsed expression.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// Evaluates the selector; `true` iff the message must be forwarded.
    pub fn matches<P: PropertySource + ?Sized>(&self, props: &P) -> bool {
        eval::matches(&self.expr, props)
    }

    /// Full three-valued evaluation result.
    pub fn evaluate<P: PropertySource + ?Sized>(&self, props: &P) -> Truth {
        eval::evaluate(&self.expr, props)
    }
}

impl std::fmt::Display for Selector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.source)
    }
}

impl std::str::FromStr for Selector {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn selector_handle_roundtrip() {
        let s: Selector = "a = 1".parse().unwrap();
        assert_eq!(s.source(), "a = 1");
        assert_eq!(s.to_string(), "a = 1");
    }

    #[test]
    fn selector_matches() {
        let s = Selector::parse("n > 2").unwrap();
        let mut p = HashMap::new();
        p.insert("n".to_owned(), Value::Int(3));
        assert!(s.matches(&p));
        assert_eq!(s.evaluate(&p), Truth::True);
    }

    #[test]
    fn selector_rejects_garbage() {
        assert!(Selector::parse("((").is_err());
    }
}
