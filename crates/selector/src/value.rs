//! Typed values flowing through selector evaluation.
//!
//! JMS message properties are typed (`boolean`, integral, floating point,
//! `String`); selector evaluation follows SQL-92 semantics: integral and
//! floating-point values compare after numeric promotion, strings and
//! booleans only support `=` / `<>`, and any cross-type comparison is
//! *unknown* rather than an error.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A typed property value of a message.
///
/// # Examples
///
/// ```
/// use rjms_selector::value::Value;
/// assert_eq!(Value::from(42i64), Value::Int(42));
/// assert_eq!(Value::from("red"), Value::Str("red".to_owned()));
/// assert!(Value::Int(2).numeric().is_some());
/// assert!(Value::Bool(true).numeric().is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Boolean property (`TRUE` / `FALSE` literals).
    Bool(bool),
    /// Integral property (JMS `byte`/`short`/`int`/`long` collapse to i64).
    Int(i64),
    /// Floating-point property (JMS `float`/`double` collapse to f64).
    Float(f64),
    /// String property.
    Str(String),
}

impl Value {
    /// Numeric view after SQL-92 promotion; `None` for strings and booleans.
    pub fn numeric(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(_) | Value::Str(_) => None,
        }
    }

    /// Whether two values are comparable with an ordering operator
    /// (`<`, `<=`, `>`, `>=`): only numeric values are.
    pub fn ordered_comparable(&self, other: &Value) -> bool {
        self.numeric().is_some() && other.numeric().is_some()
    }

    /// SQL-92 equality: numeric promotion between `Int` and `Float`;
    /// same-type comparison for `Bool` and `Str`; everything else is
    /// *unknown* (`None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => Some(a == b),
            (Value::Str(a), Value::Str(b)) => Some(a == b),
            _ => {
                let (a, b) = (self.numeric()?, other.numeric()?);
                Some(a == b)
            }
        }
    }

    /// A short name of the type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Bool(_) => "boolean",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                // Keep a decimal point so the literal re-lexes as a float.
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

/// SQL-92 three-valued logic truth value.
///
/// A selector only forwards a message when the whole expression evaluates to
/// [`Truth::True`]; both `False` and `Unknown` suppress delivery.
///
/// # Examples
///
/// ```
/// use rjms_selector::value::Truth;
/// assert_eq!(Truth::Unknown.and(Truth::False), Truth::False);
/// assert_eq!(Truth::Unknown.or(Truth::True), Truth::True);
/// assert_eq!(Truth::Unknown.not(), Truth::Unknown);
/// assert!(!Truth::Unknown.is_true());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Truth {
    /// Definitely true.
    True,
    /// Definitely false.
    False,
    /// Unknown (missing property or incomparable types).
    Unknown,
}

impl Truth {
    /// Three-valued conjunction.
    pub fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        }
    }

    /// Three-valued disjunction.
    pub fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        }
    }

    /// Three-valued negation.
    #[allow(clippy::should_implement_trait)] // SQL-92 NOT, deliberately not `!`
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// `true` only for [`Truth::True`] — the message-forwarding criterion.
    pub fn is_true(self) -> bool {
        self == Truth::True
    }
}

impl From<bool> for Truth {
    fn from(b: bool) -> Self {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }
}

impl From<Option<bool>> for Truth {
    fn from(b: Option<bool>) -> Self {
        match b {
            Some(true) => Truth::True,
            Some(false) => Truth::False,
            None => Truth::Unknown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_promotion() {
        assert_eq!(Value::Int(3).numeric(), Some(3.0));
        assert_eq!(Value::Float(2.5).numeric(), Some(2.5));
        assert_eq!(Value::Str("3".into()).numeric(), None);
        assert_eq!(Value::Bool(true).numeric(), None);
    }

    #[test]
    fn sql_eq_same_types() {
        assert_eq!(Value::Int(3).sql_eq(&Value::Int(3)), Some(true));
        assert_eq!(Value::Str("a".into()).sql_eq(&Value::Str("b".into())), Some(false));
        assert_eq!(Value::Bool(true).sql_eq(&Value::Bool(true)), Some(true));
    }

    #[test]
    fn sql_eq_numeric_promotion() {
        assert_eq!(Value::Int(3).sql_eq(&Value::Float(3.0)), Some(true));
        assert_eq!(Value::Float(2.5).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn sql_eq_cross_type_unknown() {
        assert_eq!(Value::Str("3".into()).sql_eq(&Value::Int(3)), None);
        assert_eq!(Value::Bool(true).sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Bool(false).sql_eq(&Value::Str("false".into())), None);
    }

    #[test]
    fn ordered_comparable_only_numbers() {
        assert!(Value::Int(1).ordered_comparable(&Value::Float(2.0)));
        assert!(!Value::Str("a".into()).ordered_comparable(&Value::Str("b".into())));
        assert!(!Value::Bool(true).ordered_comparable(&Value::Int(1)));
    }

    #[test]
    fn truth_tables() {
        use Truth::*;
        // AND
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(Unknown.and(Unknown), Unknown);
        // OR
        assert_eq!(False.or(False), False);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(Unknown.or(Unknown), Unknown);
        // NOT
        assert_eq!(True.not(), False);
        assert_eq!(Unknown.not(), Unknown);
    }

    #[test]
    fn display_round_trippable_forms() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Bool(true).to_string(), "TRUE");
        assert_eq!(Value::Str("it's".into()).to_string(), "'it''s'");
    }

    #[test]
    fn truth_from_option() {
        assert_eq!(Truth::from(Some(true)), Truth::True);
        assert_eq!(Truth::from(None), Truth::Unknown);
    }
}
