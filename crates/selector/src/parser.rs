//! Recursive-descent parser for JMS message selectors.
//!
//! Grammar (SQL-92 conditional expression subset, JMS 1.1 §3.8.1):
//!
//! ```text
//! selector    := or_expr
//! or_expr     := and_expr (OR and_expr)*
//! and_expr    := not_expr (AND not_expr)*
//! not_expr    := NOT not_expr | predicate
//! predicate   := additive ( cmp_op additive
//!                         | [NOT] BETWEEN additive AND additive
//!                         | [NOT] IN '(' string (',' string)* ')'
//!                         | [NOT] LIKE string [ESCAPE string]
//!                         | IS [NOT] NULL )?
//! additive    := multiplic (('+'|'-') multiplic)*
//! multiplic   := unary (('*'|'/') unary)*
//! unary       := '-' unary | '+' unary | primary
//! primary     := literal | identifier | '(' or_expr ')'
//! ```

use crate::ast::{ArithOp, CmpOp, Expr};
use crate::lexer::{tokenize, Keyword, LexError, Token, TokenKind};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error raised while parsing a selector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParseError {
    /// Byte offset in the selector string (input length for "unexpected
    /// end of input").
    pub offset: usize,
    /// Explanation of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { offset: e.offset, message: e.message }
    }
}

/// Parses a selector string into an [`Expr`].
///
/// # Errors
///
/// Returns a [`ParseError`] with a byte offset for syntactically invalid
/// selectors (JMS mandates rejecting them at subscription time).
///
/// # Examples
///
/// ```
/// use rjms_selector::parse;
/// assert!(parse("JMSPriority >= 7 OR urgent = TRUE").is_ok());
/// assert!(parse("color = ").is_err());
/// ```
pub fn parse(input: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0, input_len: input.len() };
    let expr = p.or_expr()?;
    if let Some(tok) = p.peek() {
        return Err(ParseError {
            offset: tok.offset,
            message: format!("unexpected {} after end of expression", tok.kind),
        });
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eof_error(&self, expected: &str) -> ParseError {
        ParseError {
            offset: self.input_len,
            message: format!("unexpected end of input, expected {expected}"),
        }
    }

    fn error_at(&self, tok: &Token, expected: &str) -> ParseError {
        ParseError {
            offset: tok.offset,
            message: format!("expected {expected}, found {}", tok.kind),
        }
    }

    /// Consumes the next token if it is the given keyword.
    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if matches!(self.peek(), Some(Token { kind: TokenKind::Keyword(k), .. }) if *k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<(), ParseError> {
        match self.next() {
            Some(Token { kind: TokenKind::Keyword(k), .. }) if k == kw => Ok(()),
            Some(tok) => Err(self.error_at(&tok, &format!("keyword `{kw}`"))),
            None => Err(self.eof_error(&format!("keyword `{kw}`"))),
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(tok) if tok.kind == *kind => Ok(()),
            Some(tok) => Err(self.error_at(&tok, what)),
            None => Err(self.eof_error(what)),
        }
    }

    fn expect_string(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next() {
            Some(Token { kind: TokenKind::Str(s), .. }) => Ok(s),
            Some(tok) => Err(self.error_at(&tok, what)),
            None => Err(self.eof_error(what)),
        }
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_keyword(Keyword::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.eat_keyword(Keyword::And) {
            let rhs = self.not_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_keyword(Keyword::Not) {
            let inner = self.not_expr()?;
            Ok(Expr::Not(Box::new(inner)))
        } else {
            self.predicate()
        }
    }

    /// An additive expression optionally followed by one predicate suffix.
    fn predicate(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.additive()?;

        // Comparison operators.
        let cmp = match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Eq) => Some(CmpOp::Eq),
            Some(TokenKind::Ne) => Some(CmpOp::Ne),
            Some(TokenKind::Lt) => Some(CmpOp::Lt),
            Some(TokenKind::Le) => Some(CmpOp::Le),
            Some(TokenKind::Gt) => Some(CmpOp::Gt),
            Some(TokenKind::Ge) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = cmp {
            self.pos += 1;
            let rhs = self.additive()?;
            return Ok(Expr::cmp(op, lhs, rhs));
        }

        // IS [NOT] NULL.
        if self.eat_keyword(Keyword::Is) {
            let negated = self.eat_keyword(Keyword::Not);
            self.expect_keyword(Keyword::Null)?;
            return Ok(Expr::IsNull { expr: Box::new(lhs), negated });
        }

        // [NOT] BETWEEN / IN / LIKE.
        let negated = self.eat_keyword(Keyword::Not);
        if self.eat_keyword(Keyword::Between) {
            let lo = self.additive()?;
            self.expect_keyword(Keyword::And)?;
            let hi = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if self.eat_keyword(Keyword::In) {
            self.expect_kind(&TokenKind::LParen, "`(`")?;
            let mut list = vec![self.expect_string("string literal")?];
            while matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Comma)) {
                self.pos += 1;
                list.push(self.expect_string("string literal")?);
            }
            self.expect_kind(&TokenKind::RParen, "`)`")?;
            return Ok(Expr::InList { expr: Box::new(lhs), list, negated });
        }
        if self.eat_keyword(Keyword::Like) {
            let pattern = self.expect_string("pattern string")?;
            let escape = if self.eat_keyword(Keyword::Escape) {
                let esc = self.expect_string("escape string")?;
                let mut chars = esc.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Some(c),
                    _ => {
                        return Err(ParseError {
                            offset: self.tokens[self.pos - 1].offset,
                            message: format!("ESCAPE must be a single character, got '{esc}'"),
                        })
                    }
                }
            } else {
                None
            };
            return Ok(Expr::Like { expr: Box::new(lhs), pattern, escape, negated });
        }
        if negated {
            // We consumed NOT but found no BETWEEN/IN/LIKE after it.
            return match self.peek() {
                Some(tok) => Err(self.error_at(tok, "BETWEEN, IN or LIKE after NOT")),
                None => Err(self.eof_error("BETWEEN, IN or LIKE after NOT")),
            };
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Plus) => ArithOp::Add,
                Some(TokenKind::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Expr::arith(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Star) => ArithOp::Mul,
                Some(TokenKind::Slash) => ArithOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::arith(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Minus) => {
                self.pos += 1;
                let inner = self.unary()?;
                // Fold negation into numeric literals for canonical ASTs.
                Ok(Expr::neg(inner))
            }
            Some(TokenKind::Plus) => {
                self.pos += 1;
                self.unary()
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            None => Err(self.eof_error("an expression")),
            Some(tok) => match tok.kind {
                TokenKind::Int(v) => Ok(Expr::Literal(Value::Int(v))),
                TokenKind::Float(v) => Ok(Expr::Literal(Value::Float(v))),
                TokenKind::Str(s) => Ok(Expr::Literal(Value::Str(s))),
                TokenKind::Keyword(Keyword::True) => Ok(Expr::Literal(Value::Bool(true))),
                TokenKind::Keyword(Keyword::False) => Ok(Expr::Literal(Value::Bool(false))),
                TokenKind::Ident(name) => Ok(Expr::Ident(name)),
                TokenKind::LParen => {
                    let inner = self.or_expr()?;
                    self.expect_kind(&TokenKind::RParen, "`)`")?;
                    Ok(inner)
                }
                _ => Err(self.error_at(&tok, "a literal, identifier or `(`")),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ArithOp, CmpOp};

    fn ident(s: &str) -> Expr {
        Expr::Ident(s.into())
    }

    fn int(v: i64) -> Expr {
        Expr::Literal(Value::Int(v))
    }

    #[test]
    fn parses_simple_comparison() {
        let e = parse("price < 10").unwrap();
        assert_eq!(e, Expr::cmp(CmpOp::Lt, ident("price"), int(10)));
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let e = parse("a = 1 OR b = 2 AND c = 3").unwrap();
        match e {
            Expr::Or(lhs, rhs) => {
                assert!(matches!(*lhs, Expr::Cmp { .. }));
                assert!(matches!(*rhs, Expr::And(_, _)));
            }
            other => panic!("expected OR at top, got {other:?}"),
        }
    }

    #[test]
    fn not_binds_tighter_than_and() {
        let e = parse("NOT a = 1 AND b = 2").unwrap();
        match e {
            Expr::And(lhs, _) => assert!(matches!(*lhs, Expr::Not(_))),
            other => panic!("expected AND at top, got {other:?}"),
        }
    }

    #[test]
    fn multiplication_binds_tighter_than_addition() {
        let e = parse("a + b * 2 = 10").unwrap();
        match e {
            Expr::Cmp { lhs, .. } => match *lhs {
                Expr::Arith { op: ArithOp::Add, rhs, .. } => {
                    assert!(matches!(*rhs, Expr::Arith { op: ArithOp::Mul, .. }))
                }
                other => panic!("expected +, got {other:?}"),
            },
            other => panic!("expected comparison, got {other:?}"),
        }
    }

    #[test]
    fn parses_between() {
        let e = parse("weight BETWEEN 2 AND 5").unwrap();
        assert_eq!(
            e,
            Expr::Between {
                expr: Box::new(ident("weight")),
                lo: Box::new(int(2)),
                hi: Box::new(int(5)),
                negated: false,
            }
        );
    }

    #[test]
    fn parses_not_between() {
        let e = parse("w NOT BETWEEN 1 AND 2").unwrap();
        assert!(matches!(e, Expr::Between { negated: true, .. }));
    }

    #[test]
    fn between_bounds_may_be_arithmetic() {
        let e = parse("x BETWEEN lo + 1 AND hi * 2").unwrap();
        match e {
            Expr::Between { lo, hi, .. } => {
                assert!(matches!(*lo, Expr::Arith { op: ArithOp::Add, .. }));
                assert!(matches!(*hi, Expr::Arith { op: ArithOp::Mul, .. }));
            }
            other => panic!("expected BETWEEN, got {other:?}"),
        }
    }

    #[test]
    fn parses_in_list() {
        let e = parse("country IN ('UK', 'US', 'DE')").unwrap();
        assert_eq!(
            e,
            Expr::InList {
                expr: Box::new(ident("country")),
                list: vec!["UK".into(), "US".into(), "DE".into()],
                negated: false,
            }
        );
    }

    #[test]
    fn parses_like_with_escape() {
        let e = parse(r"name LIKE 'a\_b%' ESCAPE '\'").unwrap();
        assert_eq!(
            e,
            Expr::Like {
                expr: Box::new(ident("name")),
                pattern: r"a\_b%".into(),
                escape: Some('\\'),
                negated: false,
            }
        );
    }

    #[test]
    fn parses_is_null_variants() {
        assert!(matches!(parse("x IS NULL").unwrap(), Expr::IsNull { negated: false, .. }));
        assert!(matches!(parse("x IS NOT NULL").unwrap(), Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn unary_minus_folds_into_literals() {
        assert_eq!(parse("x = -5").unwrap(), Expr::cmp(CmpOp::Eq, ident("x"), int(-5)));
        assert!(matches!(
            parse("x = -y").unwrap(),
            Expr::Cmp { rhs, .. } if matches!(*rhs, Expr::Neg(_))
        ));
    }

    #[test]
    fn boolean_literals() {
        assert_eq!(parse("TRUE").unwrap(), Expr::Literal(Value::Bool(true)));
        assert_eq!(
            parse("urgent = FALSE").unwrap(),
            Expr::cmp(CmpOp::Eq, ident("urgent"), Expr::Literal(Value::Bool(false)))
        );
    }

    #[test]
    fn parenthesized_grouping() {
        let e = parse("(a = 1 OR b = 2) AND c = 3").unwrap();
        match e {
            Expr::And(lhs, _) => assert!(matches!(*lhs, Expr::Or(_, _))),
            other => panic!("expected AND, got {other:?}"),
        }
    }

    #[test]
    fn error_on_trailing_tokens() {
        let err = parse("a = 1 b").unwrap_err();
        assert!(err.message.contains("after end of expression"));
        assert_eq!(err.offset, 6);
    }

    #[test]
    fn error_on_missing_rhs() {
        let err = parse("a = ").unwrap_err();
        assert!(err.message.contains("end of input"));
    }

    #[test]
    fn error_on_not_without_predicate() {
        let err = parse("a NOT 5").unwrap_err();
        assert!(err.message.contains("BETWEEN, IN or LIKE"));
    }

    #[test]
    fn error_on_multichar_escape() {
        let err = parse("a LIKE 'x%' ESCAPE 'ab'").unwrap_err();
        assert!(err.message.contains("single character"));
    }

    #[test]
    fn error_on_nonstring_in_list() {
        assert!(parse("a IN (1, 2)").is_err());
    }

    #[test]
    fn deeply_nested_parentheses() {
        let sel = format!("{}x = 1{}", "(".repeat(100), ")".repeat(100));
        assert!(parse(&sel).is_ok());
    }

    #[test]
    fn keywords_not_usable_as_identifiers() {
        assert!(parse("BETWEEN = 1").is_err());
    }

    #[test]
    fn realistic_presence_selector() {
        // The paper's motivating scenario: presence updates of friends.
        let sel = "msgType = 'presence' AND (userId IN ('alice', 'bob') OR broadcast = TRUE) \
                   AND priority BETWEEN 3 AND 9 AND device NOT LIKE 'test%'";
        let e = parse(sel).unwrap();
        assert!(e.node_count() > 10);
    }
}
