//! Abstract syntax tree of JMS message selector expressions.
//!
//! The grammar is the SQL-92 conditional-expression subset mandated by the
//! JMS 1.1 specification §3.8.1. The [`std::fmt::Display`] implementation
//! pretty-prints an expression back to valid selector syntax; the property
//! test `display_reparse_roundtrip` in `tests/proptests.rs` guarantees that
//! `parse(expr.to_string())` reproduces `expr`.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The selector-syntax spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl ArithOp {
    /// The selector-syntax spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A selector expression.
///
/// # Examples
///
/// ```
/// use rjms_selector::parse;
/// let e = parse("color = 'red' AND weight BETWEEN 2 AND 5").unwrap();
/// // Display prints fully parenthesized canonical selector syntax.
/// assert_eq!(
///     e.to_string(),
///     "((color) = ('red')) AND ((weight) BETWEEN (2) AND (5))"
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Literal value (`'red'`, `42`, `2.5`, `TRUE`).
    Literal(Value),
    /// Property or header-field reference (`color`, `JMSPriority`).
    Ident(String),
    /// Logical negation `NOT e`.
    Not(Box<Expr>),
    /// Conjunction `a AND b`.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction `a OR b`.
    Or(Box<Expr>, Box<Expr>),
    /// Comparison `a <op> b`.
    Cmp {
        /// The operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Arithmetic `a <op> b`.
    Arith {
        /// The operator.
        op: ArithOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary minus `-e`.
    Neg(Box<Expr>),
    /// `e [NOT] BETWEEN lo AND hi`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
        /// Whether the test is negated.
        negated: bool,
    },
    /// `e [NOT] IN ('a', 'b', ...)`.
    InList {
        /// Tested expression (an identifier per JMS, but any string-valued
        /// expression is accepted).
        expr: Box<Expr>,
        /// The candidate strings.
        list: Vec<String>,
        /// Whether the test is negated.
        negated: bool,
    },
    /// `e [NOT] LIKE 'pat%' [ESCAPE '\']`.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern with `%` (any run) and `_` (any single char) wildcards.
        pattern: String,
        /// Optional escape character.
        escape: Option<char>,
        /// Whether the test is negated.
        negated: bool,
    },
    /// `e IS [NOT] NULL`.
    IsNull {
        /// Tested expression (an identifier per JMS).
        expr: Box<Expr>,
        /// Whether the test is negated (`IS NOT NULL`).
        negated: bool,
    },
}

impl Expr {
    /// Convenience constructor for a comparison.
    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// Convenience constructor for an arithmetic operation.
    pub fn arith(op: ArithOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Arith { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// Negation smart constructor: folds negation into numeric literals
    /// (`-5` is the literal −5, not `Neg(5)`), which is the canonical form
    /// the parser produces.
    #[allow(clippy::should_implement_trait)] // associated constructor, not `-expr`
    pub fn neg(e: Expr) -> Expr {
        match e {
            Expr::Literal(Value::Int(v)) => Expr::Literal(Value::Int(v.wrapping_neg())),
            Expr::Literal(Value::Float(v)) => Expr::Literal(Value::Float(-v)),
            other => Expr::Neg(Box::new(other)),
        }
    }

    /// Number of AST nodes; a proxy for the per-filter evaluation cost
    /// (`t_fltr` in the paper's model grows with selector complexity).
    pub fn node_count(&self) -> usize {
        1 + match self {
            Expr::Literal(_) | Expr::Ident(_) => 0,
            Expr::Not(e) | Expr::Neg(e) => e.node_count(),
            Expr::And(a, b) | Expr::Or(a, b) => a.node_count() + b.node_count(),
            Expr::Cmp { lhs, rhs, .. } | Expr::Arith { lhs, rhs, .. } => {
                lhs.node_count() + rhs.node_count()
            }
            Expr::Between { expr, lo, hi, .. } => {
                expr.node_count() + lo.node_count() + hi.node_count()
            }
            Expr::InList { expr, .. } => expr.node_count(),
            Expr::Like { expr, .. } => expr.node_count(),
            Expr::IsNull { expr, .. } => expr.node_count(),
        }
    }

    /// All property identifiers referenced by the expression.
    pub fn referenced_properties(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_idents(&mut out);
        out
    }

    fn collect_idents<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Literal(_) => {}
            Expr::Ident(name) => out.push(name),
            Expr::Not(e) | Expr::Neg(e) => e.collect_idents(out),
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_idents(out);
                b.collect_idents(out);
            }
            Expr::Cmp { lhs, rhs, .. } | Expr::Arith { lhs, rhs, .. } => {
                lhs.collect_idents(out);
                rhs.collect_idents(out);
            }
            Expr::Between { expr, lo, hi, .. } => {
                expr.collect_idents(out);
                lo.collect_idents(out);
                hi.collect_idents(out);
            }
            Expr::InList { expr, .. } | Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => {
                expr.collect_idents(out)
            }
        }
    }
}

impl fmt::Display for Expr {
    /// Prints fully parenthesized canonical selector syntax, guaranteeing an
    /// unambiguous re-parse.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Ident(name) => f.write_str(name),
            Expr::Not(e) => write!(f, "NOT ({e})"),
            Expr::And(a, b) => write!(f, "({a}) AND ({b})"),
            Expr::Or(a, b) => write!(f, "({a}) OR ({b})"),
            Expr::Cmp { op, lhs, rhs } => write!(f, "({lhs}) {op} ({rhs})"),
            Expr::Arith { op, lhs, rhs } => write!(f, "({lhs}) {op} ({rhs})"),
            Expr::Neg(e) => write!(f, "-({e})"),
            Expr::Between { expr, lo, hi, negated } => write!(
                f,
                "({expr}) {}BETWEEN ({lo}) AND ({hi})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList { expr, list, negated } => {
                write!(f, "({expr}) {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, s) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "'{}'", s.replace('\'', "''"))?;
                }
                f.write_str(")")
            }
            Expr::Like { expr, pattern, escape, negated } => {
                write!(
                    f,
                    "({expr}) {}LIKE '{}'",
                    if *negated { "NOT " } else { "" },
                    pattern.replace('\'', "''")
                )?;
                if let Some(c) = escape {
                    let esc = if *c == '\'' { "''".to_owned() } else { c.to_string() };
                    write!(f, " ESCAPE '{esc}'")?;
                }
                Ok(())
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr}) IS {}NULL", if *negated { "NOT " } else { "" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_literal_forms() {
        assert_eq!(Expr::Literal(Value::Int(5)).to_string(), "5");
        assert_eq!(Expr::Ident("color".into()).to_string(), "color");
    }

    #[test]
    fn display_nested_expression() {
        let e = Expr::And(
            Box::new(Expr::cmp(
                CmpOp::Eq,
                Expr::Ident("color".into()),
                Expr::Literal(Value::from("red")),
            )),
            Box::new(Expr::IsNull { expr: Box::new(Expr::Ident("size".into())), negated: true }),
        );
        assert_eq!(e.to_string(), "((color) = ('red')) AND ((size) IS NOT NULL)");
    }

    #[test]
    fn node_count_counts_all_nodes() {
        let e = Expr::cmp(
            CmpOp::Lt,
            Expr::arith(ArithOp::Add, Expr::Ident("a".into()), Expr::Literal(Value::Int(1))),
            Expr::Literal(Value::Int(10)),
        );
        // Cmp + Arith + Ident + Lit + Lit = 5
        assert_eq!(e.node_count(), 5);
    }

    #[test]
    fn referenced_properties_in_order() {
        let e = Expr::Between {
            expr: Box::new(Expr::Ident("w".into())),
            lo: Box::new(Expr::Ident("lo".into())),
            hi: Box::new(Expr::Literal(Value::Int(9))),
            negated: false,
        };
        assert_eq!(e.referenced_properties(), vec!["w", "lo"]);
    }

    #[test]
    fn display_escapes_quotes() {
        let e = Expr::InList {
            expr: Box::new(Expr::Ident("name".into())),
            list: vec!["o'brien".into()],
            negated: false,
        };
        assert_eq!(e.to_string(), "(name) IN ('o''brien')");
    }
}
