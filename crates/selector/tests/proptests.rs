//! Property-based tests for the selector language.
//!
//! Two core invariants:
//! 1. **Display → reparse round-trip**: pretty-printing any AST produces a
//!    selector string that parses back to the identical AST.
//! 2. **Evaluator totality**: evaluation never panics, for arbitrary ASTs
//!    against arbitrary property maps.

use proptest::prelude::*;
use rjms_selector::ast::{ArithOp, CmpOp, Expr};
use rjms_selector::eval::evaluate;
use rjms_selector::value::Value;
use rjms_selector::{parse, Selector};
use std::collections::HashMap;

/// Strategy for property identifiers that are not reserved words.
fn ident_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_]{0,8}".prop_filter("not a keyword", |s| {
        !matches!(
            s.to_ascii_uppercase().as_str(),
            "AND"
                | "OR"
                | "NOT"
                | "BETWEEN"
                | "IN"
                | "LIKE"
                | "ESCAPE"
                | "IS"
                | "NULL"
                | "TRUE"
                | "FALSE"
        )
    })
}

/// Strategy for literal values.
///
/// Floats are restricted to finite values with an exact decimal
/// representation round-trip (proptest's f64 can produce values whose
/// Display→parse round-trip is exact in Rust, which is what we rely on).
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        (-1.0e6f64..1.0e6).prop_map(Value::Float),
        "[a-zA-Z0-9 '%_]{0,12}".prop_map(Value::Str),
    ]
}

/// Strategy for arbitrary selector expressions.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        value_strategy().prop_map(Expr::Literal),
        ident_strategy().prop_map(Expr::Ident),
    ];
    leaf.prop_recursive(5, 64, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (
                prop_oneof![
                    Just(CmpOp::Eq),
                    Just(CmpOp::Ne),
                    Just(CmpOp::Lt),
                    Just(CmpOp::Le),
                    Just(CmpOp::Gt),
                    Just(CmpOp::Ge)
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::cmp(op, a, b)),
            (
                prop_oneof![
                    Just(ArithOp::Add),
                    Just(ArithOp::Sub),
                    Just(ArithOp::Mul),
                    Just(ArithOp::Div)
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::arith(op, a, b)),
            // Expr::neg folds literal negation, matching parser canonical form.
            inner.clone().prop_map(Expr::neg),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, negated)| Expr::Between {
                    expr: Box::new(e),
                    lo: Box::new(lo),
                    hi: Box::new(hi),
                    negated,
                }
            ),
            (inner.clone(), prop::collection::vec("[a-zA-Z0-9']{0,8}", 1..4), any::<bool>())
                .prop_map(|(e, list, negated)| Expr::InList { expr: Box::new(e), list, negated }),
            (inner.clone(), "[a-zA-Z0-9%_]{0,10}", any::<bool>()).prop_map(
                |(e, pattern, negated)| Expr::Like {
                    expr: Box::new(e),
                    pattern,
                    escape: None,
                    negated,
                }
            ),
            (inner.clone(), any::<bool>())
                .prop_map(|(e, negated)| Expr::IsNull { expr: Box::new(e), negated }),
        ]
    })
}

/// Strategy for property maps.
fn props_strategy() -> impl Strategy<Value = HashMap<String, Value>> {
    prop::collection::hash_map(ident_strategy(), value_strategy(), 0..6)
}

/// Compares expressions structurally, treating float literals as equal when
/// both bit patterns match after a Display/parse round-trip (our Display
/// prints shortest-round-trip floats, so exact equality holds).
fn expr_eq(a: &Expr, b: &Expr) -> bool {
    a == b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn display_reparse_roundtrip(expr in expr_strategy()) {
        let printed = expr.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse `{printed}`: {e}"));
        prop_assert!(
            expr_eq(&expr, &reparsed),
            "round-trip mismatch:\n  original: {expr:?}\n  printed:  {printed}\n  reparsed: {reparsed:?}"
        );
    }

    #[test]
    fn evaluation_never_panics(expr in expr_strategy(), props in props_strategy()) {
        // Totality: any AST against any property map evaluates to a Truth.
        let _ = evaluate(&expr, &props);
    }

    #[test]
    fn negation_involution(expr in expr_strategy(), props in props_strategy()) {
        // NOT (NOT e) has the same truth value as e.
        let double = Expr::Not(Box::new(Expr::Not(Box::new(expr.clone()))));
        prop_assert_eq!(evaluate(&expr, &props), evaluate(&double, &props));
    }

    #[test]
    fn and_is_commutative(
        a in expr_strategy(),
        b in expr_strategy(),
        props in props_strategy()
    ) {
        let ab = Expr::And(Box::new(a.clone()), Box::new(b.clone()));
        let ba = Expr::And(Box::new(b), Box::new(a));
        prop_assert_eq!(evaluate(&ab, &props), evaluate(&ba, &props));
    }

    #[test]
    fn de_morgan(
        a in expr_strategy(),
        b in expr_strategy(),
        props in props_strategy()
    ) {
        // NOT (a AND b) == (NOT a) OR (NOT b) in three-valued logic.
        let lhs = Expr::Not(Box::new(Expr::And(Box::new(a.clone()), Box::new(b.clone()))));
        let rhs = Expr::Or(
            Box::new(Expr::Not(Box::new(a))),
            Box::new(Expr::Not(Box::new(b))),
        );
        prop_assert_eq!(evaluate(&lhs, &props), evaluate(&rhs, &props));
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in "[ -~]{0,64}") {
        // Arbitrary printable ASCII must either parse or produce an error —
        // never a panic.
        let _ = Selector::parse(&input);
    }

    #[test]
    fn selector_matches_equals_truth_true(
        expr in expr_strategy(),
        props in props_strategy()
    ) {
        use rjms_selector::value::Truth;
        let m = rjms_selector::eval::matches(&expr, &props);
        prop_assert_eq!(m, evaluate(&expr, &props) == Truth::True);
    }
}

#[test]
fn like_match_agrees_with_naive_regex_semantics() {
    // Differential test of the LIKE matcher against a naive recursive
    // implementation on a crafted corpus.
    fn naive(text: &[char], pat: &[char]) -> bool {
        match (text.first(), pat.first()) {
            (_, None) => text.is_empty(),
            (_, Some('%')) => (0..=text.len()).any(|k| naive(&text[k..], &pat[1..])),
            (Some(t), Some('_')) => {
                let _ = t;
                naive(&text[1..], &pat[1..])
            }
            (Some(t), Some(p)) => *t == *p && naive(&text[1..], &pat[1..]),
            (None, Some(_)) => false,
        }
    }
    let texts = ["", "a", "ab", "abc", "aab", "banana", "aaaa", "xyz"];
    let pats = ["", "%", "_", "a%", "%a", "a_c", "%an%", "a%a", "____", "%%b", "b_n_n_"];
    for t in texts {
        for p in pats {
            let tc: Vec<char> = t.chars().collect();
            let pc: Vec<char> = p.chars().collect();
            assert_eq!(
                rjms_selector::eval::like_match(t, p, None),
                naive(&tc, &pc),
                "mismatch for text={t:?} pattern={p:?}"
            );
        }
    }
}
