//! JMS 1.1 §3.8.1 conformance table: selector syntax and semantics cases
//! drawn from the specification text and its examples, evaluated against
//! fixed property sets.

use rjms_selector::value::{Truth, Value};
use rjms_selector::{evaluate, parse, Selector};
use std::collections::HashMap;

fn props(pairs: &[(&str, Value)]) -> HashMap<String, Value> {
    pairs.iter().map(|(k, v)| ((*k).to_owned(), v.clone())).collect()
}

#[track_caller]
fn check(selector: &str, pairs: &[(&str, Value)], expect: Truth) {
    let expr = parse(selector).unwrap_or_else(|e| panic!("`{selector}` must parse: {e}"));
    let got = evaluate(&expr, &props(pairs));
    assert_eq!(got, expect, "selector `{selector}`");
}

#[test]
fn spec_example_selector() {
    // "JMSType = 'car' AND color = 'blue' AND weight > 2500" (§3.8.1.1).
    let sel = "JMSType = 'car' AND color = 'blue' AND weight > 2500";
    check(
        sel,
        &[("JMSType", "car".into()), ("color", "blue".into()), ("weight", 3000i64.into())],
        Truth::True,
    );
    check(
        sel,
        &[("JMSType", "car".into()), ("color", "red".into()), ("weight", 3000i64.into())],
        Truth::False,
    );
}

#[test]
fn identifiers_are_case_sensitive_keywords_are_not() {
    check("Age = 10 and AGE = 20", &[("Age", 10i64.into()), ("AGE", 20i64.into())], Truth::True);
    assert!(parse("a BeTwEeN 1 AnD 3").is_ok());
}

#[test]
fn reserved_words_rejected_as_identifiers() {
    for kw in ["NULL", "NOT", "AND", "OR", "BETWEEN", "LIKE", "IN", "IS", "ESCAPE"] {
        assert!(
            parse(&format!("{kw} = 1")).is_err(),
            "reserved word `{kw}` must not parse as an identifier"
        );
    }
    // TRUE/FALSE are *literals*, not identifiers: `TRUE = 1` parses (and
    // evaluates to unknown — boolean vs number), but they can never bind a
    // property value.
    check("TRUE = 1", &[("TRUE", 1i64.into())], Truth::Unknown);
    check("FALSE = FALSE", &[], Truth::True);
}

#[test]
fn numeric_literal_forms() {
    check("x = 57", &[("x", 57i64.into())], Truth::True);
    check("x = 57.0", &[("x", 57i64.into())], Truth::True);
    check("x = 5.7E1", &[("x", 57i64.into())], Truth::True);
    check("x = +57", &[("x", 57i64.into())], Truth::True);
    check("x = -57", &[("x", (-57i64).into())], Truth::True);
}

#[test]
fn string_literals_single_quotes_doubled_escape() {
    check("s = 'literal'", &[("s", "literal".into())], Truth::True);
    check("s = 'literal''s'", &[("s", "literal's".into())], Truth::True);
    // String comparison is case sensitive.
    check("s = 'Literal'", &[("s", "literal".into())], Truth::False);
}

#[test]
fn between_is_inclusive_sugar() {
    // "age BETWEEN 15 AND 19 is equivalent to age >= 15 AND age <= 19".
    for age in [14i64, 15, 17, 19, 20] {
        let expect = Truth::from((15..=19).contains(&age));
        check("age BETWEEN 15 AND 19", &[("age", age.into())], expect);
        check("age >= 15 AND age <= 19", &[("age", age.into())], expect);
    }
    // "age NOT BETWEEN 15 AND 19" ≡ "age < 15 OR age > 19".
    check("age NOT BETWEEN 15 AND 19", &[("age", 20i64.into())], Truth::True);
}

#[test]
fn in_list_spec_semantics() {
    // "Country IN ('UK', 'US', 'France')".
    let sel = "Country IN ('UK', 'US', 'France')";
    check(sel, &[("Country", "UK".into())], Truth::True);
    check(sel, &[("Country", "Peru".into())], Truth::False);
    // Equivalent to the OR expansion.
    check(
        "Country = 'UK' OR Country = 'US' OR Country = 'France'",
        &[("Country", "UK".into())],
        Truth::True,
    );
    // "If identifier of an IN ... operation is NULL, the value ... is
    // unknown."
    check(sel, &[], Truth::Unknown);
    check("Country NOT IN ('UK')", &[], Truth::Unknown);
}

#[test]
fn like_spec_examples() {
    // phone LIKE '12%3' — '123' and '12993' true, '1234' false.
    check("phone LIKE '12%3'", &[("phone", "123".into())], Truth::True);
    check("phone LIKE '12%3'", &[("phone", "12993".into())], Truth::True);
    check("phone LIKE '12%3'", &[("phone", "1234".into())], Truth::False);
    // word LIKE 'l_se' — 'lose' true, 'loose' false.
    check("word LIKE 'l_se'", &[("word", "lose".into())], Truth::True);
    check("word LIKE 'l_se'", &[("word", "loose".into())], Truth::False);
    // underscored LIKE '\_%' ESCAPE '\' — '_foo' true, 'bar' false.
    check(r"underscored LIKE '\_%' ESCAPE '\'", &[("underscored", "_foo".into())], Truth::True);
    check(r"underscored LIKE '\_%' ESCAPE '\'", &[("underscored", "bar".into())], Truth::False);
    // NULL identifier → unknown.
    check("phone NOT LIKE '12%3'", &[], Truth::Unknown);
}

#[test]
fn is_null_spec_examples() {
    // "prop_name IS NULL" — true when the property is absent.
    check("prop_name IS NULL", &[], Truth::True);
    check("prop_name IS NULL", &[("prop_name", 1i64.into())], Truth::False);
    check("prop_name IS NOT NULL", &[("prop_name", 1i64.into())], Truth::True);
}

#[test]
fn three_valued_logic_tables() {
    // §3.8.1.2: SQL 92 NULL semantics.
    // unknown AND false = false
    check("missing = 1 AND 1 = 2", &[], Truth::False);
    // unknown AND true = unknown
    check("missing = 1 AND 1 = 1", &[], Truth::Unknown);
    // unknown OR true = true
    check("missing = 1 OR 1 = 1", &[], Truth::True);
    // unknown OR false = unknown
    check("missing = 1 OR 1 = 2", &[], Truth::Unknown);
    // NOT unknown = unknown
    check("NOT missing = 1", &[], Truth::Unknown);
}

#[test]
fn arithmetic_precedence_and_unary() {
    check(
        "a + b * c = 7",
        &[("a", 1i64.into()), ("b", 2i64.into()), ("c", 3i64.into())],
        Truth::True,
    );
    check(
        "(a + b) * c = 9",
        &[("a", 1i64.into()), ("b", 2i64.into()), ("c", 3i64.into())],
        Truth::True,
    );
    check("-a = -5", &[("a", 5i64.into())], Truth::True);
    check("a - -b = 8", &[("a", 5i64.into()), ("b", 3i64.into())], Truth::True);
}

#[test]
fn comparison_of_exact_and_approximate_numerics() {
    // "Comparison ... of exact and approximate numeric values is allowed".
    check("f > 2", &[("f", 2.5f64.into())], Truth::True);
    check("i < 2.7", &[("i", 2i64.into())], Truth::True);
    check("i = 2.0", &[("i", 2i64.into())], Truth::True);
}

#[test]
fn string_and_boolean_restricted_to_equality() {
    // "String and Boolean comparison is restricted to = and <>."
    check("s = 'a'", &[("s", "a".into())], Truth::True);
    check("s <> 'b'", &[("s", "a".into())], Truth::True);
    check("s > 'a'", &[("s", "b".into())], Truth::Unknown);
    check("b = TRUE", &[("b", true.into())], Truth::True);
    check("b <> FALSE", &[("b", true.into())], Truth::True);
    check("b >= TRUE", &[("b", true.into())], Truth::Unknown);
}

#[test]
fn type_mismatch_yields_unknown_not_error() {
    // "...comparing a boolean and a string ... the value of the expression
    // is unknown" — never a runtime error.
    check("s = 1", &[("s", "1".into())], Truth::Unknown);
    check("n = TRUE", &[("n", 1i64.into())], Truth::Unknown);
    check("n + s = 2", &[("n", 1i64.into()), ("s", "1".into())], Truth::Unknown);
}

#[test]
fn whitespace_is_insignificant() {
    let a = Selector::parse("a=1 AND b=2").unwrap();
    let b = Selector::parse("  a \t=\n 1   AND b = 2 ").unwrap();
    assert_eq!(a.expr(), b.expr());
}

#[test]
fn invalid_syntax_rejected() {
    for bad in [
        "",
        "=",
        "a =",
        "a = 1 AND",
        "a BETWEEN 1",
        "a IN ()",
        "a IN ('x',)",
        "a LIKE",
        "a IS",
        "a IS NOT",
        "(a = 1",
        "a = 1)",
        "a == 1",
        "a != 1",
        "'unclosed",
    ] {
        assert!(parse(bad).is_err(), "`{bad}` must be rejected");
    }
}
