//! Property tests for the frame codec and torn-tail recovery: round-trips
//! hold, corruption is detected, and a truncated journal is never replayed
//! past the last whole frame.

use proptest::prelude::*;
use rjms_journal::frame::{decode_frame, encode_frame, frame_len, FrameDecode};
use rjms_journal::{scratch_dir, FsyncPolicy, Journal, JournalConfig};

proptest! {
    #[test]
    fn encode_decode_roundtrip(payload in prop::collection::vec(any::<u8>(), 0..2048)) {
        let mut encoded = Vec::new();
        encode_frame(&payload, &mut encoded);
        prop_assert_eq!(encoded.len() as u64, frame_len(payload.len()));
        match decode_frame(&encoded) {
            FrameDecode::Complete { payload: decoded, consumed } => {
                prop_assert_eq!(decoded, &payload[..]);
                prop_assert_eq!(consumed, encoded.len());
            }
            other => prop_assert!(false, "whole frame decoded as {:?}", other),
        }
    }

    #[test]
    fn concatenated_frames_decode_in_order(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..16)
    ) {
        let mut encoded = Vec::new();
        for p in &payloads {
            encode_frame(p, &mut encoded);
        }
        let mut at = 0;
        for p in &payloads {
            match decode_frame(&encoded[at..]) {
                FrameDecode::Complete { payload, consumed } => {
                    prop_assert_eq!(payload, &p[..]);
                    at += consumed;
                }
                other => prop_assert!(false, "frame at {} decoded as {:?}", at, other),
            }
        }
        prop_assert_eq!(at, encoded.len());
    }

    #[test]
    fn byte_corruption_never_passes_as_the_original(
        payload in prop::collection::vec(any::<u8>(), 1..256),
        position_ratio in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut encoded = Vec::new();
        encode_frame(&payload, &mut encoded);
        let position = ((encoded.len() as f64 * position_ratio) as usize).min(encoded.len() - 1);
        encoded[position] ^= flip;
        // A flipped byte may make the frame Incomplete (length grew),
        // Corrupt (checksum/length invalid), or - if the length shrank - a
        // shorter frame whose checksum almost surely fails. What it must
        // never do is decode as Complete with the original payload.
        if let FrameDecode::Complete { payload: decoded, .. } = decode_frame(&encoded) {
            prop_assert!(
                decoded != &payload[..],
                "flip of bit pattern {:#04x} at byte {} went undetected", flip, position
            );
        }
    }

    #[test]
    fn truncation_recovers_exactly_the_whole_frames(
        payload_lens in prop::collection::vec(0usize..48, 1..12),
        cut_ratio in 0.0f64..1.0,
    ) {
        let dir = scratch_dir("prop-truncate");
        let config = JournalConfig::new(&dir).fsync(FsyncPolicy::Always);
        let (mut journal, _) = Journal::open(config.clone()).unwrap();
        let mut frame_ends = Vec::new();
        let mut total = 0u64;
        for (i, len) in payload_lens.iter().enumerate() {
            journal.append(&vec![i as u8; *len]).unwrap();
            total += frame_len(*len);
            frame_ends.push(total);
        }
        drop(journal);

        // Cut the segment anywhere in its body and reopen.
        let cut = (total as f64 * cut_ratio) as u64;
        let path = dir.join(rjms_journal::segment::segment_file_name(0));
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(cut)
            .unwrap();

        let expected = frame_ends.iter().filter(|&&end| end <= cut).count() as u64;
        let (journal, recovery) = Journal::open(config).unwrap();
        prop_assert_eq!(recovery.frames_recovered, expected);
        prop_assert_eq!(journal.next_offset(), expected);
        let replayed: Vec<_> = journal.replay(0).map(|r| r.unwrap()).collect();
        prop_assert_eq!(replayed.len() as u64, expected);
        for (offset, payload) in replayed {
            prop_assert_eq!(payload, vec![offset as u8; payload_lens[offset as usize]]);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
