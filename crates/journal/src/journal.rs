//! The journal proper: an ordered chain of segments with an offset index,
//! durability policy, recovery, and retention.

use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use crate::config::{FsyncPolicy, JournalConfig};
use crate::segment::{parse_segment_file_name, ScanTail, Segment};
use rjms_metrics::Histogram;

/// Journal failure.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// A *sealed* segment contains an invalid frame. Sealed segments were
    /// synced at rotation, so this is real corruption, not a torn tail,
    /// and recovery refuses to guess.
    Corrupt {
        /// The corrupt segment file.
        segment: PathBuf,
        /// File position of the first invalid byte.
        file_pos: u64,
    },
    /// The requested offset is below retention or at/after the append head.
    UnknownOffset(u64),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Corrupt { segment, file_pos } => {
                write!(f, "sealed segment {} corrupt at byte {file_pos}", segment.display())
            }
            JournalError::UnknownOffset(offset) => {
                write!(f, "offset {offset} is not in the journal")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

impl From<JournalError> for rjms_core::Error {
    fn from(e: JournalError) -> Self {
        match e {
            JournalError::Io(e) => rjms_core::Error::Io(e),
            JournalError::Corrupt { segment, file_pos } => {
                rjms_core::Error::JournalCorrupt { segment, file_pos }
            }
            JournalError::UnknownOffset(offset) => rjms_core::Error::UnknownOffset(offset),
        }
    }
}

/// Journal result alias.
pub type Result<T> = std::result::Result<T, JournalError>;

/// Counters describing everything the journal has done since open.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Frames appended since open.
    pub appends: u64,
    /// Payload + header bytes written since open.
    pub bytes_appended: u64,
    /// Explicit `fdatasync` calls issued (policy, rotation, and manual).
    pub fsyncs: u64,
    /// Intact frames found on disk by the recovery scan at open.
    pub frames_recovered: u64,
    /// Bytes of torn tail cut off by the recovery scan at open.
    pub torn_bytes_truncated: u64,
    /// Segments sealed and replaced with a fresh active segment.
    pub segments_rotated: u64,
    /// Sealed segments deleted by retention.
    pub segments_removed: u64,
}

/// What recovery found when the journal was opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Intact frames available for replay.
    pub frames_recovered: u64,
    /// Bytes of torn tail truncated from the active segment.
    pub torn_bytes_truncated: u64,
    /// Offset of the oldest retained frame.
    pub first_offset: u64,
    /// Offset the next append will receive.
    pub next_offset: u64,
}

/// A segmented, append-only, checksummed write-ahead log.
///
/// Offsets are dense monotonically increasing frame sequence numbers,
/// starting at 0 for the first frame ever appended; retention may remove
/// whole sealed segments from the low end.
///
/// # Examples
///
/// ```
/// use rjms_journal::{scratch_dir, FsyncPolicy, Journal, JournalConfig};
///
/// let dir = scratch_dir("journal-doc");
/// let config = JournalConfig::new(&dir).fsync(FsyncPolicy::Always);
/// let (mut journal, recovery) = Journal::open(config.clone()).unwrap();
/// assert_eq!(recovery.frames_recovered, 0);
/// let offset = journal.append(b"hello").unwrap();
/// drop(journal);
///
/// let (journal, recovery) = Journal::open(config).unwrap();
/// assert_eq!(recovery.frames_recovered, 1);
/// assert_eq!(journal.read(offset).unwrap(), b"hello");
/// std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug)]
pub struct Journal {
    config: JournalConfig,
    /// Ordered by base offset; the last entry is the active segment.
    segments: Vec<Segment>,
    appends_since_sync: u32,
    last_sync: Instant,
    stats: JournalStats,
    /// Wall-clock latency of every [`Journal::append`] call, nanoseconds.
    /// Always on (a histogram record is a handful of relaxed atomic adds);
    /// the broker registers it as `journal.append_ns` when metrics are
    /// enabled, and it feeds the measured `t_store` cost term.
    append_latency: Arc<Histogram>,
    /// Wall-clock latency of every explicit [`Journal::sync`], nanoseconds
    /// (`journal.fsync_ns` in the broker's registry).
    fsync_latency: Arc<Histogram>,
}

impl Journal {
    /// Opens (or creates) the journal in `config.dir`, scanning every
    /// segment and truncating a torn tail on the active one.
    ///
    /// # Errors
    ///
    /// I/O failure, or [`JournalError::Corrupt`] if a *sealed* segment
    /// fails validation.
    pub fn open(config: JournalConfig) -> Result<(Journal, RecoveryReport)> {
        std::fs::create_dir_all(&config.dir)?;

        let mut bases = Vec::new();
        for entry in std::fs::read_dir(&config.dir)? {
            let entry = entry?;
            if let Some(base) = entry.file_name().to_str().and_then(parse_segment_file_name) {
                bases.push((base, entry.path()));
            }
        }
        bases.sort_unstable_by_key(|(base, _)| *base);

        let mut segments = Vec::with_capacity(bases.len().max(1));
        let mut frames_recovered = 0u64;
        let mut torn_bytes_truncated = 0u64;
        let count = bases.len();
        for (index, (base, path)) in bases.into_iter().enumerate() {
            let is_active = index + 1 == count;
            let (segment, report) = Segment::open(&path, base, is_active)?;
            if let ScanTail::Torn { valid_len, invalid_bytes } = report.tail {
                if !is_active {
                    return Err(JournalError::Corrupt { segment: path, file_pos: valid_len });
                }
                torn_bytes_truncated = invalid_bytes;
            }
            // Offsets must chain across segments; a gap means a segment
            // file was deleted by hand.
            if segment.base_offset() != base
                || segments
                    .last()
                    .is_some_and(|prev: &Segment| prev.end_offset() != segment.base_offset())
            {
                return Err(JournalError::Corrupt { segment: path, file_pos: 0 });
            }
            frames_recovered += segment.frame_count() as u64;
            segments.push(segment);
        }

        if segments.is_empty() {
            segments.push(Segment::create(&config.dir, 0)?);
        }

        let journal = Journal {
            config,
            appends_since_sync: 0,
            last_sync: Instant::now(),
            stats: JournalStats {
                frames_recovered,
                torn_bytes_truncated,
                ..JournalStats::default()
            },
            segments,
            append_latency: Arc::new(Histogram::new()),
            fsync_latency: Arc::new(Histogram::new()),
        };
        let report = RecoveryReport {
            frames_recovered,
            torn_bytes_truncated,
            first_offset: journal.first_offset(),
            next_offset: journal.next_offset(),
        };
        Ok((journal, report))
    }

    fn active(&mut self) -> &mut Segment {
        self.segments.last_mut().expect("journal always has an active segment")
    }

    /// Offset of the oldest frame still on disk.
    pub fn first_offset(&self) -> u64 {
        self.segments[0].base_offset()
    }

    /// Offset the next append will be assigned.
    pub fn next_offset(&self) -> u64 {
        self.segments.last().expect("active segment").end_offset()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> JournalStats {
        self.stats
    }

    /// The shared append-latency histogram (nanoseconds per
    /// [`Journal::append`] call, including rotation and policy-driven
    /// syncs). Snapshot it — or register it in a
    /// [`rjms_metrics::MetricsRegistry`] — to observe the `t_store` cost
    /// term live.
    pub fn append_latency(&self) -> Arc<Histogram> {
        Arc::clone(&self.append_latency)
    }

    /// The shared fsync-latency histogram (nanoseconds per explicit
    /// [`Journal::sync`] call).
    pub fn fsync_latency(&self) -> Arc<Histogram> {
        Arc::clone(&self.fsync_latency)
    }

    /// The configuration the journal was opened with.
    pub fn config(&self) -> &JournalConfig {
        &self.config
    }

    fn rotate(&mut self) -> Result<()> {
        self.active().sync()?;
        self.stats.fsyncs += 1;
        let next = self.next_offset();
        self.segments.push(Segment::create(&self.config.dir.clone(), next)?);
        self.stats.segments_rotated += 1;
        self.enforce_retention()?;
        Ok(())
    }

    fn enforce_retention(&mut self) -> Result<()> {
        let Some(max_sealed) = self.config.max_sealed_segments else {
            return Ok(());
        };
        // Last segment is active and exempt.
        while self.segments.len() > max_sealed + 1 {
            let removed = self.segments.remove(0);
            std::fs::remove_file(removed.path())?;
            self.stats.segments_removed += 1;
        }
        Ok(())
    }

    /// Appends one record, applying rotation and the fsync policy, and
    /// returns the record's offset.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        let start = Instant::now();
        let result = self.append_inner(payload);
        self.append_latency.record_duration(start.elapsed());
        result
    }

    fn append_inner(&mut self, payload: &[u8]) -> Result<u64> {
        let frame_bytes = crate::frame::frame_len(payload.len());
        let needs_rotation = !self.active().is_empty()
            && (self.active().len() + frame_bytes > self.config.segment_max_bytes
                || self
                    .config
                    .segment_max_age
                    .is_some_and(|age| self.segments.last().expect("active").age() >= age));
        if needs_rotation {
            self.rotate()?;
        }

        let offset = self.active().append(payload)?;
        self.stats.appends += 1;
        self.stats.bytes_appended += frame_bytes;
        self.appends_since_sync += 1;

        let due = match self.config.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.appends_since_sync >= n,
            FsyncPolicy::Interval(interval) => self.last_sync.elapsed() >= interval,
            FsyncPolicy::Never => false,
        };
        if due {
            self.sync()?;
        }
        Ok(offset)
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        let start = Instant::now();
        self.active().sync()?;
        self.fsync_latency.record_duration(start.elapsed());
        self.stats.fsyncs += 1;
        self.appends_since_sync = 0;
        self.last_sync = Instant::now();
        Ok(())
    }

    fn segment_for(&self, offset: u64) -> Result<&Segment> {
        if offset < self.first_offset() || offset >= self.next_offset() {
            return Err(JournalError::UnknownOffset(offset));
        }
        let index = self
            .segments
            .partition_point(|s| s.base_offset() <= offset)
            .checked_sub(1)
            .ok_or(JournalError::UnknownOffset(offset))?;
        Ok(&self.segments[index])
    }

    /// Reads the payload appended at `offset`.
    pub fn read(&self, offset: u64) -> Result<Vec<u8>> {
        Ok(self.segment_for(offset)?.read(offset)?)
    }

    /// Iterates `(offset, payload)` pairs from `from` (clamped up to the
    /// retention floor) to the append head.
    pub fn replay(&self, from: u64) -> Replay<'_> {
        Replay { journal: self, next: from.max(self.first_offset()) }
    }

    /// Drops sealed segments whose every frame is below `offset` (e.g. the
    /// minimum checkpoint across consumers). The active segment survives
    /// regardless. Returns the number of segments removed.
    pub fn truncate_before(&mut self, offset: u64) -> Result<usize> {
        let mut removed = 0;
        while self.segments.len() > 1 && self.segments[0].end_offset() <= offset {
            let segment = self.segments.remove(0);
            std::fs::remove_file(segment.path())?;
            self.stats.segments_removed += 1;
            removed += 1;
        }
        Ok(removed)
    }
}

/// Iterator over journal records; see [`Journal::replay`].
#[derive(Debug)]
pub struct Replay<'a> {
    journal: &'a Journal,
    next: u64,
}

impl Iterator for Replay<'_> {
    type Item = Result<(u64, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.journal.next_offset() {
            return None;
        }
        let offset = self.next;
        self.next += 1;
        Some(self.journal.read(offset).map(|payload| (offset, payload)))
    }
}
