//! A single append-only segment file.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::frame::{decode_frame, encode_frame, frame_len, FrameDecode};

/// File extension for segment files.
pub const SEGMENT_EXTENSION: &str = "wal";

/// The file name of the segment starting at `base_offset`.
pub fn segment_file_name(base_offset: u64) -> String {
    format!("{base_offset:020}.{SEGMENT_EXTENSION}")
}

/// Parses a segment base offset back out of a file name.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let stem = name.strip_suffix(&format!(".{SEGMENT_EXTENSION}"))?;
    if stem.len() != 20 || !stem.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    stem.parse().ok()
}

/// What a recovery scan found in one segment file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanTail {
    /// The file ends exactly at a frame boundary.
    Clean,
    /// The file ends in a torn or corrupt frame starting at `valid_len`.
    Torn {
        /// File length up to and including the last intact frame.
        valid_len: u64,
        /// Bytes beyond `valid_len` that cannot be replayed.
        invalid_bytes: u64,
    },
}

/// Result of scanning a segment file during recovery.
#[derive(Debug)]
pub struct ScanReport {
    /// Byte position of each intact frame, in order.
    pub positions: Vec<u64>,
    /// Whether the file ended cleanly or in a torn tail.
    pub tail: ScanTail,
}

/// One segment: a base offset plus an append handle and an in-memory
/// frame position index.
#[derive(Debug)]
pub struct Segment {
    base_offset: u64,
    path: PathBuf,
    file: File,
    len: u64,
    /// Byte position of frame `base_offset + i` at index `i`.
    positions: Vec<u64>,
    created: Instant,
}

impl Segment {
    /// Creates a fresh, empty segment starting at `base_offset`.
    pub fn create(dir: &Path, base_offset: u64) -> io::Result<Segment> {
        let path = dir.join(segment_file_name(base_offset));
        let file = OpenOptions::new().create_new(true).read(true).write(true).open(&path)?;
        Ok(Segment {
            base_offset,
            path,
            file,
            len: 0,
            positions: Vec::new(),
            created: Instant::now(),
        })
    }

    /// Opens an existing segment file, scanning and indexing its frames.
    ///
    /// If `truncate_torn_tail` is set (the active segment during recovery),
    /// a trailing torn or corrupt frame is cut off at the last intact
    /// frame boundary; otherwise the tail state is only reported.
    pub fn open(
        path: &Path,
        base_offset: u64,
        truncate_torn_tail: bool,
    ) -> io::Result<(Segment, ScanReport)> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut contents = Vec::new();
        file.read_to_end(&mut contents)?;

        let mut positions = Vec::new();
        let mut pos = 0usize;
        loop {
            match decode_frame(&contents[pos..]) {
                FrameDecode::Complete { consumed, .. } => {
                    positions.push(pos as u64);
                    pos += consumed;
                }
                _ if pos == contents.len() => break,
                FrameDecode::Incomplete | FrameDecode::Corrupt => break,
            }
        }

        let tail = if pos == contents.len() {
            ScanTail::Clean
        } else {
            ScanTail::Torn { valid_len: pos as u64, invalid_bytes: (contents.len() - pos) as u64 }
        };

        let mut len = contents.len() as u64;
        if truncate_torn_tail {
            if let ScanTail::Torn { valid_len, .. } = tail {
                file.set_len(valid_len)?;
                file.sync_data()?;
                len = valid_len;
            }
        }
        // read_to_end left the cursor at the pre-truncation EOF; park it at
        // the valid end so the next append doesn't leave a hole.
        file.seek(io::SeekFrom::Start(len))?;

        let segment = Segment {
            base_offset,
            path: path.to_path_buf(),
            file,
            len,
            positions: positions.clone(),
            created: Instant::now(),
        };
        Ok((segment, ScanReport { positions, tail }))
    }

    /// The offset of the first frame this segment holds.
    pub fn base_offset(&self) -> u64 {
        self.base_offset
    }

    /// The offset one past the last frame in this segment.
    pub fn end_offset(&self) -> u64 {
        self.base_offset + self.positions.len() as u64
    }

    /// Number of frames in this segment.
    pub fn frame_count(&self) -> usize {
        self.positions.len()
    }

    /// Current file length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the segment holds no frames.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Age of the segment since it was created or opened.
    pub fn age(&self) -> std::time::Duration {
        self.created.elapsed()
    }

    /// Appends one frame and returns its offset. The write is buffered by
    /// the OS until [`Segment::sync`].
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        let mut encoded = Vec::with_capacity(frame_len(payload.len()) as usize);
        encode_frame(payload, &mut encoded);
        self.file.write_all(&encoded)?;
        let offset = self.end_offset();
        self.positions.push(self.len);
        self.len += encoded.len() as u64;
        Ok(offset)
    }

    /// Forces written frames to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Reads the payload of the frame at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the offset is outside this segment; the journal routes
    /// offsets to segments before calling.
    pub fn read(&self, offset: u64) -> io::Result<Vec<u8>> {
        assert!(
            offset >= self.base_offset && offset < self.end_offset(),
            "offset {offset} outside segment [{}, {})",
            self.base_offset,
            self.end_offset()
        );
        let pos = self.positions[(offset - self.base_offset) as usize];
        let end = self
            .positions
            .get((offset - self.base_offset) as usize + 1)
            .copied()
            .unwrap_or(self.len);
        let mut encoded = vec![0u8; (end - pos) as usize];
        self.file.read_exact_at(&mut encoded, pos)?;
        match decode_frame(&encoded) {
            FrameDecode::Complete { payload, .. } => Ok(payload.to_vec()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "frame at offset {offset} in {} unreadable after append: {other:?}",
                    self.path.display()
                ),
            )),
        }
    }
}
