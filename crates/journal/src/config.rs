//! Journal configuration.

use std::path::PathBuf;
use std::time::Duration;

/// When appended frames are forced to stable storage.
///
/// The policy is the knob behind the paper-extension measurement: the
/// per-message storage cost `t_store` ranges over three orders of magnitude
/// between [`FsyncPolicy::Always`] and [`FsyncPolicy::Never`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append: no acknowledged frame is ever lost,
    /// at the cost of a disk round-trip per message.
    Always,
    /// `fdatasync` once per `n` appends; at most `n - 1` acknowledged
    /// frames are exposed to loss.
    EveryN(u32),
    /// `fdatasync` when at least this much time has passed since the last
    /// sync, checked on append.
    Interval(Duration),
    /// Never sync explicitly; durability rides on the OS page cache.
    Never,
}

impl FsyncPolicy {
    /// A short label for reports and bench tables.
    pub fn label(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".to_string(),
            FsyncPolicy::EveryN(n) => format!("every-{n}"),
            FsyncPolicy::Interval(d) => format!("interval-{}ms", d.as_millis()),
            FsyncPolicy::Never => "never".to_string(),
        }
    }
}

/// Configuration for [`crate::Journal`].
///
/// # Examples
///
/// ```
/// use rjms_journal::{FsyncPolicy, JournalConfig};
///
/// let config = JournalConfig::new("/tmp/rjms-doc-journal")
///     .segment_max_bytes(4 * 1024 * 1024)
///     .fsync(FsyncPolicy::EveryN(128));
/// assert_eq!(config.fsync, FsyncPolicy::EveryN(128));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JournalConfig {
    /// Directory holding the segment files; created on open.
    pub dir: PathBuf,
    /// Size at which the active segment is sealed and a new one started.
    pub segment_max_bytes: u64,
    /// Seal the active segment when it gets older than this, even if it is
    /// below the size threshold (bounds recovery work after long idle).
    pub segment_max_age: Option<Duration>,
    /// Durability policy for appends.
    pub fsync: FsyncPolicy,
    /// Cap on *sealed* segments kept on disk; the oldest are removed first.
    /// The active segment never counts and is never removed.
    pub max_sealed_segments: Option<usize>,
}

impl JournalConfig {
    /// A configuration with defaults: 8 MiB segments, sync every 64
    /// appends, unbounded retention.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        JournalConfig {
            dir: dir.into(),
            segment_max_bytes: 8 * 1024 * 1024,
            segment_max_age: None,
            fsync: FsyncPolicy::EveryN(64),
            max_sealed_segments: None,
        }
    }

    /// Sets the segment size threshold.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn segment_max_bytes(mut self, bytes: u64) -> Self {
        assert!(bytes > 0, "segment_max_bytes must be positive");
        self.segment_max_bytes = bytes;
        self
    }

    /// Sets the segment age threshold.
    pub fn segment_max_age(mut self, age: Duration) -> Self {
        self.segment_max_age = Some(age);
        self
    }

    /// Sets the durability policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy is `EveryN(0)`.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        if let FsyncPolicy::EveryN(n) = policy {
            assert!(n > 0, "FsyncPolicy::EveryN(0) would never sync; use Never");
        }
        self.fsync = policy;
        self
    }

    /// Caps the number of sealed segments kept on disk.
    pub fn max_sealed_segments(mut self, segments: usize) -> Self {
        self.max_sealed_segments = Some(segments);
        self
    }
}
