//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Self-contained so the journal has no external dependency for frame
//! checksums; the table is built at compile time.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sensitive_to_single_bit() {
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
        assert_ne!(crc32(b"abc"), crc32(b"abcd"));
    }
}
