//! `rjms-journal` — a segmented write-ahead log for the broker.
//!
//! The paper's model treats the FioranoMQ server as a pure in-memory
//! dispatcher; real deployments run durable subscriptions against a
//! persistent store, which adds a per-message storage term to the service
//! time. This crate supplies that store: an append-only log of
//! CRC-checked, length-prefixed frames split across size/age-rotated
//! segment files, with an in-memory offset index, a configurable fsync
//! policy, and a recovery scan that cuts torn tails back to the last whole
//! frame.
//!
//! Layering:
//!
//! - [`frame`] — the `[len | crc32 | payload]` on-disk record format.
//! - [`segment`] — one append-only file plus its frame index.
//! - [`Journal`] — the segment chain: offsets, durability, recovery,
//!   retention.
//!
//! The broker appends publishes before dispatch and checkpoints durable
//! consumer progress; `rjms-core` turns the measured append cost into the
//! `t_store` term of the extended capacity model.

#![forbid(unsafe_code)]
pub mod config;
mod crc32;
pub mod frame;
mod journal;
pub mod segment;

pub use config::{FsyncPolicy, JournalConfig};
pub use crc32::crc32;
pub use journal::{Journal, JournalError, JournalStats, RecoveryReport, Replay, Result};

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Creates a unique empty scratch directory under the system temp dir.
///
/// Test-and-bench support: the container has no `tempfile` crate, so
/// uniqueness comes from the process id plus a process-wide counter.
/// Callers are responsible for removing the directory.
pub fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("rjms-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("creating scratch dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn cleanup(dir: &std::path::Path) {
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn append_read_roundtrip_and_reopen() {
        let dir = scratch_dir("roundtrip");
        let config = JournalConfig::new(&dir);
        let (mut journal, recovery) = Journal::open(config.clone()).unwrap();
        assert_eq!(recovery.next_offset, 0);
        for i in 0..100u32 {
            let offset = journal.append(format!("record-{i}").as_bytes()).unwrap();
            assert_eq!(offset, i as u64);
        }
        assert_eq!(journal.read(42).unwrap(), b"record-42");
        drop(journal);

        let (journal, recovery) = Journal::open(config).unwrap();
        assert_eq!(recovery.frames_recovered, 100);
        assert_eq!(recovery.torn_bytes_truncated, 0);
        assert_eq!(journal.next_offset(), 100);
        let replayed: Vec<_> = journal.replay(0).map(|r| r.unwrap()).collect();
        assert_eq!(replayed.len(), 100);
        assert_eq!(replayed[7].1, b"record-7");
        cleanup(&dir);
    }

    #[test]
    fn rotation_by_size_and_offsets_chain() {
        let dir = scratch_dir("rotate");
        let config = JournalConfig::new(&dir).segment_max_bytes(256);
        let (mut journal, _) = Journal::open(config.clone()).unwrap();
        for _ in 0..50 {
            journal.append(&[0xAB; 32]).unwrap();
        }
        assert!(journal.stats().segments_rotated > 0);
        drop(journal);

        let (journal, recovery) = Journal::open(config).unwrap();
        assert_eq!(recovery.frames_recovered, 50);
        for (i, record) in journal.replay(0).enumerate() {
            let (offset, payload) = record.unwrap();
            assert_eq!(offset, i as u64);
            assert_eq!(payload, [0xAB; 32]);
        }
        cleanup(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_to_last_whole_frame() {
        let dir = scratch_dir("torn");
        let config = JournalConfig::new(&dir);
        let (mut journal, _) = Journal::open(config.clone()).unwrap();
        for i in 0..10u32 {
            journal.append(format!("msg-{i:04}").as_bytes()).unwrap();
        }
        journal.sync().unwrap();
        let path = dir.join(segment::segment_file_name(0));
        drop(journal);

        // Cut mid-way through the final frame.
        let len = std::fs::metadata(&path).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);

        let (journal, recovery) = Journal::open(config).unwrap();
        assert_eq!(recovery.frames_recovered, 9);
        assert!(recovery.torn_bytes_truncated > 0);
        assert_eq!(journal.next_offset(), 9);
        assert_eq!(journal.read(8).unwrap(), b"msg-0008");
        assert!(matches!(journal.read(9), Err(JournalError::UnknownOffset(9))));
        cleanup(&dir);
    }

    #[test]
    fn appends_continue_after_torn_tail_recovery() {
        let dir = scratch_dir("torn-continue");
        let config = JournalConfig::new(&dir);
        let (mut journal, _) = Journal::open(config.clone()).unwrap();
        for _ in 0..5 {
            journal.append(b"before").unwrap();
        }
        journal.sync().unwrap();
        let path = dir.join(segment::segment_file_name(0));
        drop(journal);
        let len = std::fs::metadata(&path).unwrap().len();
        std::fs::OpenOptions::new().write(true).open(&path).unwrap().set_len(len - 1).unwrap();

        let (mut journal, recovery) = Journal::open(config.clone()).unwrap();
        assert_eq!(recovery.next_offset, 4);
        let offset = journal.append(b"after").unwrap();
        assert_eq!(offset, 4);
        drop(journal);

        let (journal, recovery) = Journal::open(config).unwrap();
        assert_eq!(recovery.frames_recovered, 5);
        assert_eq!(journal.read(4).unwrap(), b"after");
        cleanup(&dir);
    }

    #[test]
    fn corrupt_sealed_segment_is_an_error_not_a_truncation() {
        let dir = scratch_dir("sealed-corrupt");
        let config = JournalConfig::new(&dir).segment_max_bytes(64);
        let (mut journal, _) = Journal::open(config.clone()).unwrap();
        for _ in 0..20 {
            journal.append(&[7u8; 24]).unwrap();
        }
        journal.sync().unwrap();
        drop(journal);

        // Flip a payload byte in the first (sealed) segment.
        let path = dir.join(segment::segment_file_name(0));
        let mut contents = std::fs::read(&path).unwrap();
        let mid = contents.len() / 2;
        contents[mid] ^= 0xFF;
        std::fs::write(&path, &contents).unwrap();

        match Journal::open(config) {
            Err(JournalError::Corrupt { segment, .. }) => assert_eq!(segment, path),
            other => panic!("expected sealed-segment corruption error, got {other:?}"),
        }
        cleanup(&dir);
    }

    #[test]
    fn fsync_policy_counters() {
        let dir = scratch_dir("fsync");
        let config = JournalConfig::new(&dir).fsync(FsyncPolicy::Always);
        let (mut journal, _) = Journal::open(config).unwrap();
        for _ in 0..10 {
            journal.append(b"x").unwrap();
        }
        assert_eq!(journal.stats().fsyncs, 10);
        drop(journal);
        cleanup(&dir);

        let dir = scratch_dir("fsync-n");
        let config = JournalConfig::new(&dir).fsync(FsyncPolicy::EveryN(4));
        let (mut journal, _) = Journal::open(config).unwrap();
        for _ in 0..10 {
            journal.append(b"x").unwrap();
        }
        assert_eq!(journal.stats().fsyncs, 2);
        drop(journal);
        cleanup(&dir);

        let dir = scratch_dir("fsync-never");
        let config = JournalConfig::new(&dir).fsync(FsyncPolicy::Never);
        let (mut journal, _) = Journal::open(config).unwrap();
        for _ in 0..10 {
            journal.append(b"x").unwrap();
        }
        assert_eq!(journal.stats().fsyncs, 0);
        drop(journal);
        cleanup(&dir);
    }

    #[test]
    fn truncate_before_drops_whole_sealed_segments_only() {
        let dir = scratch_dir("truncate");
        let config = JournalConfig::new(&dir).segment_max_bytes(64);
        let (mut journal, _) = Journal::open(config.clone()).unwrap();
        for _ in 0..20 {
            journal.append(&[1u8; 24]).unwrap();
        }
        let sealed = journal.stats().segments_rotated as usize;
        assert!(sealed >= 2, "test needs multiple segments, got {sealed}");

        let removed = journal.truncate_before(journal.next_offset()).unwrap();
        assert_eq!(removed, sealed);
        assert!(journal.first_offset() > 0);
        // Frames at or above the floor are still readable.
        let floor = journal.first_offset();
        assert_eq!(journal.read(floor).unwrap(), [1u8; 24]);
        assert!(matches!(journal.read(floor - 1), Err(JournalError::UnknownOffset(_))));
        drop(journal);

        let (journal, _) = Journal::open(config).unwrap();
        assert_eq!(journal.first_offset(), floor);
        cleanup(&dir);
    }

    #[test]
    fn max_sealed_segments_retention() {
        let dir = scratch_dir("retention");
        let config = JournalConfig::new(&dir).segment_max_bytes(64).max_sealed_segments(2);
        let (mut journal, _) = Journal::open(config).unwrap();
        for _ in 0..40 {
            journal.append(&[2u8; 24]).unwrap();
        }
        assert!(journal.stats().segments_removed > 0);
        assert!(journal.first_offset() > 0);
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert!(files <= 3, "retention left {files} segment files");
        cleanup(&dir);
    }

    #[test]
    fn age_based_rotation() {
        let dir = scratch_dir("age");
        let config = JournalConfig::new(&dir).segment_max_age(Duration::from_millis(1));
        let (mut journal, _) = Journal::open(config).unwrap();
        journal.append(b"first").unwrap();
        std::thread::sleep(Duration::from_millis(5));
        journal.append(b"second").unwrap();
        assert_eq!(journal.stats().segments_rotated, 1);
        cleanup(&dir);
    }
}
