//! The on-disk frame format.
//!
//! Each journal record is one frame:
//!
//! ```text
//! +----------------+----------------+------------------+
//! | length: u32 LE | crc32: u32 LE  | payload (length) |
//! +----------------+----------------+------------------+
//! ```
//!
//! The checksum covers the payload only; the length field is validated
//! structurally (bounds + whether the bytes to back it exist). A frame is
//! accepted only when it is whole *and* its checksum matches, which is what
//! lets recovery cut a torn tail at the last intact frame.

use crate::crc32::crc32;

/// Bytes of frame metadata preceding the payload.
pub const FRAME_HEADER_LEN: usize = 8;

/// Upper bound on a single payload; a length field above this is treated
/// as corruption rather than an instruction to allocate.
pub const MAX_PAYLOAD_LEN: u32 = 64 * 1024 * 1024;

/// Encoded size of a frame carrying `payload_len` bytes.
pub fn frame_len(payload_len: usize) -> u64 {
    FRAME_HEADER_LEN as u64 + payload_len as u64
}

/// Appends the frame encoding of `payload` to `out`.
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_PAYLOAD_LEN`].
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    assert!(
        payload.len() <= MAX_PAYLOAD_LEN as usize,
        "journal payload of {} bytes exceeds the {} byte frame limit",
        payload.len(),
        MAX_PAYLOAD_LEN
    );
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Outcome of decoding the frame at the start of `buf`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameDecode<'a> {
    /// A whole, checksum-valid frame; `consumed` is its total encoded size.
    Complete {
        /// The frame payload, borrowed from the input.
        payload: &'a [u8],
        /// Total encoded frame size in bytes.
        consumed: usize,
    },
    /// The buffer ends before the frame does — a torn tail if at end of file.
    Incomplete,
    /// The frame is whole but fails validation (bad length or checksum).
    Corrupt,
}

/// Decodes the frame beginning at `buf[0]`.
pub fn decode_frame(buf: &[u8]) -> FrameDecode<'_> {
    if buf.len() < FRAME_HEADER_LEN {
        return FrameDecode::Incomplete;
    }
    let length = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    let expected_crc = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if length > MAX_PAYLOAD_LEN {
        return FrameDecode::Corrupt;
    }
    let total = FRAME_HEADER_LEN + length as usize;
    if buf.len() < total {
        return FrameDecode::Incomplete;
    }
    let payload = &buf[FRAME_HEADER_LEN..total];
    if crc32(payload) != expected_crc {
        return FrameDecode::Corrupt;
    }
    FrameDecode::Complete { payload, consumed: total }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        encode_frame(b"hello", &mut buf);
        encode_frame(b"", &mut buf);
        match decode_frame(&buf) {
            FrameDecode::Complete { payload, consumed } => {
                assert_eq!(payload, b"hello");
                assert_eq!(consumed, FRAME_HEADER_LEN + 5);
                match decode_frame(&buf[consumed..]) {
                    FrameDecode::Complete { payload, consumed } => {
                        assert_eq!(payload, b"");
                        assert_eq!(consumed, FRAME_HEADER_LEN);
                    }
                    other => panic!("empty frame: {other:?}"),
                }
            }
            other => panic!("first frame: {other:?}"),
        }
    }

    #[test]
    fn truncation_is_incomplete() {
        let mut buf = Vec::new();
        encode_frame(b"payload", &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(decode_frame(&buf[..cut]), FrameDecode::Incomplete, "cut at {cut}");
        }
    }

    #[test]
    fn payload_corruption_is_detected() {
        let mut buf = Vec::new();
        encode_frame(b"payload", &mut buf);
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            assert_ne!(
                decode_frame(&bad),
                FrameDecode::Complete { payload: b"payload", consumed: buf.len() },
                "flip at {i} went unnoticed"
            );
        }
    }

    #[test]
    fn absurd_length_is_corrupt_not_alloc() {
        let mut buf = vec![0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0];
        buf.extend_from_slice(&[0u8; 16]);
        assert_eq!(decode_frame(&buf), FrameDecode::Corrupt);
    }
}
