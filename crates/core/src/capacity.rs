//! Server capacity and the filter-benefit rule (paper §IV-A).
//!
//! * Capacity: `λ_max = ρ / E[B]` (Eq. 2) — the maximum supportable
//!   received-message rate at a CPU utilization budget `ρ`.
//! * Filter benefit (Eq. 3): a consumer's filters increase server capacity
//!   only if `n_fltr^q · t_fltr < (1 − p_match^q) · t_tx`; the break-even
//!   match probabilities for Table I are 58.7% / 17.4% for one / two
//!   correlation-ID filters and 9.9% for one application-property filter.

use crate::params::CostParams;
use serde::{Deserialize, Serialize};

/// Server capacity `λ_max = ρ/E[B]` in received messages per second
/// (Eq. 2).
///
/// # Panics
///
/// Panics if `rho` is outside `(0, 1]` or `mean_replication < 0`.
///
/// # Examples
///
/// ```
/// use rjms_core::capacity::server_capacity;
/// use rjms_core::params::CostParams;
///
/// // Paper §IV-B.5: E[B] = 20 ms at ρ = 0.9 → λ_max = 45 msgs/s.
/// let p = CostParams::new(0.0, 2e-4, 0.0);
/// let cap = server_capacity(&p, 100, 0.0, 0.9);
/// assert!((cap - 45.0).abs() < 1e-9);
/// ```
pub fn server_capacity(params: &CostParams, n_fltr: u32, mean_replication: f64, rho: f64) -> f64 {
    assert!(rho > 0.0 && rho <= 1.0, "utilization budget must be in (0, 1], got {rho}");
    rho / params.mean_service_time(n_fltr, mean_replication)
}

/// The verdict of the filter-benefit rule for one consumer (Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilterBenefit {
    /// Whether installing the filters increases server capacity compared to
    /// forwarding every message unfiltered.
    pub beneficial: bool,
    /// Extra processing time incurred by the filters, `n_fltr^q · t_fltr`.
    pub filter_cost: f64,
    /// Transmission time saved, `(1 − p_match^q) · t_tx`.
    pub transmission_saving: f64,
}

/// Evaluates Eq. 3 for a consumer with `n_fltr_q` filters that jointly
/// match a fraction `p_match_q` of all messages.
///
/// # Panics
///
/// Panics if `p_match_q` is outside `[0, 1]`.
pub fn filter_benefit(params: &CostParams, n_fltr_q: u32, p_match_q: f64) -> FilterBenefit {
    assert!(
        (0.0..=1.0).contains(&p_match_q),
        "match probability must be in [0, 1], got {p_match_q}"
    );
    let filter_cost = n_fltr_q as f64 * params.t_fltr;
    let transmission_saving = (1.0 - p_match_q) * params.t_tx;
    FilterBenefit {
        beneficial: filter_cost < transmission_saving,
        filter_cost,
        transmission_saving,
    }
}

/// The break-even match probability for a consumer with `n_fltr_q` filters:
/// filters help iff `p_match < 1 − n_fltr_q·t_fltr/t_tx`.
///
/// Returns `None` when even a never-matching filter set slows the server
/// down (the threshold would be negative) or when `t_tx = 0`.
///
/// # Examples
///
/// ```
/// use rjms_core::capacity::break_even_match_probability;
/// use rjms_core::params::CostParams;
///
/// let corr = CostParams::CORRELATION_ID;
/// let p1 = break_even_match_probability(&corr, 1).unwrap();
/// assert!((p1 - 0.587).abs() < 0.002); // paper: 58.7%
/// let p2 = break_even_match_probability(&corr, 2).unwrap();
/// assert!((p2 - 0.174).abs() < 0.002); // paper: 17.4%
/// assert!(break_even_match_probability(&corr, 3).is_none()); // paper: never
/// ```
pub fn break_even_match_probability(params: &CostParams, n_fltr_q: u32) -> Option<f64> {
    if params.t_tx <= 0.0 {
        return None;
    }
    let threshold = 1.0 - n_fltr_q as f64 * params.t_fltr / params.t_tx;
    if threshold > 0.0 {
        Some(threshold)
    } else {
        None
    }
}

/// The filter count whose cost equals a given replication-grade increase:
/// the paper notes that `E[R] = 10` without filters costs as much as
/// `E[R] = 1` with 22 correlation-ID filters (and `E[R] = 100` ≙ 240).
///
/// Solves `n · t_fltr = (e_r_without − e_r_with) · t_tx` for `n`.
///
/// # Panics
///
/// Panics if `t_fltr = 0`.
pub fn equivalent_filter_count(params: &CostParams, e_r_without: f64, e_r_with: f64) -> f64 {
    assert!(params.t_fltr > 0.0, "equivalent filter count undefined for t_fltr = 0");
    (e_r_without - e_r_with) * params.t_tx / params.t_fltr
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_rho_over_service_time() {
        let p = CostParams::CORRELATION_ID;
        let cap = server_capacity(&p, 10, 2.0, 0.9);
        let e_b = p.mean_service_time(10, 2.0);
        assert!((cap - 0.9 / e_b).abs() < 1e-9);
    }

    #[test]
    fn capacity_decreases_with_filters_and_replication() {
        let p = CostParams::CORRELATION_ID;
        assert!(server_capacity(&p, 10, 1.0, 0.9) > server_capacity(&p, 100, 1.0, 0.9));
        assert!(server_capacity(&p, 10, 1.0, 0.9) > server_capacity(&p, 10, 10.0, 0.9));
    }

    #[test]
    fn paper_equivalence_r10_is_22_filters() {
        // Fig. 6 annotation: E[R]=10 ↔ n_fltr=22, E[R]=100 ↔ n_fltr=240.
        let p = CostParams::CORRELATION_ID;
        let n10 = equivalent_filter_count(&p, 10.0, 1.0);
        assert!((n10 - 21.8).abs() < 0.5, "n10 = {n10}");
        let n100 = equivalent_filter_count(&p, 100.0, 1.0);
        assert!((n100 - 239.7).abs() < 2.0, "n100 = {n100}");
    }

    #[test]
    fn filter_benefit_thresholds_match_paper() {
        let corr = CostParams::CORRELATION_ID;
        // One filter at p_match = 0.5 < 0.587: beneficial.
        assert!(filter_benefit(&corr, 1, 0.5).beneficial);
        // One filter at p_match = 0.65 > 0.587: harmful.
        assert!(!filter_benefit(&corr, 1, 0.65).beneficial);
        // Two filters at p_match = 0.1 < 0.174: beneficial.
        assert!(filter_benefit(&corr, 2, 0.1).beneficial);
        // Three filters never help, even at p_match = 0.
        assert!(!filter_benefit(&corr, 3, 0.0).beneficial);

        let app = CostParams::APPLICATION_PROPERTY;
        let p1 = break_even_match_probability(&app, 1).unwrap();
        assert!((p1 - 0.099).abs() < 0.002, "app-prop threshold {p1}"); // paper: 9.9%
        assert!(break_even_match_probability(&app, 2).is_none());
    }

    #[test]
    fn break_even_none_for_zero_t_tx() {
        let p = CostParams::new(1e-6, 1e-6, 0.0);
        assert_eq!(break_even_match_probability(&p, 1), None);
    }

    #[test]
    fn benefit_components_exposed() {
        let p = CostParams::CORRELATION_ID;
        let b = filter_benefit(&p, 2, 0.5);
        assert!((b.filter_cost - 2.0 * p.t_fltr).abs() < 1e-18);
        assert!((b.transmission_saving - 0.5 * p.t_tx).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "utilization budget")]
    fn capacity_rejects_zero_rho() {
        server_capacity(&CostParams::CORRELATION_ID, 1, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "match probability")]
    fn benefit_rejects_bad_probability() {
        filter_benefit(&CostParams::CORRELATION_ID, 1, 1.5);
    }
}
