//! Parameter sweeps: the paper's figures as data.
//!
//! Each function regenerates one figure's series programmatically so that
//! downstream tooling (plotters, dashboards, the experiment binaries) can
//! consume typed points instead of parsing text tables.

use crate::capacity::server_capacity;
use crate::model::ServerModel;
use crate::params::CostParams;
use rjms_queueing::mg1::Mg1;
use rjms_queueing::moments::Moments3;
use rjms_queueing::replication::ReplicationModel;
use serde::{Deserialize, Serialize};

/// A `(x, y)` sample of one figure series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// The swept parameter value.
    pub x: f64,
    /// The measured/computed quantity.
    pub y: f64,
}

/// A named series of points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Label, e.g. `E[R]=10`.
    pub label: String,
    /// The points, in sweep order.
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// The y value at the given x, if sampled.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|p| p.x == x).map(|p| p.y)
    }
}

/// Fig. 5: mean service time `E[B]` (seconds) vs `n_fltr`, one series per
/// mean replication grade.
pub fn service_time_series(
    params: CostParams,
    n_fltr_sweep: &[u32],
    mean_replications: &[f64],
) -> Vec<Series> {
    mean_replications
        .iter()
        .map(|&e_r| Series {
            label: format!("E[R]={e_r}"),
            points: n_fltr_sweep
                .iter()
                .map(|&n| SeriesPoint { x: n as f64, y: params.mean_service_time(n, e_r) })
                .collect(),
        })
        .collect()
}

/// Fig. 6: server capacity (msgs/s) at utilization budget `rho` vs
/// `n_fltr`, one series per mean replication grade.
pub fn capacity_series(
    params: CostParams,
    rho: f64,
    n_fltr_sweep: &[u32],
    mean_replications: &[f64],
) -> Vec<Series> {
    mean_replications
        .iter()
        .map(|&e_r| Series {
            label: format!("E[R]={e_r}"),
            points: n_fltr_sweep
                .iter()
                .map(|&n| SeriesPoint { x: n as f64, y: server_capacity(&params, n, e_r, rho) })
                .collect(),
        })
        .collect()
}

/// Figs. 8/9: `c_var[B]` vs `n_fltr` for a replication-model family, one
/// series per match probability.
///
/// `family` builds the replication model from `(n_fltr, p_match)` — pass
/// [`ReplicationModel::scaled_bernoulli`] for Fig. 8 or
/// [`ReplicationModel::binomial`] for Fig. 9.
pub fn cvar_series(
    params: CostParams,
    n_fltr_sweep: &[u32],
    match_probabilities: &[f64],
    family: fn(f64, f64) -> ReplicationModel,
) -> Vec<Series> {
    match_probabilities
        .iter()
        .map(|&p| Series {
            label: format!("p_match={p}"),
            points: n_fltr_sweep
                .iter()
                .map(|&n| SeriesPoint {
                    x: n as f64,
                    y: ServerModel::new(params, n).service_time(family(n as f64, p)).cvar(),
                })
                .collect(),
        })
        .collect()
}

/// Fig. 10: normalized mean waiting time `E[W]/E[B]` vs utilization, one
/// series per service-time coefficient of variation.
pub fn mean_waiting_series(rho_sweep: &[f64], cvars: &[f64]) -> Vec<Series> {
    waiting_series(rho_sweep, cvars, |queue| queue.mean_waiting_time())
}

/// Fig. 12: the normalized `p`-quantile of the waiting time vs utilization,
/// one series per service-time coefficient of variation.
pub fn quantile_series(rho_sweep: &[f64], cvars: &[f64], p: f64) -> Vec<Series> {
    waiting_series(rho_sweep, cvars, move |queue| queue.waiting_time_distribution().quantile(p))
}

fn waiting_series(rho_sweep: &[f64], cvars: &[f64], metric: impl Fn(&Mg1) -> f64) -> Vec<Series> {
    cvars
        .iter()
        .map(|&c| Series {
            label: format!("cvar={c}"),
            points: rho_sweep
                .iter()
                .map(|&rho| {
                    let m2 = 1.0 + c * c;
                    // Unit-mean service; Bernoulli-family third moment (the
                    // choice is immaterial, see Fig. 11).
                    let service = Moments3::new(1.0, m2, m2 * m2);
                    let queue = Mg1::with_utilization(rho, service)
                        .expect("sweep utilizations must be < 1");
                    SeriesPoint { x: rho, y: metric(&queue) }
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SWEEP: [u32; 4] = [1, 10, 100, 1000];

    #[test]
    fn service_time_series_matches_eq1() {
        let series = service_time_series(CostParams::CORRELATION_ID, &SWEEP, &[1.0, 10.0]);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].points.len(), 4);
        let expect = CostParams::CORRELATION_ID.mean_service_time(100, 10.0);
        assert_eq!(series[1].y_at(100.0), Some(expect));
    }

    #[test]
    fn capacity_series_is_decreasing_in_n() {
        let series = capacity_series(CostParams::CORRELATION_ID, 0.9, &SWEEP, &[1.0]);
        let ys: Vec<f64> = series[0].points.iter().map(|p| p.y).collect();
        assert!(ys.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn cvar_series_families_differ() {
        let bern = cvar_series(
            CostParams::CORRELATION_ID,
            &SWEEP,
            &[0.3],
            ReplicationModel::scaled_bernoulli,
        );
        let bino =
            cvar_series(CostParams::CORRELATION_ID, &SWEEP, &[0.3], ReplicationModel::binomial);
        // Bernoulli variability stays high; binomial decays.
        let b_end = bern[0].points.last().unwrap().y;
        let n_end = bino[0].points.last().unwrap().y;
        assert!(b_end > 0.3, "Bernoulli tail cvar {b_end}");
        assert!(n_end < 0.05, "binomial tail cvar {n_end}");
    }

    #[test]
    fn mean_waiting_series_matches_pk() {
        let series = mean_waiting_series(&[0.5, 0.9], &[0.0, 0.4]);
        // E[W]/E[B] = rho (1+c²) / (2(1-rho)).
        let expect = 0.9 * (1.0 + 0.16) / (2.0 * 0.1);
        let got = series[1].y_at(0.9).unwrap();
        assert!((got - expect).abs() < 1e-9);
    }

    #[test]
    fn quantile_series_ordered_in_p() {
        let q99 = quantile_series(&[0.9], &[0.2], 0.99);
        let q9999 = quantile_series(&[0.9], &[0.2], 0.9999);
        assert!(q9999[0].points[0].y > q99[0].points[0].y);
    }

    #[test]
    fn series_labels_are_informative() {
        let s = capacity_series(CostParams::CORRELATION_ID, 0.9, &SWEEP, &[7.5]);
        assert_eq!(s[0].label, "E[R]=7.5");
    }
}
