//! Human-readable capacity-planning reports.
//!
//! [`plan_report`] turns an [`ApplicationScenario`] into the summary a
//! capacity planner would write by hand from the paper's formulas: service
//! time, capacity and headroom, waiting-time quantiles, buffer sizing, and
//! the Eq. 3 filter recommendation.

use crate::capacity::{break_even_match_probability, filter_benefit};
use crate::scenario::ApplicationScenario;
use rjms_queueing::mg1::Mg1;
use std::fmt::Write as _;

/// Renders a multi-line planning report for a scenario at its offered load.
///
/// # Examples
///
/// ```
/// use rjms_core::params::FilterType;
/// use rjms_core::report::plan_report;
/// use rjms_core::scenario::ApplicationScenario;
///
/// let s = ApplicationScenario::builder(FilterType::CorrelationId)
///     .subscribers(1000)
///     .filters_per_subscriber(1)
///     .match_probability(0.01)
///     .offered_load(100.0)
///     .build();
/// let report = plan_report(&s);
/// assert!(report.contains("capacity"));
/// assert!(report.contains("99.99%"));
/// ```
pub fn plan_report(scenario: &ApplicationScenario) -> String {
    let mut out = String::new();
    let e_b = scenario.mean_service_time();
    let utilization = scenario.utilization();

    let _ = writeln!(out, "== capacity planning report ==");
    let _ = writeln!(
        out,
        "filter type          : {} ({} filters total)",
        scenario.filter_type(),
        scenario.total_filters()
    );
    let _ = writeln!(out, "mean replication     : E[R] = {:.2}", scenario.mean_replication());
    let _ = writeln!(out, "mean service time    : E[B] = {:.4} ms", e_b * 1e3);
    let _ = writeln!(out, "capacity (rho = 0.9) : {:.1} msgs/s", scenario.capacity(0.9));
    let _ = writeln!(
        out,
        "offered load         : {:.1} msgs/s -> utilization {:.1}%",
        scenario.offered_load(),
        utilization * 100.0
    );

    if !scenario.is_feasible() {
        let _ = writeln!(
            out,
            "verdict              : OVERLOADED — the server cannot sustain this load"
        );
        return out;
    }

    match scenario.waiting_time_at_offered_load() {
        Err(e) => {
            let _ = writeln!(out, "waiting time         : unavailable ({e})");
        }
        Ok(report) => {
            let _ = writeln!(
                out,
                "mean waiting time    : {:.3} ms ({:.2} service times)",
                report.mean_waiting_time * 1e3,
                report.normalized_mean_waiting()
            );
            let _ = writeln!(
                out,
                "99% / 99.99% waits   : {:.3} ms / {:.3} ms",
                report.q99 * 1e3,
                report.q9999 * 1e3
            );
            // Buffer sizing from the full queue object.
            if let Ok(queue) = Mg1::with_utilization(
                utilization,
                scenario.server_model().service_time(scenario.replication_model()).moments(),
            ) {
                let _ = writeln!(
                    out,
                    "buffer (99.99%)      : {} message slots",
                    queue.required_buffer(0.9999)
                );
            }
        }
    }

    // Filter advice (Eq. 3), per consumer.
    let per_consumer = scenario.total_filters() / scenario.subscribers().max(1);
    let p_match = scenario.mean_replication() / scenario.total_filters().max(1) as f64;
    let benefit = filter_benefit(scenario.params(), per_consumer, p_match.min(1.0));
    let advice = if benefit.beneficial {
        "filters also raise server capacity (Eq. 3 satisfied)"
    } else {
        "filters cost server capacity; they pay off only in consumer/network protection"
    };
    let _ = writeln!(out, "filter advice        : {advice}");
    if let Some(threshold) = break_even_match_probability(scenario.params(), per_consumer) {
        let _ = writeln!(
            out,
            "                       (break-even match probability: {:.1}%)",
            threshold * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::FilterType;

    fn scenario(load: f64) -> ApplicationScenario {
        ApplicationScenario::builder(FilterType::CorrelationId)
            .subscribers(1000)
            .filters_per_subscriber(1)
            .match_probability(0.01)
            .offered_load(load)
            .build()
    }

    #[test]
    fn feasible_report_has_all_sections() {
        let r = plan_report(&scenario(100.0));
        for needle in [
            "capacity planning report",
            "correlation-ID",
            "E[R] = 10.00",
            "mean service time",
            "99% / 99.99%",
            "buffer (99.99%)",
            "filter advice",
        ] {
            assert!(r.contains(needle), "missing `{needle}` in:\n{r}");
        }
    }

    #[test]
    fn overloaded_report_says_so() {
        let r = plan_report(&scenario(1e9));
        assert!(r.contains("OVERLOADED"));
        assert!(!r.contains("99.99%            :"));
    }

    #[test]
    fn beneficial_filters_reported_when_cheap() {
        // One corr-ID filter per consumer at 1% match: beneficial.
        let r = plan_report(&scenario(10.0));
        assert!(r.contains("Eq. 3 satisfied"), "{r}");
        assert!(r.contains("break-even"));
    }
}
