//! The service-time / throughput model (paper Eq. 1 and Fig. 4's dashed
//! lines).
//!
//! [`ServerModel`] binds [`CostParams`] to a number of installed filters and
//! predicts the mean service time, the saturated throughput, and — combined
//! with a replication-grade distribution — the full stochastic service time
//! used by the waiting-time analysis.

use crate::params::CostParams;
use rjms_queueing::replication::ReplicationModel;
use rjms_queueing::service::ServiceTime;
use serde::{Deserialize, Serialize};

/// Throughput prediction at server saturation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputPrediction {
    /// Received throughput `1/E[B]`, messages per second.
    pub received_per_sec: f64,
    /// Dispatched throughput `E[R]/E[B]`, copies per second.
    pub dispatched_per_sec: f64,
}

impl ThroughputPrediction {
    /// Overall throughput `(1 + E[R])/E[B]` (Fig. 4's y-axis).
    pub fn overall_per_sec(&self) -> f64 {
        self.received_per_sec + self.dispatched_per_sec
    }
}

/// The paper's performance model of a JMS server: cost parameters plus the
/// number of installed filters.
///
/// # Examples
///
/// ```
/// use rjms_core::model::ServerModel;
/// use rjms_core::params::CostParams;
///
/// let model = ServerModel::new(CostParams::CORRELATION_ID, 45);
/// let pred = model.predict_throughput(5.0);
/// // E[B] = t_rcv + 45·t_fltr + 5·t_tx
/// let e_b = 8.52e-7 + 45.0 * 7.02e-6 + 5.0 * 1.70e-5;
/// assert!((pred.received_per_sec - 1.0 / e_b).abs() < 1e-6);
/// assert!((pred.overall_per_sec() - 6.0 / e_b).abs() < 1e-5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerModel {
    params: CostParams,
    n_fltr: u32,
}

impl ServerModel {
    /// Creates the model for a server with `n_fltr` installed filters.
    pub fn new(params: CostParams, n_fltr: u32) -> Self {
        Self { params, n_fltr }
    }

    /// The cost parameters.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// The number of installed filters.
    pub fn n_fltr(&self) -> u32 {
        self.n_fltr
    }

    /// Mean message processing time `E[B]` for a mean replication grade
    /// (Eq. 1).
    pub fn mean_service_time(&self, mean_replication: f64) -> f64 {
        self.params.mean_service_time(self.n_fltr, mean_replication)
    }

    /// Saturated throughput prediction for a mean replication grade: the
    /// server processes `1/E[B]` messages per second at 100% CPU.
    pub fn predict_throughput(&self, mean_replication: f64) -> ThroughputPrediction {
        let e_b = self.mean_service_time(mean_replication);
        ThroughputPrediction {
            received_per_sec: 1.0 / e_b,
            dispatched_per_sec: mean_replication / e_b,
        }
    }

    /// The full stochastic service time `B = D + R·t_tx` for a
    /// replication-grade distribution (feeds the M/G/1 analysis).
    pub fn service_time(&self, replication: ReplicationModel) -> ServiceTime {
        ServiceTime::new(self.params.deterministic_part(self.n_fltr), self.params.t_tx, replication)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::FilterType;

    #[test]
    fn throughput_prediction_components() {
        let m = ServerModel::new(CostParams::CORRELATION_ID, 0);
        let p = m.predict_throughput(0.0);
        // Without filters or replication only t_rcv remains.
        assert!((p.received_per_sec - 1.0 / 8.52e-7).abs() / p.received_per_sec < 1e-12);
        assert_eq!(p.dispatched_per_sec, 0.0);
    }

    #[test]
    fn overall_equals_received_times_one_plus_r() {
        let m = ServerModel::new(CostParams::APPLICATION_PROPERTY, 20);
        let p = m.predict_throughput(7.0);
        assert!((p.overall_per_sec() - p.received_per_sec * 8.0).abs() < 1e-9);
    }

    #[test]
    fn service_time_matches_mean() {
        let m = ServerModel::new(CostParams::CORRELATION_ID, 30);
        let b = m.service_time(ReplicationModel::binomial(30.0, 0.2));
        assert!((b.mean() - m.mean_service_time(6.0)).abs() < 1e-15);
    }

    #[test]
    fn more_filters_lower_throughput() {
        let few = ServerModel::new(CostParams::for_filter_type(FilterType::CorrelationId), 10);
        let many = ServerModel::new(CostParams::for_filter_type(FilterType::CorrelationId), 1000);
        assert!(
            few.predict_throughput(1.0).received_per_sec
                > many.predict_throughput(1.0).received_per_sec
        );
    }

    #[test]
    fn correlation_id_beats_app_property() {
        // Paper: app-property overall throughput ≈ 50% of corr-ID.
        let n = 100u32;
        let corr = ServerModel::new(CostParams::CORRELATION_ID, n).predict_throughput(5.0);
        let app = ServerModel::new(CostParams::APPLICATION_PROPERTY, n).predict_throughput(5.0);
        let ratio = app.overall_per_sec() / corr.overall_per_sec();
        assert!(ratio > 0.4 && ratio < 0.65, "ratio {ratio}");
    }
}
