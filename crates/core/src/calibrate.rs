//! Calibration: fitting [`CostParams`] from throughput measurements.
//!
//! The paper derives Table I by fitting the linear model
//! `E[B] = t_rcv + n_fltr·t_fltr + E[R]·t_tx` to measured saturated
//! throughputs (`E[B] = 1/throughput_received`). This module implements that
//! fit as ordinary least squares over the design matrix
//! `[1, n_fltr, E[R]]`, solved via the normal equations with partial
//! pivoting, plus residual diagnostics.

use crate::params::CostParams;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One measured operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Number of installed filters during the run.
    pub n_fltr: u32,
    /// Mean replication grade during the run.
    pub mean_replication: f64,
    /// Measured received throughput at saturation, messages/s.
    pub received_per_sec: f64,
}

impl Observation {
    /// The implied mean service time `E[B] = 1/throughput`.
    ///
    /// # Panics
    ///
    /// Panics if the throughput is not strictly positive.
    pub fn mean_service_time(&self) -> f64 {
        assert!(
            self.received_per_sec > 0.0,
            "throughput must be > 0, got {}",
            self.received_per_sec
        );
        1.0 / self.received_per_sec
    }
}

/// Why a calibration attempt was rejected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CalibrationError {
    /// Fewer than 3 observations — the model has 3 parameters.
    TooFewObservations {
        /// How many were supplied.
        got: usize,
    },
    /// The design matrix is (numerically) singular: the observations do not
    /// vary independently in `n_fltr` and `E[R]`.
    SingularDesign,
    /// An observation carried a non-positive throughput.
    InvalidObservation {
        /// Index of the offending observation.
        index: usize,
    },
    /// The best fit produced a negative cost component, which is physically
    /// meaningless — the measurements do not follow the linear cost model.
    NegativeCost {
        /// The fitted (t_rcv, t_fltr, t_tx) triple.
        fitted: (f64, f64, f64),
    },
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooFewObservations { got } => {
                write!(f, "need at least 3 observations to fit 3 parameters, got {got}")
            }
            Self::SingularDesign => {
                f.write_str("singular design: observations must vary in both n_fltr and E[R]")
            }
            Self::InvalidObservation { index } => {
                write!(f, "observation {index} has non-positive throughput")
            }
            Self::NegativeCost { fitted } => write!(
                f,
                "fit produced negative cost component (t_rcv={:.3e}, t_fltr={:.3e}, t_tx={:.3e})",
                fitted.0, fitted.1, fitted.2
            ),
        }
    }
}

impl std::error::Error for CalibrationError {}

/// The result of a successful calibration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// The fitted cost parameters.
    pub params: CostParams,
    /// Root-mean-square of the service-time residuals, seconds.
    pub residual_rms: f64,
    /// Coefficient of determination of the fit (1 = perfect).
    pub r_squared: f64,
    /// Number of observations used.
    pub observations: usize,
}

/// Fits [`CostParams`] to a set of measured operating points by ordinary
/// least squares on the mean service time.
///
/// # Errors
///
/// See [`CalibrationError`]; in particular the observation grid must vary in
/// *both* the filter count and the replication grade (the paper's grid
/// crosses `R ∈ {1..40}` with `n ∈ {5..160}`).
///
/// # Examples
///
/// ```
/// use rjms_core::calibrate::{fit_cost_params, Observation};
/// use rjms_core::params::CostParams;
///
/// // Perfect synthetic measurements from known ground truth.
/// let truth = CostParams::CORRELATION_ID;
/// let mut obs = Vec::new();
/// for n in [5u32, 50, 150] {
///     for r in [1.0f64, 10.0, 40.0] {
///         let e_b = truth.mean_service_time(n, r);
///         obs.push(Observation { n_fltr: n, mean_replication: r, received_per_sec: 1.0 / e_b });
///     }
/// }
/// let cal = fit_cost_params(&obs).unwrap();
/// assert!((cal.params.t_fltr - truth.t_fltr).abs() / truth.t_fltr < 1e-9);
/// assert!(cal.r_squared > 0.999999);
/// ```
pub fn fit_cost_params(observations: &[Observation]) -> Result<Calibration, CalibrationError> {
    if observations.len() < 3 {
        return Err(CalibrationError::TooFewObservations { got: observations.len() });
    }
    for (i, o) in observations.iter().enumerate() {
        if o.received_per_sec <= 0.0
            || !o.received_per_sec.is_finite()
            || o.mean_replication.is_nan()
            || o.mean_replication < 0.0
        {
            return Err(CalibrationError::InvalidObservation { index: i });
        }
    }

    // Normal equations AᵀA x = Aᵀy with rows [1, n_fltr, E[R]] and
    // y = 1/throughput.
    let mut ata = [[0.0f64; 3]; 3];
    let mut aty = [0.0f64; 3];
    for o in observations {
        let row = [1.0, o.n_fltr as f64, o.mean_replication];
        let y = o.mean_service_time();
        for i in 0..3 {
            for j in 0..3 {
                ata[i][j] += row[i] * row[j];
            }
            aty[i] += row[i] * y;
        }
    }

    let x = solve_3x3(ata, aty).ok_or(CalibrationError::SingularDesign)?;
    let (t_rcv, t_fltr, t_tx) = (x[0], x[1], x[2]);
    // Tiny negative intercepts can emerge from noise; tolerate a small
    // negative t_rcv by clamping, reject anything materially negative.
    let tol = -1e-7;
    if t_rcv < tol || t_fltr < tol || t_tx < tol {
        return Err(CalibrationError::NegativeCost { fitted: (t_rcv, t_fltr, t_tx) });
    }
    let params = CostParams::new(t_rcv.max(0.0), t_fltr.max(0.0), t_tx.max(0.0));

    // Residual diagnostics.
    let n = observations.len() as f64;
    let mean_y: f64 = observations.iter().map(|o| o.mean_service_time()).sum::<f64>() / n;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for o in observations {
        let y = o.mean_service_time();
        let y_hat = params.mean_service_time(o.n_fltr, o.mean_replication);
        ss_res += (y - y_hat) * (y - y_hat);
        ss_tot += (y - mean_y) * (y - mean_y);
    }
    let r_squared = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };

    Ok(Calibration {
        params,
        residual_rms: (ss_res / n).sqrt(),
        r_squared,
        observations: observations.len(),
    })
}

/// Fits only the slopes `(t_fltr, t_tx)` with a *fixed* receive overhead
/// `t_rcv`.
///
/// Real servers deviate slightly from linearity (caches, contention), which
/// can drive the free intercept of the 3-parameter fit negative — the
/// intercept is the least identified parameter since `t_rcv` is orders of
/// magnitude below the slope terms. When the receive overhead is known (or
/// irrelevant), this constrained fit is better behaved.
///
/// # Errors
///
/// Same conditions as [`fit_cost_params`], with `NegativeCost` raised when a
/// fitted slope is materially negative.
pub fn fit_cost_params_fixed_rcv(
    observations: &[Observation],
    t_rcv: f64,
) -> Result<Calibration, CalibrationError> {
    if observations.len() < 2 {
        return Err(CalibrationError::TooFewObservations { got: observations.len() });
    }
    for (i, o) in observations.iter().enumerate() {
        if o.received_per_sec <= 0.0
            || !o.received_per_sec.is_finite()
            || o.mean_replication.is_nan()
            || o.mean_replication < 0.0
        {
            return Err(CalibrationError::InvalidObservation { index: i });
        }
    }
    // 2×2 normal equations over rows [n_fltr, E[R]], target y − t_rcv.
    let (mut a11, mut a12, mut a22, mut b1, mut b2) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for o in observations {
        let (x1, x2) = (o.n_fltr as f64, o.mean_replication);
        let y = o.mean_service_time() - t_rcv;
        a11 += x1 * x1;
        a12 += x1 * x2;
        a22 += x2 * x2;
        b1 += x1 * y;
        b2 += x2 * y;
    }
    let det = a11 * a22 - a12 * a12;
    let scale = a11.abs().max(a22.abs()).max(a12.abs());
    if scale == 0.0 || det.abs() < 1e-12 * scale * scale {
        return Err(CalibrationError::SingularDesign);
    }
    let t_fltr = (b1 * a22 - b2 * a12) / det;
    let t_tx = (a11 * b2 - a12 * b1) / det;
    if t_fltr < -1e-7 || t_tx < -1e-7 {
        return Err(CalibrationError::NegativeCost { fitted: (t_rcv, t_fltr, t_tx) });
    }
    let params = CostParams::new(t_rcv, t_fltr.max(0.0), t_tx.max(0.0));

    let n = observations.len() as f64;
    let mean_y: f64 = observations.iter().map(|o| o.mean_service_time()).sum::<f64>() / n;
    let (mut ss_res, mut ss_tot) = (0.0, 0.0);
    for o in observations {
        let y = o.mean_service_time();
        let y_hat = params.mean_service_time(o.n_fltr, o.mean_replication);
        ss_res += (y - y_hat) * (y - y_hat);
        ss_tot += (y - mean_y) * (y - mean_y);
    }
    Ok(Calibration {
        params,
        residual_rms: (ss_res / n).sqrt(),
        r_squared: if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 },
        observations: observations.len(),
    })
}

/// Solves a 3×3 linear system by Gaussian elimination with partial
/// pivoting; `None` when (numerically) singular.
pub(crate) fn solve_3x3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    // Scale-aware singularity threshold.
    let scale: f64 = a.iter().flat_map(|r| r.iter()).fold(0.0f64, |m, v| m.max(v.abs()));
    if scale == 0.0 {
        return None;
    }
    let eps = 1e-12 * scale;

    for col in 0..3 {
        // Pivot.
        let pivot_row = (col..3)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).expect("finite"))
            .expect("non-empty range");
        if a[pivot_row][col].abs() < eps {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        // Eliminate below.
        for row in (col + 1)..3 {
            let factor = a[row][col] / a[col][col];
            let pivot = a[col];
            for (entry, p) in a[row].iter_mut().zip(pivot.iter()).skip(col) {
                *entry -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back-substitute.
    let mut x = [0.0f64; 3];
    for row in (0..3).rev() {
        let mut acc = b[row];
        for k in (row + 1)..3 {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_grid(truth: CostParams, noise: Option<(f64, u64)>) -> Vec<Observation> {
        // Simple xorshift for deterministic noise without pulling rand into
        // the unit tests.
        let mut state = noise.map(|(_, seed)| seed.max(1)).unwrap_or(1);
        let mut next_noise = |amp: f64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            1.0 + amp * (2.0 * u - 1.0)
        };
        let mut obs = Vec::new();
        for n in [5u32, 10, 20, 40, 80, 160] {
            for r in [1.0f64, 2.0, 5.0, 10.0, 20.0, 40.0] {
                let mut e_b = truth.mean_service_time(n, r);
                if let Some((amp, _)) = noise {
                    e_b *= next_noise(amp);
                }
                obs.push(Observation {
                    n_fltr: n,
                    mean_replication: r,
                    received_per_sec: 1.0 / e_b,
                });
            }
        }
        obs
    }

    #[test]
    fn exact_fit_recovers_ground_truth() {
        for truth in [CostParams::CORRELATION_ID, CostParams::APPLICATION_PROPERTY] {
            let cal = fit_cost_params(&synthetic_grid(truth, None)).unwrap();
            assert!((cal.params.t_rcv - truth.t_rcv).abs() / truth.t_rcv < 1e-6);
            assert!((cal.params.t_fltr - truth.t_fltr).abs() / truth.t_fltr < 1e-9);
            assert!((cal.params.t_tx - truth.t_tx).abs() / truth.t_tx < 1e-9);
            assert!(cal.r_squared > 1.0 - 1e-12);
            assert!(cal.residual_rms < 1e-12);
        }
    }

    #[test]
    fn noisy_fit_recovers_slopes_within_tolerance() {
        let truth = CostParams::CORRELATION_ID;
        let cal = fit_cost_params(&synthetic_grid(truth, Some((0.02, 7)))).unwrap();
        // Slopes are well identified by the grid even with 2% noise.
        assert!((cal.params.t_fltr - truth.t_fltr).abs() / truth.t_fltr < 0.05);
        assert!((cal.params.t_tx - truth.t_tx).abs() / truth.t_tx < 0.05);
        assert!(cal.r_squared > 0.99);
    }

    #[test]
    fn too_few_observations_rejected() {
        let obs = synthetic_grid(CostParams::CORRELATION_ID, None);
        assert!(matches!(
            fit_cost_params(&obs[..2]),
            Err(CalibrationError::TooFewObservations { got: 2 })
        ));
    }

    #[test]
    fn singular_design_rejected() {
        // All observations at the same (n_fltr, R): infinitely many fits.
        let o = Observation { n_fltr: 10, mean_replication: 2.0, received_per_sec: 1000.0 };
        assert!(matches!(fit_cost_params(&[o, o, o, o]), Err(CalibrationError::SingularDesign)));
    }

    #[test]
    fn collinear_design_rejected() {
        // n_fltr and E[R] perfectly correlated → t_fltr and t_tx not
        // separable.
        let truth = CostParams::CORRELATION_ID;
        let obs: Vec<Observation> = [1u32, 2, 4, 8]
            .iter()
            .map(|&k| Observation {
                n_fltr: 10 * k,
                mean_replication: 5.0 * k as f64,
                received_per_sec: 1.0 / truth.mean_service_time(10 * k, 5.0 * k as f64),
            })
            .collect();
        assert!(matches!(fit_cost_params(&obs), Err(CalibrationError::SingularDesign)));
    }

    #[test]
    fn invalid_observation_rejected() {
        let mut obs = synthetic_grid(CostParams::CORRELATION_ID, None);
        obs[3].received_per_sec = 0.0;
        assert!(matches!(
            fit_cost_params(&obs),
            Err(CalibrationError::InvalidObservation { index: 3 })
        ));
    }

    #[test]
    fn fixed_rcv_fit_recovers_slopes() {
        let truth = CostParams::CORRELATION_ID;
        let obs = synthetic_grid(truth, None);
        let cal = fit_cost_params_fixed_rcv(&obs, truth.t_rcv).unwrap();
        assert!((cal.params.t_fltr - truth.t_fltr).abs() / truth.t_fltr < 1e-9);
        assert!((cal.params.t_tx - truth.t_tx).abs() / truth.t_tx < 1e-9);
        assert_eq!(cal.params.t_rcv, truth.t_rcv);
        assert!(cal.r_squared > 1.0 - 1e-12);
    }

    #[test]
    fn fixed_rcv_fit_rejects_collinear() {
        let truth = CostParams::CORRELATION_ID;
        let obs: Vec<Observation> = [1u32, 2, 4]
            .iter()
            .map(|&k| Observation {
                n_fltr: 10 * k,
                mean_replication: 10.0 * k as f64,
                received_per_sec: 1.0 / truth.mean_service_time(10 * k, 10.0 * k as f64),
            })
            .collect();
        assert!(matches!(
            fit_cost_params_fixed_rcv(&obs, truth.t_rcv),
            Err(CalibrationError::SingularDesign)
        ));
    }

    #[test]
    fn fixed_rcv_fit_needs_two_points() {
        let o = Observation { n_fltr: 1, mean_replication: 1.0, received_per_sec: 100.0 };
        assert!(matches!(
            fit_cost_params_fixed_rcv(&[o], 0.0),
            Err(CalibrationError::TooFewObservations { got: 1 })
        ));
    }

    #[test]
    fn solve_3x3_known_system() {
        // x + y + z = 6; 2y + 5z = -4; 2x + 5y - z = 27 → x=5, y=3, z=-2.
        let a = [[1.0, 1.0, 1.0], [0.0, 2.0, 5.0], [2.0, 5.0, -1.0]];
        let b = [6.0, -4.0, 27.0];
        let x = solve_3x3(a, b).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_3x3_singular_returns_none() {
        let a = [[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [1.0, 1.0, 1.0]];
        assert!(solve_3x3(a, [1.0, 2.0, 3.0]).is_none());
    }
}
