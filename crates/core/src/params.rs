//! Cost parameters of the message processing time (paper Table I).
//!
//! The paper fits three constants per filter type from saturated-throughput
//! measurements of FioranoMQ 7.5 on a 3.2 GHz single-CPU machine:
//!
//! | filter type          | `t_rcv` (s) | `t_fltr` (s) | `t_tx` (s) |
//! |----------------------|-------------|--------------|------------|
//! | correlation ID       | 8.52e-7     | 7.02e-6      | 1.70e-5    |
//! | application property | 4.10e-6     | 1.46e-5      | 1.62e-5    |
//!
//! These drive every analysis in Section IV. [`CostParams`] carries a
//! calibration (either the Table I presets or one produced by
//! [`crate::calibrate`]), and [`FilterType`] selects between the presets.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The two filter mechanisms the paper measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FilterType {
    /// Correlation-ID filtering (header string / range match — cheap).
    CorrelationId,
    /// Application-property filtering (full selector evaluation — about 2×
    /// the per-filter cost and 50% of the throughput in the measurements).
    ApplicationProperty,
}

impl fmt::Display for FilterType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::CorrelationId => f.write_str("correlation-ID"),
            Self::ApplicationProperty => f.write_str("application-property"),
        }
    }
}

/// Per-message cost parameters `(t_rcv, t_fltr, t_tx, t_store)` in seconds.
///
/// `t_store` extends the paper's Eq. 1 with a per-message persistence cost
/// (journal append + amortized fsync); the paper's own measurements ran
/// the server in persistent mode, so its fitted `t_rcv` silently folds the
/// storage cost in. Keeping the term separate lets the model predict how
/// capacity moves as the fsync policy changes (measured by the
/// `ext_persistence_cost` bench). The Table I presets carry
/// `t_store = 0`, preserving every seed analysis bit-for-bit.
///
/// # Examples
///
/// ```
/// use rjms_core::params::{CostParams, FilterType};
///
/// let p = CostParams::for_filter_type(FilterType::CorrelationId);
/// // E[B] for 100 filters, E[R] = 10 (Eq. 1):
/// let e_b = p.mean_service_time(100, 10.0);
/// assert!((e_b - (8.52e-7 + 100.0 * 7.02e-6 + 10.0 * 1.70e-5)).abs() < 1e-12);
/// // Extended model: add a measured 4 µs storage term.
/// let persistent = p.with_t_store(4.0e-6);
/// assert!((persistent.mean_service_time(100, 10.0) - (e_b + 4.0e-6)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Fixed receive overhead per message, seconds.
    pub t_rcv: f64,
    /// Overhead per installed filter, seconds.
    pub t_fltr: f64,
    /// Overhead per dispatched message copy, seconds.
    pub t_tx: f64,
    /// Fixed persistence overhead per message (write-ahead journal append
    /// plus amortized fsync), seconds; 0 for a memory-only broker.
    pub t_store: f64,
}

impl CostParams {
    /// Table I, correlation-ID filtering.
    pub const CORRELATION_ID: CostParams =
        CostParams { t_rcv: 8.52e-7, t_fltr: 7.02e-6, t_tx: 1.70e-5, t_store: 0.0 };

    /// Table I, application-property filtering.
    pub const APPLICATION_PROPERTY: CostParams =
        CostParams { t_rcv: 4.10e-6, t_fltr: 1.46e-5, t_tx: 1.62e-5, t_store: 0.0 };

    /// Creates cost parameters with no storage term.
    ///
    /// # Panics
    ///
    /// Panics if any component is negative or non-finite.
    pub fn new(t_rcv: f64, t_fltr: f64, t_tx: f64) -> Self {
        for (name, v) in [("t_rcv", t_rcv), ("t_fltr", t_fltr), ("t_tx", t_tx)] {
            assert!(v >= 0.0 && v.is_finite(), "{name} must be finite and >= 0, got {v}");
        }
        Self { t_rcv, t_fltr, t_tx, t_store: 0.0 }
    }

    /// Sets the per-message storage term.
    ///
    /// # Panics
    ///
    /// Panics if `t_store` is negative or non-finite.
    pub fn with_t_store(mut self, t_store: f64) -> Self {
        assert!(
            t_store >= 0.0 && t_store.is_finite(),
            "t_store must be finite and >= 0, got {t_store}"
        );
        self.t_store = t_store;
        self
    }

    /// The Table I preset for a filter type.
    pub fn for_filter_type(filter_type: FilterType) -> Self {
        match filter_type {
            FilterType::CorrelationId => Self::CORRELATION_ID,
            FilterType::ApplicationProperty => Self::APPLICATION_PROPERTY,
        }
    }

    /// The deterministic service-time part
    /// `D = t_rcv + n_fltr · t_fltr + t_store`.
    pub fn deterministic_part(&self, n_fltr: u32) -> f64 {
        self.t_rcv + n_fltr as f64 * self.t_fltr + self.t_store
    }

    /// Mean message processing time `E[B]` (Eq. 1, extended with the
    /// storage term: `E[B] = t_rcv + n_fltr·t_fltr + E[R]·t_tx + t_store`).
    pub fn mean_service_time(&self, n_fltr: u32, mean_replication: f64) -> f64 {
        assert!(
            mean_replication >= 0.0,
            "mean replication grade must be >= 0, got {mean_replication}"
        );
        self.deterministic_part(n_fltr) + mean_replication * self.t_tx
    }
}

impl fmt::Display for CostParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t_rcv={:.3e}s t_fltr={:.3e}s t_tx={:.3e}s", self.t_rcv, self.t_fltr, self.t_tx)?;
        if self.t_store > 0.0 {
            write!(f, " t_store={:.3e}s", self.t_store)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_presets() {
        let c = CostParams::CORRELATION_ID;
        assert_eq!(c.t_rcv, 8.52e-7);
        assert_eq!(c.t_fltr, 7.02e-6);
        assert_eq!(c.t_tx, 1.70e-5);
        let a = CostParams::APPLICATION_PROPERTY;
        assert_eq!(a.t_rcv, 4.10e-6);
        assert_eq!(a.t_fltr, 1.46e-5);
        assert_eq!(a.t_tx, 1.62e-5);
        assert_eq!(CostParams::for_filter_type(FilterType::CorrelationId), c);
        assert_eq!(CostParams::for_filter_type(FilterType::ApplicationProperty), a);
    }

    #[test]
    fn app_property_filters_cost_about_double() {
        // Paper: app-property throughput ≈ 50% of corr-ID — per-filter cost
        // roughly doubles.
        let ratio = CostParams::APPLICATION_PROPERTY.t_fltr / CostParams::CORRELATION_ID.t_fltr;
        assert!(ratio > 1.9 && ratio < 2.2, "ratio {ratio}");
    }

    #[test]
    fn eq1_components() {
        let p = CostParams::new(1e-6, 2e-6, 3e-6);
        assert_eq!(p.deterministic_part(0), 1e-6);
        assert!((p.deterministic_part(10) - 2.1e-5).abs() < 1e-18);
        assert!((p.mean_service_time(10, 4.0) - (2.1e-5 + 1.2e-5)).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "t_tx must be finite")]
    fn rejects_negative() {
        CostParams::new(1e-6, 1e-6, -1e-6);
    }

    #[test]
    fn t_store_shifts_service_time_additively() {
        let base = CostParams::CORRELATION_ID;
        assert_eq!(base.t_store, 0.0);
        let persistent = base.with_t_store(5e-6);
        for &(n_fltr, e_r) in &[(0u32, 0.0), (100, 10.0), (1_000, 50.0)] {
            let shift =
                persistent.mean_service_time(n_fltr, e_r) - base.mean_service_time(n_fltr, e_r);
            assert!((shift - 5e-6).abs() < 1e-15, "shift {shift}");
        }
        // The builder leaves the measured Table I constants untouched.
        assert_eq!(persistent.t_rcv, base.t_rcv);
        assert_eq!(persistent.t_fltr, base.t_fltr);
        assert_eq!(persistent.t_tx, base.t_tx);
    }

    #[test]
    #[should_panic(expected = "t_store must be finite")]
    fn rejects_negative_t_store() {
        CostParams::CORRELATION_ID.with_t_store(-1e-9);
    }

    #[test]
    fn display_contains_all_components() {
        let s = CostParams::CORRELATION_ID.to_string();
        assert!(s.contains("t_rcv") && s.contains("t_fltr") && s.contains("t_tx"));
    }
}
