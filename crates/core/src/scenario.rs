//! High-level application scenarios.
//!
//! An [`ApplicationScenario`] describes a deployment the way the paper's
//! introduction does — so many publishers at such-and-such message rates, so
//! many subscribers with so many filters each, matching a given fraction of
//! messages — and derives everything the analysis needs: the total filter
//! count, the replication-grade distribution, the capacity, and the
//! waiting-time report.

use crate::capacity::server_capacity;
use crate::model::ServerModel;
use crate::params::{CostParams, FilterType};
use crate::waiting::{WaitingTimeAnalysis, WaitingTimeReport};
use rjms_queueing::mg1::Mg1Error;
use rjms_queueing::replication::ReplicationModel;
use serde::{Deserialize, Serialize};

/// A single-server application scenario.
///
/// # Examples
///
/// ```
/// use rjms_core::scenario::ApplicationScenario;
/// use rjms_core::params::FilterType;
///
/// // Presence service: 500 users, each subscribing with one filter that
/// // matches 2% of messages; publishers offer 200 msgs/s in total.
/// let s = ApplicationScenario::builder(FilterType::CorrelationId)
///     .subscribers(500)
///     .filters_per_subscriber(1)
///     .match_probability(0.02)
///     .offered_load(200.0)
///     .build();
/// assert_eq!(s.total_filters(), 500);
/// let report = s.waiting_time(0.9).unwrap();
/// assert!(report.mean_waiting_time >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApplicationScenario {
    filter_type: FilterType,
    params: CostParams,
    subscribers: u32,
    filters_per_subscriber: u32,
    match_probability: f64,
    offered_load: f64,
}

impl ApplicationScenario {
    /// Starts building a scenario for a filter type (selects the Table I
    /// cost preset, overridable with
    /// [`ApplicationScenarioBuilder::cost_params`]).
    pub fn builder(filter_type: FilterType) -> ApplicationScenarioBuilder {
        ApplicationScenarioBuilder {
            filter_type,
            params: CostParams::for_filter_type(filter_type),
            subscribers: 1,
            filters_per_subscriber: 1,
            match_probability: 1.0,
            offered_load: 0.0,
        }
    }

    /// The filter mechanism in use.
    pub fn filter_type(&self) -> FilterType {
        self.filter_type
    }

    /// The cost parameters in use.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Total number of installed filters `n_fltr`.
    pub fn total_filters(&self) -> u32 {
        self.subscribers * self.filters_per_subscriber
    }

    /// The number of subscribers.
    pub fn subscribers(&self) -> u32 {
        self.subscribers
    }

    /// The number of filters each subscriber installs.
    pub fn filters_per_subscriber(&self) -> u32 {
        self.filters_per_subscriber
    }

    /// The per-filter match probability.
    pub fn match_probability(&self) -> f64 {
        self.match_probability
    }

    /// The offered message load, messages per second.
    pub fn offered_load(&self) -> f64 {
        self.offered_load
    }

    /// The replication-grade model: filters match independently, so
    /// `R ~ Bin(n_fltr, p_match)` (paper Eq. 16).
    pub fn replication_model(&self) -> ReplicationModel {
        ReplicationModel::binomial(self.total_filters() as f64, self.match_probability)
    }

    /// Mean replication grade `E[R] = n_fltr · p_match`.
    pub fn mean_replication(&self) -> f64 {
        self.total_filters() as f64 * self.match_probability
    }

    /// The server model for this scenario.
    pub fn server_model(&self) -> ServerModel {
        ServerModel::new(self.params, self.total_filters())
    }

    /// Mean message service time `E[B]` (Eq. 1).
    pub fn mean_service_time(&self) -> f64 {
        self.params.mean_service_time(self.total_filters(), self.mean_replication())
    }

    /// Server capacity at a utilization budget (Eq. 2).
    pub fn capacity(&self, rho: f64) -> f64 {
        server_capacity(&self.params, self.total_filters(), self.mean_replication(), rho)
    }

    /// The utilization induced by the scenario's offered load.
    pub fn utilization(&self) -> f64 {
        self.offered_load * self.mean_service_time()
    }

    /// Whether the server survives the offered load (`ρ < 1`).
    pub fn is_feasible(&self) -> bool {
        self.utilization() < 1.0
    }

    /// Waiting-time analysis at an explicit utilization.
    ///
    /// # Errors
    ///
    /// Returns [`Mg1Error`] when `rho >= 1`.
    pub fn waiting_time(&self, rho: f64) -> Result<WaitingTimeReport, Mg1Error> {
        WaitingTimeAnalysis::for_model(&self.server_model(), self.replication_model(), rho)
            .map(|a| a.report())
    }

    /// Waiting-time analysis at the utilization induced by the offered
    /// load.
    ///
    /// # Errors
    ///
    /// Returns [`Mg1Error`] when the offered load overloads the server.
    pub fn waiting_time_at_offered_load(&self) -> Result<WaitingTimeReport, Mg1Error> {
        WaitingTimeAnalysis::for_service_time(
            self.server_model().service_time(self.replication_model()),
            self.utilization(),
        )
        .map(|a| a.report())
    }
}

/// Builder for [`ApplicationScenario`].
#[derive(Debug, Clone)]
pub struct ApplicationScenarioBuilder {
    filter_type: FilterType,
    params: CostParams,
    subscribers: u32,
    filters_per_subscriber: u32,
    match_probability: f64,
    offered_load: f64,
}

impl ApplicationScenarioBuilder {
    /// Sets the number of subscribers.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn subscribers(mut self, subscribers: u32) -> Self {
        assert!(subscribers > 0, "need at least one subscriber");
        self.subscribers = subscribers;
        self
    }

    /// Sets the number of filters per subscriber.
    pub fn filters_per_subscriber(mut self, filters: u32) -> Self {
        self.filters_per_subscriber = filters;
        self
    }

    /// Sets the per-filter match probability.
    ///
    /// # Panics
    ///
    /// Panics if outside `[0, 1]`.
    pub fn match_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "match probability must be in [0, 1], got {p}");
        self.match_probability = p;
        self
    }

    /// Sets the total offered message load (messages per second).
    ///
    /// # Panics
    ///
    /// Panics if negative or non-finite.
    pub fn offered_load(mut self, rate: f64) -> Self {
        assert!(rate >= 0.0 && rate.is_finite(), "offered load must be finite and >= 0");
        self.offered_load = rate;
        self
    }

    /// Overrides the cost parameters (e.g. with a fresh calibration).
    pub fn cost_params(mut self, params: CostParams) -> Self {
        self.params = params;
        self
    }

    /// Finalizes the scenario.
    pub fn build(self) -> ApplicationScenario {
        ApplicationScenario {
            filter_type: self.filter_type,
            params: self.params,
            subscribers: self.subscribers,
            filters_per_subscriber: self.filters_per_subscriber,
            match_probability: self.match_probability,
            offered_load: self.offered_load,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn presence() -> ApplicationScenario {
        ApplicationScenario::builder(FilterType::CorrelationId)
            .subscribers(500)
            .filters_per_subscriber(1)
            .match_probability(0.02)
            .offered_load(100.0)
            .build()
    }

    #[test]
    fn derived_quantities() {
        let s = presence();
        assert_eq!(s.total_filters(), 500);
        assert!((s.mean_replication() - 10.0).abs() < 1e-12);
        let e_b = CostParams::CORRELATION_ID.mean_service_time(500, 10.0);
        assert!((s.mean_service_time() - e_b).abs() < 1e-15);
        assert!((s.utilization() - 100.0 * e_b).abs() < 1e-12);
    }

    #[test]
    fn feasibility() {
        let s = presence();
        assert!(s.is_feasible());
        let overloaded = ApplicationScenario::builder(FilterType::CorrelationId)
            .subscribers(10_000)
            .filters_per_subscriber(10)
            .match_probability(0.5)
            .offered_load(10_000.0)
            .build();
        assert!(!overloaded.is_feasible());
    }

    #[test]
    fn waiting_time_at_offered_load() {
        let s = presence();
        let r = s.waiting_time_at_offered_load().unwrap();
        assert!((r.utilization - s.utilization()).abs() < 1e-9);
        assert!(r.q9999 > 0.0);
    }

    #[test]
    fn capacity_uses_mean_replication() {
        let s = presence();
        let cap = s.capacity(0.9);
        assert!((cap - 0.9 / s.mean_service_time()).abs() < 1e-9);
    }

    #[test]
    fn app_property_scenario_slower() {
        let corr = presence();
        let app = ApplicationScenario::builder(FilterType::ApplicationProperty)
            .subscribers(500)
            .filters_per_subscriber(1)
            .match_probability(0.02)
            .offered_load(100.0)
            .build();
        assert!(app.mean_service_time() > corr.mean_service_time());
    }

    #[test]
    #[should_panic(expected = "match probability")]
    fn builder_validates_probability() {
        ApplicationScenario::builder(FilterType::CorrelationId).match_probability(2.0);
    }
}
