//! Distributed JMS server architectures (paper §IV-C).
//!
//! Two ways to scale beyond one server, both built from off-the-shelf
//! brokers:
//!
//! * **PSR** (publisher-side replication): every publisher runs its own
//!   broker; all `m` subscribers register their `n_fltr` filters on *each*
//!   of the `n` publisher-side brokers. System capacity (Eq. 21):
//!   `λ_PSR = ρ·n / (t_rcv + m·n_fltr·t_fltr + E[R]·t_tx)`.
//! * **SSR** (subscriber-side replication): every subscriber runs its own
//!   broker; each publisher multicasts every message to all `m` of them.
//!   Each broker carries the full publish rate but only one subscriber's
//!   filters (Eq. 22): `λ_SSR = ρ / (t_rcv + n_fltr·t_fltr + E[R]·t_tx)`.
//!
//! PSR scales with publishers but degrades with subscribers; SSR is flat in
//! both. The printed Eq. 23 of the proceedings has the inequality direction
//! garbled; the crossover implemented here follows directly from comparing
//! Eqs. 21 and 22: PSR outperforms SSR iff
//! `n > (t_rcv + m·n_fltr·t_fltr + E[R]·t_tx) / (t_rcv + n_fltr·t_fltr + E[R]·t_tx)`.

use crate::params::CostParams;
use crate::waiting::WaitingTimeAnalysis;
use rjms_queueing::mg1::Mg1Error;
use rjms_queueing::replication::ReplicationModel;
use rjms_queueing::service::ServiceTime;
use serde::{Deserialize, Serialize};

/// A distributed deployment scenario: `n` publishers, `m` subscribers, each
/// subscriber holding `n_fltr` filters, publishing with mean replication
/// grade `E[R]` per message, at a per-server utilization budget `ρ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributedScenario {
    /// Cost parameters of the individual brokers.
    pub params: CostParams,
    /// Number of publishers `n`.
    pub publishers: u32,
    /// Number of subscribers `m`.
    pub subscribers: u32,
    /// Filters installed per subscriber (paper's comparison uses 10).
    pub filters_per_subscriber: u32,
    /// Mean replication grade `E[R]` of a published message.
    pub mean_replication: f64,
    /// Per-server utilization budget `ρ`.
    pub rho: f64,
}

impl DistributedScenario {
    /// Validates the scenario's numeric ranges.
    ///
    /// # Panics
    ///
    /// Panics if `rho ∉ (0, 1]`, a population is zero, or `E[R]` is
    /// negative.
    fn validate(&self) {
        assert!(self.publishers > 0, "need at least one publisher");
        assert!(self.subscribers > 0, "need at least one subscriber");
        assert!(
            self.rho > 0.0 && self.rho <= 1.0,
            "utilization budget must be in (0, 1], got {}",
            self.rho
        );
        assert!(self.mean_replication >= 0.0, "mean replication must be >= 0");
    }

    /// Mean service time on one *publisher-side* broker: it carries the
    /// filters of all `m` subscribers.
    fn psr_service_time(&self) -> f64 {
        let n_fltr = self.subscribers as u64 * self.filters_per_subscriber as u64;
        self.params.t_rcv
            + n_fltr as f64 * self.params.t_fltr
            + self.mean_replication * self.params.t_tx
    }

    /// Mean service time on one *subscriber-side* broker: it carries only
    /// its own subscriber's filters.
    fn ssr_service_time(&self) -> f64 {
        self.params.t_rcv
            + self.filters_per_subscriber as f64 * self.params.t_fltr
            + self.mean_replication * self.params.t_tx
    }

    /// PSR system capacity (Eq. 21), received messages per second across
    /// all publishers.
    pub fn psr_capacity(&self) -> f64 {
        self.validate();
        self.rho * self.publishers as f64 / self.psr_service_time()
    }

    /// Capacity of a *single* publisher-side broker — the relevant figure
    /// for waiting-time trouble: for `m = 10⁴` subscribers this drops to a
    /// few messages per second.
    pub fn psr_per_server_capacity(&self) -> f64 {
        self.validate();
        self.rho / self.psr_service_time()
    }

    /// SSR system capacity (Eq. 22), independent of `n` and `m`.
    pub fn ssr_capacity(&self) -> f64 {
        self.validate();
        self.rho / self.ssr_service_time()
    }

    /// Whether PSR yields a higher system capacity than SSR for this
    /// scenario (the corrected Eq. 23).
    pub fn psr_outperforms_ssr(&self) -> bool {
        self.psr_capacity() > self.ssr_capacity()
    }

    /// The publisher count above which PSR outperforms SSR, for this
    /// scenario's `m`: the ratio of the two per-server service times.
    pub fn crossover_publishers(&self) -> f64 {
        self.validate();
        self.psr_service_time() / self.ssr_service_time()
    }

    /// Network load (copies/s crossing the interconnect) under PSR:
    /// messages are filtered *before* they leave the publisher site, so only
    /// matched copies travel: `λ_sys · E[R]` at full capacity.
    pub fn psr_network_load(&self) -> f64 {
        self.psr_capacity() * self.mean_replication
    }

    /// Network load under SSR: every message is multicast to all `m`
    /// subscriber-side brokers *before* filtering: `λ_sys · m`.
    pub fn ssr_network_load(&self) -> f64 {
        self.ssr_capacity() * self.subscribers as f64
    }
}

/// **Extension (the paper's announced future work):** a subscriber-
/// partitioned broker cluster.
///
/// The paper concludes that neither PSR nor SSR scales in both the number
/// of publishers *and* subscribers, and announces work on "concepts to
/// achieve true JMS system scalability". This type models the natural such
/// concept with off-the-shelf brokers: a cluster of `k` brokers where the
/// `m` subscribers are *partitioned* across brokers (each broker carries
/// `m/k` subscribers' filters) and every publisher multicasts each message
/// to all `k` brokers.
///
/// Per-broker mean service time:
/// `E[B_k] = t_rcv + (m/k)·n_fltr·t_fltr + (E[R]/k)·t_tx`
/// (filters *and* dispatched copies split across the partition), so the
/// system capacity `ρ/E[B_k]` grows with `k` — in the subscriber dimension —
/// while being independent of the publisher count `n`, unlike PSR and SSR.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterScenario {
    /// Cost parameters of the individual brokers.
    pub params: CostParams,
    /// Number of brokers `k` in the cluster.
    pub brokers: u32,
    /// Number of subscribers `m` (partitioned across brokers).
    pub subscribers: u32,
    /// Filters installed per subscriber.
    pub filters_per_subscriber: u32,
    /// Mean replication grade `E[R]` of a published message (across the
    /// whole cluster).
    pub mean_replication: f64,
    /// Per-broker utilization budget `ρ`.
    pub rho: f64,
}

impl ClusterScenario {
    fn validate(&self) {
        assert!(self.brokers > 0, "need at least one broker");
        assert!(self.subscribers > 0, "need at least one subscriber");
        assert!(
            self.rho > 0.0 && self.rho <= 1.0,
            "utilization budget must be in (0, 1], got {}",
            self.rho
        );
        assert!(self.mean_replication >= 0.0, "mean replication must be >= 0");
    }

    /// Mean service time on one cluster broker (its filter partition plus
    /// its share of the dispatched copies).
    pub fn per_broker_service_time(&self) -> f64 {
        self.validate();
        let k = self.brokers as f64;
        let partition_filters = self.subscribers as f64 * self.filters_per_subscriber as f64 / k;
        self.params.t_rcv
            + self.params.t_store
            + partition_filters * self.params.t_fltr
            + (self.mean_replication / k) * self.params.t_tx
    }

    /// The full stochastic per-broker service time: Eq. 1 restricted to
    /// one broker's filter partition (`m·n_fltr/k` filters) with a
    /// deterministic per-broker replication share `E[R]/k`. This is what
    /// the M/GI/1 machinery needs to predict *waiting times* on a cluster
    /// broker, not just its capacity.
    pub fn per_broker_service(&self) -> ServiceTime {
        self.validate();
        let k = self.brokers as f64;
        let partition_filters = self.subscribers as f64 * self.filters_per_subscriber as f64 / k;
        let deterministic =
            self.params.t_rcv + self.params.t_store + partition_filters * self.params.t_fltr;
        ServiceTime::new(
            deterministic,
            self.params.t_tx,
            ReplicationModel::deterministic(self.mean_replication / k),
        )
    }

    /// Predicted waiting-time distribution on one cluster broker carrying
    /// `per_broker_rate` received messages per second. Each broker is one
    /// M/GI/1 server, so the prediction holds per broker; a symmetric
    /// cluster has the same distribution on every broker, which is also
    /// the waiting time an arbitrary message experiences system-wide.
    ///
    /// Note the rate semantics: under multicast ingress every broker sees
    /// the full publish stream (`per_broker_rate = λ`); under a
    /// topic-sharded ingress each shard sees its partition
    /// (`per_broker_rate = λ/k`). The scenario itself is agnostic — it
    /// models what one broker does with the messages it receives.
    ///
    /// # Errors
    ///
    /// Returns [`Mg1Error`] if the implied utilization
    /// `per_broker_rate · E[B_k]` reaches 1 (no stationary regime).
    pub fn waiting_time(&self, per_broker_rate: f64) -> Result<WaitingTimeAnalysis, Mg1Error> {
        assert!(
            per_broker_rate.is_finite() && per_broker_rate > 0.0,
            "per-broker rate must be finite and > 0, got {per_broker_rate}"
        );
        let service = self.per_broker_service();
        let rho = per_broker_rate * service.mean();
        WaitingTimeAnalysis::for_service_time(service, rho)
    }

    /// System capacity in received messages per second. Every broker sees
    /// the full publish stream, so the system rate equals the (identical)
    /// per-broker rate.
    pub fn capacity(&self) -> f64 {
        self.rho / self.per_broker_service_time()
    }

    /// The smallest cluster size that supports a target received message
    /// rate, or `None` if even an infinite cluster cannot (the per-message
    /// receive cost `t_rcv` does not shrink with `k`).
    pub fn brokers_needed_for(&self, target_rate: f64) -> Option<u32> {
        self.validate();
        assert!(target_rate > 0.0, "target rate must be positive");
        // ρ/target >= t_rcv + (m·n_fltr·t_fltr + E[R]·t_tx)/k  →  solve k.
        let budget = self.rho / target_rate - self.params.t_rcv;
        if budget <= 0.0 {
            return None;
        }
        let shrinking =
            self.subscribers as f64 * self.filters_per_subscriber as f64 * self.params.t_fltr
                + self.mean_replication * self.params.t_tx;
        Some((shrinking / budget).ceil().max(1.0) as u32)
    }

    /// Ingress network load: every message crosses to all `k` brokers.
    pub fn ingress_network_load(&self) -> f64 {
        self.capacity() * self.brokers as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(n: u32, m: u32) -> DistributedScenario {
        DistributedScenario {
            params: CostParams::CORRELATION_ID,
            publishers: n,
            subscribers: m,
            filters_per_subscriber: 10,
            mean_replication: 1.0,
            rho: 0.9,
        }
    }

    #[test]
    fn eq21_eq22_closed_forms() {
        let s = scenario(10, 100);
        let p = CostParams::CORRELATION_ID;
        let psr_expect = 0.9 * 10.0 / (p.t_rcv + 100.0 * 10.0 * p.t_fltr + 1.0 * p.t_tx);
        let ssr_expect = 0.9 / (p.t_rcv + 10.0 * p.t_fltr + 1.0 * p.t_tx);
        assert!((s.psr_capacity() - psr_expect).abs() / psr_expect < 1e-12);
        assert!((s.ssr_capacity() - ssr_expect).abs() / ssr_expect < 1e-12);
    }

    #[test]
    fn ssr_is_flat_in_n_and_m() {
        assert_eq!(scenario(1, 10).ssr_capacity(), scenario(1000, 10).ssr_capacity());
        assert_eq!(scenario(10, 10).ssr_capacity(), scenario(10, 10_000).ssr_capacity());
    }

    #[test]
    fn psr_scales_with_publishers_and_degrades_with_subscribers() {
        assert!(scenario(100, 100).psr_capacity() > scenario(10, 100).psr_capacity());
        assert!(scenario(10, 10).psr_capacity() > scenario(10, 10_000).psr_capacity());
    }

    #[test]
    fn psr_wins_for_many_publishers_few_subscribers() {
        // Fig. 15: PSR outperforms SSR for medium/large n and small/medium m.
        assert!(scenario(1000, 10).psr_outperforms_ssr());
        assert!(!scenario(2, 10_000).psr_outperforms_ssr());
    }

    #[test]
    fn crossover_consistent_with_comparison() {
        for m in [10u32, 100, 1000] {
            let base = scenario(1, m);
            let cross = base.crossover_publishers();
            let below = DistributedScenario { publishers: (cross * 0.9).max(1.0) as u32, ..base };
            let above = DistributedScenario { publishers: (cross * 1.2).ceil() as u32 + 1, ..base };
            assert!(!below.psr_outperforms_ssr() || cross < 2.0);
            assert!(above.psr_outperforms_ssr());
        }
    }

    #[test]
    fn paper_example_m_1e4_per_server_capacity_single_digit() {
        // §IV-C.3: for m = 10⁴ subscribers the capacity of a single
        // publisher-side server collapses to a few messages per second
        // (the paper quotes 7 msgs/s; plugging the stated parameters into
        // its own Eq. 21 yields ≈1.3 msgs/s — same order, and either value
        // produces the seconds-scale waiting times the paper warns about).
        let s = scenario(100, 10_000);
        let per_server = s.psr_per_server_capacity();
        assert!(per_server > 0.5 && per_server < 10.0, "per-server capacity = {per_server} msgs/s");
        let expect = 0.9
            / (CostParams::CORRELATION_ID.t_rcv
                + 1e5 * CostParams::CORRELATION_ID.t_fltr
                + CostParams::CORRELATION_ID.t_tx);
        assert!((per_server - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn network_load_ssr_exceeds_psr() {
        // §IV-C.2: since m bounds R, SSR produces significantly more
        // network traffic than PSR.
        let s = scenario(10, 1000);
        assert!(s.ssr_network_load() > s.psr_network_load());
    }

    #[test]
    #[should_panic(expected = "at least one publisher")]
    fn rejects_zero_publishers() {
        scenario(0, 10).psr_capacity();
    }

    fn cluster(k: u32, m: u32) -> ClusterScenario {
        ClusterScenario {
            params: CostParams::CORRELATION_ID,
            brokers: k,
            subscribers: m,
            filters_per_subscriber: 10,
            mean_replication: 1.0,
            rho: 0.9,
        }
    }

    #[test]
    fn single_broker_cluster_is_one_server_with_all_filters() {
        let c = cluster(1, 100);
        let expect = 0.9 / CostParams::CORRELATION_ID.mean_service_time(1000, 1.0);
        assert!((c.capacity() - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn per_broker_service_matches_scalar_mean() {
        for k in [1u32, 2, 4, 10] {
            let c = cluster(k, 100);
            let service = c.per_broker_service();
            let mean = c.per_broker_service_time();
            assert!((service.mean() - mean).abs() / mean < 1e-12, "k={k}");
        }
    }

    #[test]
    fn single_broker_waiting_matches_server_model() {
        // k = 1 must reproduce the plain ServerModel analysis exactly.
        let c = cluster(1, 100);
        let rate = 0.5 / c.per_broker_service_time();
        let clustered = c.waiting_time(rate).unwrap().report();
        let direct = WaitingTimeAnalysis::for_model(
            &crate::model::ServerModel::new(c.params, 1000),
            ReplicationModel::deterministic(1.0),
            0.5,
        )
        .unwrap()
        .report();
        let rel = (clustered.mean_waiting_time - direct.mean_waiting_time).abs()
            / direct.mean_waiting_time;
        assert!(rel < 1e-9, "rel {rel}");
        assert!((clustered.q99 - direct.q99).abs() / direct.q99 < 1e-9);
    }

    #[test]
    fn cluster_waiting_shrinks_with_brokers_at_fixed_per_broker_rate_share() {
        // Partitioned ingress: each of k brokers carries λ/k of a fixed
        // total stream. More brokers → smaller partitions → shorter
        // per-broker service → lower utilization → shorter waits.
        let total_rate = 0.6 / cluster(1, 1000).per_broker_service_time();
        let w1 = cluster(1, 1000).waiting_time(total_rate).unwrap().report();
        let w4 = cluster(4, 1000).waiting_time(total_rate / 4.0).unwrap().report();
        assert!(w4.mean_waiting_time < w1.mean_waiting_time / 4.0);
        assert!(w4.q99 < w1.q99);
    }

    #[test]
    fn waiting_time_rejects_saturated_rate() {
        let c = cluster(2, 100);
        let saturating = 1.0 / c.per_broker_service_time();
        assert!(c.waiting_time(saturating).is_err());
        assert!(c.waiting_time(saturating * 0.9).is_ok());
    }

    #[test]
    fn cluster_capacity_scales_with_brokers() {
        let m = 10_000;
        let c1 = cluster(1, m).capacity();
        let c10 = cluster(10, m).capacity();
        let c100 = cluster(100, m).capacity();
        assert!(c10 > 9.0 * c1, "filter splitting must scale nearly linearly");
        assert!(c100 > c10);
    }

    #[test]
    fn cluster_with_k_equals_m_approaches_ssr() {
        // SSR *is* the k = m cluster (one broker per subscriber); the only
        // difference is the per-broker transmit share (E[R] vs E[R]/k),
        // negligible against the filter term.
        let m = 1_000;
        let clus = cluster(m, m);
        // Exact relation: the cluster broker's service time is the SSR
        // broker's with t_tx scaled by 1/k.
        let p = CostParams::CORRELATION_ID;
        let ssr_e_b = p.t_rcv + 10.0 * p.t_fltr + 1.0 * p.t_tx;
        let expected = ssr_e_b - (1.0 - 1.0 / m as f64) * p.t_tx;
        assert!(
            (clus.per_broker_service_time() - expected).abs() < 1e-15,
            "cluster E[B] {} vs expected {}",
            clus.per_broker_service_time(),
            expected
        );
        // In the filter-dominated regime the two coincide.
        let heavy = ClusterScenario { filters_per_subscriber: 1_000, ..clus };
        let heavy_ssr = 0.9 / (p.t_rcv + 1_000.0 * p.t_fltr + p.t_tx);
        assert!((heavy.capacity() - heavy_ssr).abs() / heavy_ssr < 0.01);
    }

    #[test]
    fn cluster_capacity_equals_psr_at_equal_broker_count() {
        // Work conservation under brute-force filtering: k brokers
        // evaluating disjoint *filter* partitions over all messages do the
        // same total filter work as k PSR brokers evaluating all filters
        // over disjoint *message* streams — so the system capacities almost
        // coincide (up to the duplicated t_rcv and the t_tx split). The
        // cluster's advantages are structural: one logical server for
        // subscribers, capacity independent of the publisher count.
        let m = 10_000;
        let k = 100;
        let clus = cluster(k, m).capacity();
        let psr = scenario(k, m).psr_capacity();
        assert!((clus - psr).abs() / psr < 0.02, "cluster {clus} vs PSR {psr}");
    }

    #[test]
    fn brokers_needed_inverse_of_capacity() {
        let c = cluster(1, 10_000);
        let target = 5_000.0;
        let k = c.brokers_needed_for(target).expect("achievable");
        let with_k = ClusterScenario { brokers: k, ..c };
        assert!(with_k.capacity() >= target, "k={k}: {}", with_k.capacity());
        if k > 1 {
            let with_fewer = ClusterScenario { brokers: k - 1, ..c };
            assert!(with_fewer.capacity() < target);
        }
    }

    #[test]
    fn brokers_needed_unreachable_target() {
        // Beyond ρ/t_rcv no cluster size helps.
        let c = cluster(1, 100);
        let max_possible = 0.9 / CostParams::CORRELATION_ID.t_rcv;
        assert_eq!(c.brokers_needed_for(max_possible * 1.01), None);
    }

    #[test]
    fn cluster_ingress_grows_with_k() {
        let c2 = cluster(2, 1000);
        let c20 = cluster(20, 1000);
        assert!(c20.ingress_network_load() > c2.ingress_network_load());
    }
}
