//! The unified workspace error type.
//!
//! Every rjms crate surfaces failures through one [`enum@Error`]: broker
//! control-plane rejections, subscriber receive failures, journal
//! persistence faults, and network transport problems. Domain crates keep
//! deprecated aliases (`BrokerError`, `NetError`, …) for one release and
//! convert their internal error types via `From` impls, so callers match
//! on a single `#[non_exhaustive]` enum with [`std::error::Error::source`]
//! chaining instead of juggling per-crate types.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::PathBuf;

/// Unified error for all rjms operations.
///
/// The enum is `#[non_exhaustive]`: new failure modes may be added without
/// a breaking release, so matches need a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Serialize, Deserialize)]
pub enum Error {
    // --- broker control plane ------------------------------------------
    /// The named topic does not exist. Topics must be created before use
    /// (JMS configures topics before system start).
    TopicNotFound {
        /// The missing topic name.
        topic: String,
    },
    /// The topic already exists.
    TopicExists {
        /// The duplicate topic name.
        topic: String,
    },
    /// The topic name is empty or contains control characters.
    InvalidTopicName {
        /// The rejected name.
        topic: String,
    },
    /// The broker has been shut down.
    Stopped,
    /// A durable subscription with this name is already connected.
    DurableNameInUse {
        /// The topic the durable subscription lives on.
        topic: String,
        /// The durable subscription name.
        name: String,
    },
    /// No durable subscription with this name exists on the topic.
    DurableNotFound {
        /// The topic searched.
        topic: String,
        /// The missing durable subscription name.
        name: String,
    },
    /// A durable subscription cannot be removed while it is connected.
    DurableStillConnected {
        /// The topic the durable subscription lives on.
        topic: String,
        /// The durable subscription name.
        name: String,
    },
    /// A durable subscription requires a literal topic, not a wildcard
    /// pattern.
    DurablePattern {
        /// The rejected pattern.
        pattern: String,
    },
    /// A non-blocking publish found the queue full. The broker's
    /// `TryPublishError::Full` carries the rejected message; this variant
    /// is the payload-free form for unified reporting.
    QueueFull,
    /// Admission control shed the publish: the broker is past its
    /// model-derived arrival budget and this admission class is the first
    /// to lose service. The message was not enqueued; retrying immediately
    /// will not help while the overload lasts.
    PublishShed {
        /// The admission class (0 = lowest priority, shed first).
        class: u8,
    },
    /// Admission control deferred the publish: the broker is pacing this
    /// producer or class. The message was not enqueued; retry after the
    /// indicated delay.
    PublishDeferred {
        /// The admission class of the deferred publish.
        class: u8,
        /// Suggested retry delay in milliseconds.
        retry_after_ms: u64,
    },

    // --- subscriber data plane -----------------------------------------
    /// A blocking receive found the broker stopped and the queue drained.
    Disconnected,

    // --- journal -------------------------------------------------------
    /// A *sealed* journal segment contains an invalid frame. Sealed
    /// segments were synced at rotation, so this is real corruption, not a
    /// torn tail, and recovery refuses to guess.
    JournalCorrupt {
        /// The corrupt segment file.
        segment: PathBuf,
        /// File position of the first invalid byte.
        file_pos: u64,
    },
    /// The requested journal offset is below retention or at/after the
    /// append head.
    UnknownOffset(u64),

    // --- transport -----------------------------------------------------
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// The remote server answered with an error response.
    Remote {
        /// The server's message.
        message: String,
    },
    /// A wire frame failed to decode.
    Decode {
        /// Human-readable description of the malformed frame.
        detail: String,
    },
    /// No response arrived within the configured timeout.
    Timeout,
    /// The connection is closed.
    Closed,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TopicNotFound { topic } => write!(f, "topic `{topic}` not found"),
            Self::TopicExists { topic } => write!(f, "topic `{topic}` already exists"),
            Self::InvalidTopicName { topic } => write!(f, "invalid topic name `{topic}`"),
            Self::Stopped => f.write_str("broker has been stopped"),
            Self::DurableNameInUse { topic, name } => {
                write!(f, "durable subscription `{name}` on `{topic}` is already connected")
            }
            Self::DurableNotFound { topic, name } => {
                write!(f, "durable subscription `{name}` not found on `{topic}`")
            }
            Self::DurableStillConnected { topic, name } => {
                write!(f, "durable subscription `{name}` on `{topic}` is still connected")
            }
            Self::DurablePattern { pattern } => {
                write!(f, "durable subscriptions require a literal topic, got pattern `{pattern}`")
            }
            Self::QueueFull => f.write_str("publish queue is full"),
            Self::PublishShed { class } => {
                write!(f, "publish shed by admission control (class {class})")
            }
            Self::PublishDeferred { class, retry_after_ms } => {
                write!(
                    f,
                    "publish deferred by admission control (class {class}); \
                     retry after {retry_after_ms} ms"
                )
            }
            Self::Disconnected => {
                f.write_str("subscription closed: broker stopped and queue drained")
            }
            Self::JournalCorrupt { segment, file_pos } => {
                write!(f, "sealed segment {} corrupt at byte {file_pos}", segment.display())
            }
            Self::UnknownOffset(offset) => write!(f, "offset {offset} is not in the journal"),
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::Remote { message } => write!(f, "server error: {message}"),
            Self::Decode { detail } => write!(f, "decode error: {detail}"),
            Self::Timeout => f.write_str("timed out waiting for the server"),
            Self::Closed => f.write_str("connection closed"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_messages() {
        assert_eq!(Error::TopicNotFound { topic: "t".into() }.to_string(), "topic `t` not found");
        assert_eq!(Error::Stopped.to_string(), "broker has been stopped");
        assert!(Error::Disconnected.to_string().contains("closed"));
        assert!(Error::QueueFull.to_string().contains("full"));
        assert_eq!(
            Error::PublishShed { class: 0 }.to_string(),
            "publish shed by admission control (class 0)"
        );
        let deferred = Error::PublishDeferred { class: 2, retry_after_ms: 40 };
        assert!(deferred.to_string().contains("class 2"));
        assert!(deferred.to_string().contains("40 ms"));
    }

    #[test]
    fn io_source_is_chained() {
        let e = Error::from(std::io::Error::other("disk on fire"));
        assert!(matches!(e, Error::Io(_)));
        assert_eq!(e.source().unwrap().to_string(), "disk on fire");
        assert!(Error::Timeout.source().is_none());
    }
}
