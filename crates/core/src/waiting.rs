//! End-to-end waiting-time analysis (paper §IV-B).
//!
//! Glues the pieces together: a [`ServerModel`] plus a replication-grade
//! distribution yields the stochastic service time; an operating utilization
//! `ρ` turns it into an `M/GI/1-∞` queue; [`WaitingTimeReport`] collects the
//! quantities the paper reports — `E[B]`, `c_var[B]`, `E[W]`, the Gamma
//! waiting-time distribution (Eq. 20) and the 99% / 99.99% quantiles
//! (Fig. 12).

use crate::model::ServerModel;
use rjms_queueing::mg1::{Mg1, Mg1Error, WaitingTimeDistribution};
use rjms_queueing::replication::ReplicationModel;
use rjms_queueing::service::ServiceTime;
use serde::{Deserialize, Serialize};

/// The headline waiting-time quantities for one operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaitingTimeReport {
    /// Server utilization `ρ`.
    pub utilization: f64,
    /// Mean service time `E[B]`, seconds.
    pub mean_service_time: f64,
    /// Coefficient of variation of the service time `c_var[B]`.
    pub service_cvar: f64,
    /// Arrival rate `λ = ρ/E[B]`, messages per second.
    pub arrival_rate: f64,
    /// Mean waiting time `E[W]`, seconds (Eq. 4).
    pub mean_waiting_time: f64,
    /// 99% waiting-time quantile, seconds.
    pub q99: f64,
    /// 99.99% waiting-time quantile, seconds.
    pub q9999: f64,
    /// Mean queue length `λ·E[W]` (buffer-space estimate).
    pub mean_queue_length: f64,
}

impl WaitingTimeReport {
    /// Mean waiting time normalized by the mean service time, the paper's
    /// Fig. 10 y-axis.
    pub fn normalized_mean_waiting(&self) -> f64 {
        self.mean_waiting_time / self.mean_service_time
    }

    /// 99.99% quantile normalized by `E[B]` (Fig. 12 y-axis).
    pub fn normalized_q9999(&self) -> f64 {
        self.q9999 / self.mean_service_time
    }
}

/// Full analysis object: keeps the queue and distribution for further
/// probing beyond the summary report.
#[derive(Debug, Clone)]
pub struct WaitingTimeAnalysis {
    service: ServiceTime,
    queue: Mg1,
    distribution: WaitingTimeDistribution,
}

impl WaitingTimeAnalysis {
    /// Analyzes a server model under a replication-grade distribution at
    /// utilization `rho`.
    ///
    /// # Errors
    ///
    /// Returns [`Mg1Error`] if `rho >= 1` (no stationary regime).
    pub fn for_model(
        model: &ServerModel,
        replication: ReplicationModel,
        rho: f64,
    ) -> Result<Self, Mg1Error> {
        Self::for_service_time(model.service_time(replication), rho)
    }

    /// Analyzes an explicit service time at utilization `rho`.
    ///
    /// # Errors
    ///
    /// Returns [`Mg1Error`] if `rho >= 1`.
    pub fn for_service_time(service: ServiceTime, rho: f64) -> Result<Self, Mg1Error> {
        let queue = Mg1::with_utilization(rho, service.moments())?;
        let distribution = queue.waiting_time_distribution();
        Ok(Self { service, queue, distribution })
    }

    /// The underlying service time.
    pub fn service(&self) -> &ServiceTime {
        &self.service
    }

    /// The underlying queue.
    pub fn queue(&self) -> &Mg1 {
        &self.queue
    }

    /// The Gamma-approximated waiting-time distribution (Eq. 20).
    pub fn distribution(&self) -> &WaitingTimeDistribution {
        &self.distribution
    }

    /// The summary report.
    pub fn report(&self) -> WaitingTimeReport {
        let e_b = self.service.mean();
        WaitingTimeReport {
            utilization: self.queue.utilization(),
            mean_service_time: e_b,
            service_cvar: self.service.cvar(),
            arrival_rate: self.queue.arrival_rate(),
            mean_waiting_time: self.queue.mean_waiting_time(),
            q99: self.distribution.quantile(0.99),
            q9999: self.distribution.quantile(0.9999),
            mean_queue_length: self.queue.mean_queue_length(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CostParams;

    fn analysis(rho: f64) -> WaitingTimeAnalysis {
        let model = ServerModel::new(CostParams::CORRELATION_ID, 50);
        WaitingTimeAnalysis::for_model(&model, ReplicationModel::binomial(50.0, 0.2), rho).unwrap()
    }

    #[test]
    fn report_fields_consistent() {
        let a = analysis(0.9);
        let r = a.report();
        assert!((r.utilization - 0.9).abs() < 1e-12);
        assert!((r.arrival_rate - 0.9 / r.mean_service_time).abs() < 1e-6);
        assert!(r.q9999 > r.q99);
        assert!(r.q99 > r.mean_waiting_time);
        assert!((r.mean_queue_length - r.arrival_rate * r.mean_waiting_time).abs() < 1e-9);
    }

    #[test]
    fn paper_headline_bound_quantile_below_50_eb() {
        // §IV-B.5: at ρ = 0.9 the 99.99% quantile stays below 50·E[B] for
        // the small service-time cvar values the replication models induce.
        let r = analysis(0.9).report();
        assert!(r.normalized_q9999() < 50.0, "Q_99.99/E[B] = {}", r.normalized_q9999());
    }

    #[test]
    fn twenty_ms_service_time_means_one_second_bound() {
        // §IV-B.5: E[B] = 20 ms at ρ = 0.9 guarantees < 1 s with 99.99%.
        let params = CostParams::new(0.0, 2e-4, 0.0);
        let model = ServerModel::new(params, 100); // E[B] = 20 ms
        let a = WaitingTimeAnalysis::for_model(&model, ReplicationModel::deterministic(0.0), 0.9)
            .unwrap();
        let r = a.report();
        assert!((r.mean_service_time - 0.02).abs() < 1e-12);
        assert!(r.q9999 < 1.0, "Q_99.99 = {} s", r.q9999);
        // And the capacity at that point is only ρ/E[B] = 45 msgs/s.
        assert!((r.arrival_rate - 45.0).abs() < 1e-6);
    }

    #[test]
    fn waiting_grows_with_utilization() {
        let low = analysis(0.5).report();
        let high = analysis(0.95).report();
        assert!(high.normalized_mean_waiting() > low.normalized_mean_waiting());
        assert!(high.q9999 > low.q9999);
    }

    #[test]
    fn unstable_rho_rejected() {
        let model = ServerModel::new(CostParams::CORRELATION_ID, 10);
        assert!(WaitingTimeAnalysis::for_model(&model, ReplicationModel::deterministic(1.0), 1.0)
            .is_err());
    }

    #[test]
    fn normalized_mean_matches_pk_formula() {
        // E[W]/E[B] = ρ(1 + c²)/(2(1-ρ)) for M/G/1.
        let a = analysis(0.8);
        let r = a.report();
        let c2 = r.service_cvar * r.service_cvar;
        let expect = 0.8 * (1.0 + c2) / (2.0 * 0.2);
        assert!((r.normalized_mean_waiting() - expect).abs() < 1e-9);
    }
}
