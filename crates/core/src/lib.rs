//! # rjms-core
//!
//! The performance model of Menth & Henjes, *Analysis of the Message
//! Waiting Time for the FioranoMQ JMS Server* (ICDCS 2006) — the paper's
//! primary contribution, implemented as a library:
//!
//! * [`params`] — the Table I cost constants `(t_rcv, t_fltr, t_tx)` per
//!   filter type,
//! * [`model`] — the service-time model `E[B] = t_rcv + n_fltr·t_fltr +
//!   E[R]·t_tx` (Eq. 1) and the saturated-throughput prediction,
//! * [`calibrate`] — least-squares fitting of the cost constants from
//!   throughput measurements (how Table I is derived),
//! * [`regression`] — the same fit run *online* over a live stream of
//!   per-message `(n_fltr, R, B)` observations, with drift verdicts,
//! * [`capacity`] — server capacity `λ_max = ρ/E[B]` (Eq. 2) and the
//!   filter-benefit rule (Eq. 3) with its break-even match probabilities,
//! * [`waiting`] — the `M/GI/1-∞` waiting-time analysis: mean,
//!   distribution and quantiles (Eqs. 4–20, Figs. 10–12),
//! * [`scenario`] — high-level application scenarios,
//! * [`slo`] — analytic SLO targets: predicted-quantile latency limits and
//!   the utilization ceiling where the latency budget is exhausted,
//! * [`architecture`] — the PSR / SSR distributed architectures
//!   (Eqs. 21–23, Fig. 15).
//!
//! ## Example: capacity planning in four lines
//!
//! ```
//! use rjms_core::params::CostParams;
//! use rjms_core::capacity::server_capacity;
//!
//! // 1000 correlation-ID filters, E[R] = 5, 90% CPU budget:
//! let cap = server_capacity(&CostParams::CORRELATION_ID, 1000, 5.0, 0.9);
//! assert!(cap > 100.0 && cap < 200.0); // ≈ 126 msgs/s
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod architecture;
pub mod calibrate;
pub mod capacity;
pub mod error;
pub mod model;
pub mod monitor;
pub mod params;
pub mod regression;
pub mod report;
pub mod scenario;
pub mod slo;
pub mod sweep;
pub mod waiting;

pub use architecture::{ClusterScenario, DistributedScenario};
pub use calibrate::{
    fit_cost_params, fit_cost_params_fixed_rcv, Calibration, CalibrationError, Observation,
};
pub use capacity::{break_even_match_probability, filter_benefit, server_capacity, FilterBenefit};
pub use error::Error;
pub use model::{ServerModel, ThroughputPrediction};
pub use monitor::{DriftReport, DriftTolerance, ModelMonitor, ModelVerdict};
pub use params::{CostParams, FilterType};
pub use regression::{
    CostRegression, FitMode, FittedCosts, RegressionReport, RegressionTolerance, RegressionVerdict,
};
pub use report::plan_report;
pub use scenario::{ApplicationScenario, ApplicationScenarioBuilder};
pub use slo::{max_utilization_for_quantile, AnalyticSlo};
pub use sweep::{Series, SeriesPoint};
pub use waiting::{WaitingTimeAnalysis, WaitingTimeReport};

// Re-export the queueing vocabulary types that appear in this crate's API.
pub use rjms_queueing::replication::ReplicationModel;
pub use rjms_queueing::service::ServiceTime;
