//! Live analytic-vs-measured drift detection.
//!
//! The paper validates its Eq. 1 + `M/GI/1-∞` model against *offline*
//! measurements (Figs. 10–12). [`ModelMonitor`] turns that validation into
//! a runtime check: it holds the calibrated analytic reference — a
//! [`ServerModel`] (cost constants + filter count) and a
//! [`ReplicationModel`] — and periodically consumes the broker's live
//! waiting-time and service-time histograms (from `rjms-metrics`),
//! comparing measured `E[B]`, `c_var[B]`, `E[W]`, and the 99% waiting-time
//! quantile against the prediction at the *measured* arrival rate.
//!
//! A healthy broker yields [`ModelVerdict::Calibrated`]; a broker whose
//! per-message costs have drifted from calibration (more filters than the
//! model assumes, an inflated `t_fltr`, a slow disk behind `t_store`)
//! yields [`ModelVerdict::Drift`] with the violated comparisons spelled
//! out.
//!
//! ## Example
//!
//! ```
//! use rjms_core::monitor::{DriftTolerance, ModelMonitor, ModelVerdict};
//! use rjms_core::{CostParams, ReplicationModel, ServerModel};
//! use rjms_metrics::Histogram;
//! use std::time::Duration;
//!
//! let model = ServerModel::new(CostParams::new(50e-6, 4e-6, 30e-6), 100);
//! let monitor = ModelMonitor::new(model, ReplicationModel::deterministic(5.0));
//!
//! // Feed measured samples (here: synthetic, exactly on-model).
//! let waiting = Histogram::new();
//! let service = Histogram::new();
//! // ... record dispatch measurements ...
//! let verdict = monitor.assess(&waiting.snapshot(), &service.snapshot(), Duration::from_secs(10));
//! assert!(matches!(verdict, ModelVerdict::Insufficient { .. })); // nothing recorded yet
//! ```

use crate::model::ServerModel;
use crate::waiting::{WaitingTimeAnalysis, WaitingTimeReport};
use rjms_metrics::HistogramSnapshot;
use rjms_queueing::replication::ReplicationModel;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Relative tolerances for the analytic-vs-measured comparison.
///
/// The defaults are deliberately loose: histogram quantization contributes
/// up to 3.125%, the Gamma quantile approximation (Eq. 20) a few percent
/// more, and finite measurement windows add sampling noise on top.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftTolerance {
    /// Maximum relative error of measured `E[B]` vs the Eq. 1 prediction.
    pub service_mean: f64,
    /// Maximum absolute error of measured `c_var[B]` vs the model.
    pub service_cvar: f64,
    /// Maximum relative error of measured `E[W]` vs the M/GI/1 prediction.
    pub waiting_mean: f64,
    /// Maximum relative error of the measured 99% waiting-time quantile vs
    /// the Gamma-approximated `Q_0.99[W]`.
    pub waiting_q99: f64,
    /// Minimum number of waiting-time samples for a meaningful verdict.
    pub min_samples: u64,
}

impl Default for DriftTolerance {
    fn default() -> Self {
        Self {
            service_mean: 0.15,
            service_cvar: 0.25,
            waiting_mean: 0.30,
            waiting_q99: 0.35,
            min_samples: 1_000,
        }
    }
}

/// Measured-side summary extracted from the live histograms (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredSummary {
    /// Waiting-time samples in the window.
    pub samples: u64,
    /// Measured arrival rate `λ` (messages per second).
    pub arrival_rate: f64,
    /// Measured mean service time `E[B]`, seconds.
    pub mean_service_time: f64,
    /// Measured coefficient of variation of the service time.
    pub service_cvar: f64,
    /// Implied utilization `λ · E[B]` (with the *measured* service time).
    pub utilization: f64,
    /// Measured mean waiting time `E[W]`, seconds.
    pub mean_waiting_time: f64,
    /// Measured 99% waiting-time quantile, seconds.
    pub q99: f64,
    /// Measured 99.99% waiting-time quantile, seconds.
    pub q9999: f64,
}

/// One analytic-vs-measured comparison that exceeded its tolerance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftViolation {
    /// Which quantity drifted (`"E[B]"`, `"c_var[B]"`, `"E[W]"`, `"Q99[W]"`).
    pub quantity: &'static str,
    /// The measured value (seconds, or dimensionless for `c_var`).
    pub measured: f64,
    /// The model's prediction.
    pub predicted: f64,
    /// The error that was compared against the tolerance (relative, except
    /// absolute for `c_var`).
    pub error: f64,
    /// The tolerance it exceeded.
    pub tolerance: f64,
}

/// Side-by-side measured and predicted quantities plus any violations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftReport {
    /// What the histograms say.
    pub measured: MeasuredSummary,
    /// What Eq. 1 + M/GI/1 predict at the measured arrival rate.
    pub predicted: WaitingTimeReport,
    /// Comparisons that exceeded tolerance (empty when calibrated).
    pub violations: Vec<DriftViolation>,
}

impl DriftReport {
    /// Renders the side-by-side comparison as a compact table.
    pub fn render_text(&self) -> String {
        let m = &self.measured;
        let p = &self.predicted;
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>14} {:>14} {:>9}\n",
            "quantity", "measured", "predicted", "rel.err"
        ));
        let rel = |meas: f64, pred: f64| if pred != 0.0 { (meas - pred) / pred } else { 0.0 };
        for (name, meas, pred) in [
            ("E[B]", m.mean_service_time, p.mean_service_time),
            ("c_var[B]", m.service_cvar, p.service_cvar),
            ("E[W]", m.mean_waiting_time, p.mean_waiting_time),
            ("Q99[W]", m.q99, p.q99),
            ("Q9999[W]", m.q9999, p.q9999),
        ] {
            out.push_str(&format!(
                "{name:<10} {meas:>14.6} {pred:>14.6} {:>8.1}%\n",
                rel(meas, pred) * 100.0
            ));
        }
        for v in &self.violations {
            out.push_str(&format!(
                "DRIFT: {} off by {:.1}% (tolerance {:.1}%)\n",
                v.quantity,
                v.error * 100.0,
                v.tolerance * 100.0
            ));
        }
        out
    }
}

/// The monitor's conclusion about one measurement window.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelVerdict {
    /// Too few samples to judge.
    Insufficient {
        /// Waiting-time samples seen.
        samples: u64,
        /// Samples required by the tolerance config.
        required: u64,
    },
    /// The measured operating point has no stationary M/GI/1 regime
    /// (`ρ >= 1`); the model predicts unbounded waiting and no comparison
    /// is possible.
    Overloaded {
        /// The implied utilization.
        utilization: f64,
    },
    /// All comparisons within tolerance: the live broker agrees with the
    /// calibrated Eq. 1 + M/GI/1 model.
    Calibrated(DriftReport),
    /// At least one comparison exceeded tolerance.
    Drift(DriftReport),
}

impl ModelVerdict {
    /// Whether the verdict is green.
    pub fn is_calibrated(&self) -> bool {
        matches!(self, Self::Calibrated(_))
    }

    /// The underlying report, when one was computed.
    pub fn report(&self) -> Option<&DriftReport> {
        match self {
            Self::Calibrated(r) | Self::Drift(r) => Some(r),
            _ => None,
        }
    }
}

/// Continuously compares a live broker against its calibrated analytic
/// model. See the [module docs](self) for the methodology.
#[derive(Debug, Clone)]
pub struct ModelMonitor {
    model: ServerModel,
    replication: ReplicationModel,
    tolerance: DriftTolerance,
}

impl ModelMonitor {
    /// Creates a monitor for the calibrated `model` under the expected
    /// replication-grade distribution, with default tolerances.
    pub fn new(model: ServerModel, replication: ReplicationModel) -> Self {
        Self { model, replication, tolerance: DriftTolerance::default() }
    }

    /// Replaces the drift tolerances.
    pub fn with_tolerance(mut self, tolerance: DriftTolerance) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// The analytic reference model.
    pub fn model(&self) -> &ServerModel {
        &self.model
    }

    /// The configured tolerances.
    pub fn tolerance(&self) -> &DriftTolerance {
        &self.tolerance
    }

    /// Judges one measurement window.
    ///
    /// `waiting` and `service` are histograms of per-message waiting and
    /// service times in **nanoseconds** (as recorded by the broker's
    /// dispatcher); `elapsed` is the wall-clock length of the window, used
    /// to compute the measured arrival rate.
    pub fn assess(
        &self,
        waiting: &HistogramSnapshot,
        service: &HistogramSnapshot,
        elapsed: Duration,
    ) -> ModelVerdict {
        let samples = waiting.count.min(service.count);
        if samples < self.tolerance.min_samples || elapsed.is_zero() {
            return ModelVerdict::Insufficient { samples, required: self.tolerance.min_samples };
        }

        const NS: f64 = 1e9;
        let arrival_rate = waiting.count as f64 / elapsed.as_secs_f64();
        let measured = MeasuredSummary {
            samples,
            arrival_rate,
            mean_service_time: service.mean() / NS,
            service_cvar: service.cvar(),
            utilization: arrival_rate * service.mean() / NS,
            mean_waiting_time: waiting.mean() / NS,
            q99: waiting.quantile(0.99).unwrap_or(0) as f64 / NS,
            q9999: waiting.quantile(0.9999).unwrap_or(0) as f64 / NS,
        };

        // Predict at the *measured* arrival rate with the *calibrated*
        // service time: drift in the real per-message costs then shows up
        // as disagreement in both E[B] and E[W].
        let service_model = self.model.service_time(self.replication);
        let rho = arrival_rate * service_model.mean();
        let analysis = match WaitingTimeAnalysis::for_service_time(service_model, rho) {
            Ok(a) => a,
            Err(_) => return ModelVerdict::Overloaded { utilization: rho },
        };
        let predicted = analysis.report();

        let mut violations = Vec::new();
        let mut check_rel = |quantity, measured: f64, predicted: f64, tolerance: f64| {
            let error = if predicted != 0.0 {
                ((measured - predicted) / predicted).abs()
            } else {
                measured.abs()
            };
            if error > tolerance {
                violations.push(DriftViolation { quantity, measured, predicted, error, tolerance });
            }
        };
        check_rel(
            "E[B]",
            measured.mean_service_time,
            predicted.mean_service_time,
            self.tolerance.service_mean,
        );
        check_rel(
            "E[W]",
            measured.mean_waiting_time,
            predicted.mean_waiting_time,
            self.tolerance.waiting_mean,
        );
        check_rel("Q99[W]", measured.q99, predicted.q99, self.tolerance.waiting_q99);
        let cvar_error = (measured.service_cvar - predicted.service_cvar).abs();
        if cvar_error > self.tolerance.service_cvar {
            violations.push(DriftViolation {
                quantity: "c_var[B]",
                measured: measured.service_cvar,
                predicted: predicted.service_cvar,
                error: cvar_error,
                tolerance: self.tolerance.service_cvar,
            });
        }

        let report = DriftReport { measured, predicted, violations };
        if report.violations.is_empty() {
            ModelVerdict::Calibrated(report)
        } else {
            ModelVerdict::Drift(report)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CostParams;
    use rjms_metrics::Histogram;

    fn monitor() -> ModelMonitor {
        let model = ServerModel::new(CostParams::new(50e-6, 4e-6, 30e-6), 100);
        ModelMonitor::new(model, ReplicationModel::deterministic(5.0))
    }

    #[test]
    fn too_few_samples_is_insufficient() {
        let waiting = Histogram::new();
        let service = Histogram::new();
        waiting.record(1_000);
        service.record(1_000);
        let v = monitor().assess(&waiting.snapshot(), &service.snapshot(), Duration::from_secs(1));
        assert!(matches!(v, ModelVerdict::Insufficient { samples: 1, .. }));
    }

    #[test]
    fn overload_is_flagged() {
        // E[B] = 50µs + 100·4µs + 5·30µs = 600µs; λ = 10k/s → ρ = 6.
        let waiting = Histogram::new();
        let service = Histogram::new();
        for _ in 0..10_000 {
            waiting.record(1_000_000);
            service.record(600_000);
        }
        let v = monitor().assess(&waiting.snapshot(), &service.snapshot(), Duration::from_secs(1));
        match v {
            ModelVerdict::Overloaded { utilization } => assert!(utilization > 1.0),
            other => panic!("expected overload, got {other:?}"),
        }
    }
}
