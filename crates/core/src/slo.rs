//! Analytic derivation of waiting-time SLO targets (paper §IV-B applied
//! to operations).
//!
//! The paper's waiting-time machinery answers "what does `W` look like at
//! utilization `ρ`?" — this module runs it in both directions to produce
//! *service-level objectives* an alerting engine can evaluate:
//!
//! * **forward**: at a planned operating point `ρ_plan`, the Gamma
//!   approximation (Eq. 20) predicts `W99`/`W99.99`; multiplying by a
//!   headroom factor yields defensible latency limits instead of folklore
//!   round numbers, and
//! * **inverse**: given a latency limit, [`max_utilization_for_quantile`]
//!   binary-searches the highest `ρ` whose predicted quantile still meets
//!   it — the utilization ceiling at which the latency budget is exactly
//!   exhausted (the Fig. 12 curves read right-to-left).
//!
//! The derived [`AnalyticSlo`] carries the predicted operating point so an
//! alert that fires against these targets can attach the model's own
//! expectation as evidence.

use crate::model::ServerModel;
use crate::waiting::{WaitingTimeAnalysis, WaitingTimeReport};
use rjms_queueing::mg1::Mg1Error;
use rjms_queueing::replication::ReplicationModel;
use rjms_queueing::service::ServiceTime;
use serde::{Deserialize, Serialize};

/// Latency/utilization objectives derived from the analytic model at a
/// planned operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalyticSlo {
    /// 99th-percentile waiting-time limit, seconds.
    pub w99_limit: f64,
    /// 99.99th-percentile waiting-time limit, seconds.
    pub w9999_limit: f64,
    /// Utilization ceiling: the `ρ` at which the predicted `W99` exactly
    /// exhausts `w99_limit`. Always at least the planned `ρ`.
    pub rho_ceiling: f64,
    /// The model's prediction at the planned operating point — attached to
    /// alerts as the analytic side of the evidence.
    pub plan: WaitingTimeReport,
}

impl AnalyticSlo {
    /// Derives objectives for a server model under a replication-grade
    /// distribution at planned utilization `rho_plan`, with `headroom`
    /// (e.g. `1.5` = targets 50% looser than the prediction, `1.0` =
    /// targets exactly at the prediction).
    ///
    /// # Errors
    ///
    /// Returns [`Mg1Error`] if `rho_plan >= 1` (no stationary regime) and
    /// panics if `headroom < 1`.
    pub fn derive(
        model: &ServerModel,
        replication: ReplicationModel,
        rho_plan: f64,
        headroom: f64,
    ) -> Result<Self, Mg1Error> {
        Self::for_service_time(model.service_time(replication), rho_plan, headroom)
    }

    /// [`AnalyticSlo::derive`] for an explicit service time.
    ///
    /// # Errors
    ///
    /// Returns [`Mg1Error`] if `rho_plan >= 1`.
    pub fn for_service_time(
        service: ServiceTime,
        rho_plan: f64,
        headroom: f64,
    ) -> Result<Self, Mg1Error> {
        assert!(headroom >= 1.0, "headroom must be >= 1, got {headroom}");
        let analysis = WaitingTimeAnalysis::for_service_time(service, rho_plan)?;
        let plan = analysis.report();
        let w99_limit = plan.q99 * headroom;
        let w9999_limit = plan.q9999 * headroom;
        let rho_ceiling = max_utilization_for_quantile(analysis.service(), 0.99, w99_limit);
        Ok(Self { w99_limit, w9999_limit, rho_ceiling, plan })
    }
}

/// The highest utilization `ρ` at which the predicted waiting-time
/// quantile `W_p` still meets `limit_seconds` — the latency budget's
/// utilization ceiling.
///
/// `W_p(ρ)` is strictly increasing in `ρ`, so a binary search over
/// `(0, 1)` converges; the answer is clamped to `[0, MAX_RHO]` where
/// `MAX_RHO = 0.999` keeps the queue analysis numerically sane. Returns
/// `0.0` when even a nearly idle server misses the limit.
pub fn max_utilization_for_quantile(service: &ServiceTime, p: f64, limit_seconds: f64) -> f64 {
    const MAX_RHO: f64 = 0.999;
    assert!((0.0..1.0).contains(&p) && p > 0.0, "quantile requires p in (0, 1), got {p}");
    let quantile_at = |rho: f64| -> f64 {
        WaitingTimeAnalysis::for_service_time(*service, rho)
            .expect("rho < 1 by construction")
            .distribution()
            .quantile(p)
    };
    if quantile_at(MAX_RHO) <= limit_seconds {
        return MAX_RHO;
    }
    let (mut lo, mut hi) = (0.0f64, MAX_RHO);
    // 60 halvings push the bracket width below f64 resolution on (0, 1).
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if quantile_at(mid) <= limit_seconds {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CostParams;

    fn model() -> ServerModel {
        ServerModel::new(CostParams::CORRELATION_ID, 50)
    }

    fn slo(rho: f64, headroom: f64) -> AnalyticSlo {
        AnalyticSlo::derive(&model(), ReplicationModel::binomial(50.0, 0.2), rho, headroom).unwrap()
    }

    #[test]
    fn limits_scale_with_headroom_and_sit_above_prediction() {
        let tight = slo(0.9, 1.0);
        let loose = slo(0.9, 2.0);
        assert!((tight.w99_limit - tight.plan.q99).abs() < 1e-12);
        assert!((loose.w99_limit - 2.0 * tight.w99_limit).abs() < 1e-12);
        assert!(loose.w9999_limit > loose.w99_limit);
    }

    #[test]
    fn ceiling_is_where_the_budget_is_exhausted() {
        let s = slo(0.8, 1.5);
        assert!(s.rho_ceiling >= 0.8, "ceiling {} below plan", s.rho_ceiling);
        assert!(s.rho_ceiling < 1.0);
        // At the ceiling the predicted W99 matches the limit (up to the
        // binary-search bracket).
        let at_ceiling = WaitingTimeAnalysis::for_model(
            &model(),
            ReplicationModel::binomial(50.0, 0.2),
            s.rho_ceiling,
        )
        .unwrap()
        .report();
        assert!(
            (at_ceiling.q99 - s.w99_limit).abs() / s.w99_limit < 1e-6,
            "q99 at ceiling {} vs limit {}",
            at_ceiling.q99,
            s.w99_limit
        );
    }

    #[test]
    fn headroom_one_puts_ceiling_at_plan() {
        let s = slo(0.7, 1.0);
        assert!((s.rho_ceiling - 0.7).abs() < 1e-6, "ceiling {}", s.rho_ceiling);
    }

    #[test]
    fn generous_limit_saturates_ceiling() {
        let service = model().service_time(ReplicationModel::deterministic(5.0));
        let rho = max_utilization_for_quantile(&service, 0.99, 3600.0);
        assert!((rho - 0.999).abs() < 1e-12);
    }

    #[test]
    fn zero_limit_ceiling_is_the_waiting_atom() {
        // W has an atom at zero with mass 1-ρ, so W99 = 0 exactly while
        // ρ ≤ 0.01; a zero-latency budget is met up to that utilization.
        let service = model().service_time(ReplicationModel::deterministic(5.0));
        let rho = max_utilization_for_quantile(&service, 0.99, 0.0);
        assert!((rho - 0.01).abs() < 1e-6, "rho {rho}");
    }

    #[test]
    fn ceiling_monotone_in_limit() {
        let service = model().service_time(ReplicationModel::binomial(50.0, 0.2));
        let w99_at_06 = WaitingTimeAnalysis::for_service_time(service, 0.6)
            .unwrap()
            .distribution()
            .quantile(0.99);
        let lo = max_utilization_for_quantile(&service, 0.99, w99_at_06);
        let hi = max_utilization_for_quantile(&service, 0.99, 2.0 * w99_at_06);
        assert!((lo - 0.6).abs() < 1e-6, "inverse of forward should recover rho, got {lo}");
        assert!(hi > lo);
    }

    #[test]
    #[should_panic(expected = "headroom must be >= 1")]
    fn sub_unit_headroom_rejected() {
        slo(0.9, 0.5);
    }
}
