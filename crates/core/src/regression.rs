//! Online least-squares regression of the Eq. 1 cost constants.
//!
//! [`crate::calibrate`] fits `(t_rcv, t_fltr, t_tx)` offline from a grid of
//! saturated-throughput runs. This module performs the same fit *online*,
//! from the broker's live stream of per-message observations
//! `(n_fltr, R, B)`: [`CostRegression`] accumulates the normal-equation
//! sums incrementally (O(1) memory, O(1) per observation, mergeable across
//! dispatcher threads), and [`CostRegression::assess`] turns the current
//! fit into a confidence-gated verdict against the configured
//! [`CostParams`] — the per-topic analogue of
//! [`crate::monitor::ModelMonitor`].
//!
//! ## Identifiability
//!
//! The full 3-parameter fit needs the design to vary in *both* `n_fltr`
//! and `E[R]`. A single topic usually sees a constant filter count, which
//! makes the intercept and the filter slope collinear; and a topic whose
//! subscribers all match sees a constant `R` on top of that. The fit is
//! therefore *adaptive*, degrading gracefully through three modes:
//!
//! 1. [`FitMode::Full`] — all three constants free (global stream, where
//!    `n_fltr` varies across topics),
//! 2. [`FitMode::FixedReceive`] — `t_rcv + t_store` anchored to the
//!    configured params, `(t_fltr, t_tx)` fitted (typical per-topic case:
//!    constant `n_fltr`, varying `R`),
//! 3. [`FitMode::FixedFilter`] — only `t_tx` fitted (degenerate topic:
//!    constant `n_fltr` *and* nearly constant `R`).
//!
//! ## Example
//!
//! ```
//! use rjms_core::params::CostParams;
//! use rjms_core::regression::{CostRegression, RegressionTolerance, RegressionVerdict};
//!
//! let truth = CostParams::CORRELATION_ID;
//! let mut reg = CostRegression::new();
//! // A topic with 40 filters whose replication alternates between 2 and 8.
//! for i in 0..1000u32 {
//!     let r = if i % 2 == 0 { 2.0 } else { 8.0 };
//!     reg.observe(40, r, truth.mean_service_time(40, r));
//! }
//! let verdict = reg.assess(&truth, &RegressionTolerance::default());
//! assert!(matches!(verdict, RegressionVerdict::Stable(_)));
//! ```

use crate::calibrate::solve_3x3;
use crate::params::CostParams;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which parameters the adaptive fit left free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FitMode {
    /// All of `(t_rcv, t_fltr, t_tx)` fitted. The fitted intercept lumps
    /// the receive and storage overheads together (the stream observes
    /// only their sum).
    Full,
    /// Intercept anchored to the configured `t_rcv + t_store`;
    /// `(t_fltr, t_tx)` fitted.
    FixedReceive,
    /// Intercept and filter slope anchored; only `t_tx` fitted.
    FixedFilter,
}

impl fmt::Display for FitMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Full => f.write_str("full"),
            Self::FixedReceive => f.write_str("fixed-rcv"),
            Self::FixedFilter => f.write_str("fixed-fltr"),
        }
    }
}

/// The result of one adaptive online fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FittedCosts {
    /// The fitted cost constants. Anchored components are copied from the
    /// reference params; in [`FitMode::Full`] the whole fitted intercept is
    /// reported as `t_rcv` (with `t_store = 0`), since the observation
    /// stream cannot separate the two.
    pub params: CostParams,
    /// Which parameters were actually fitted.
    pub mode: FitMode,
    /// Root-mean-square of the service-time residuals, seconds.
    pub residual_rms: f64,
    /// Coefficient of determination (1 = perfect; 0 when the target does
    /// not vary).
    pub r_squared: f64,
    /// Observations behind the fit.
    pub observations: u64,
}

/// Relative tolerances for the fitted-vs-configured comparison.
///
/// Slopes are compared relatively; the intercept (`t_rcv + t_store`) is
/// the least identified quantity — orders of magnitude below the slope
/// terms at realistic filter counts — so its tolerance is loose, and it is
/// only checked at all when the fit left it free ([`FitMode::Full`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegressionTolerance {
    /// Maximum relative error of the fitted intercept vs the configured
    /// `t_rcv + t_store` (checked only in [`FitMode::Full`]).
    pub t_rcv: f64,
    /// Maximum relative error of the fitted `t_fltr`.
    pub t_fltr: f64,
    /// Maximum relative error of the fitted `t_tx`.
    pub t_tx: f64,
    /// Minimum number of observations for a meaningful verdict.
    pub min_samples: u64,
}

impl Default for RegressionTolerance {
    fn default() -> Self {
        Self { t_rcv: 0.50, t_fltr: 0.25, t_tx: 0.25, min_samples: 256 }
    }
}

/// One fitted component that exceeded its tolerance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostDeviation {
    /// Which constant drifted (`"t_rcv"`, `"t_fltr"`, `"t_tx"`).
    pub component: &'static str,
    /// The fitted value, seconds.
    pub fitted: f64,
    /// The configured reference value, seconds.
    pub configured: f64,
    /// The relative error that exceeded the tolerance.
    pub error: f64,
    /// The tolerance it exceeded.
    pub tolerance: f64,
}

/// Side-by-side fitted and configured constants plus any deviations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionReport {
    /// The adaptive fit.
    pub fitted: FittedCosts,
    /// The configured reference the fit was compared against.
    pub anchor: CostParams,
    /// Components that exceeded tolerance (empty when stable).
    pub deviations: Vec<CostDeviation>,
}

/// The regressor's conclusion about the stream so far.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RegressionVerdict {
    /// Too few observations to judge.
    Insufficient {
        /// Observations seen.
        samples: u64,
        /// Observations required by the tolerance config.
        required: u64,
    },
    /// Enough observations, but the design does not identify even a single
    /// slope (e.g. every message identical), or the best fit was physically
    /// meaningless (materially negative cost).
    Unidentifiable {
        /// Observations seen.
        samples: u64,
    },
    /// Every fitted component agrees with the configured params.
    Stable(RegressionReport),
    /// At least one fitted component exceeded its tolerance.
    Drift(RegressionReport),
}

impl RegressionVerdict {
    /// Short lowercase tag for rendering (`"insufficient"`,
    /// `"unidentifiable"`, `"stable"`, `"drift"`).
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Insufficient { .. } => "insufficient",
            Self::Unidentifiable { .. } => "unidentifiable",
            Self::Stable(_) => "stable",
            Self::Drift(_) => "drift",
        }
    }

    /// The underlying report, when a fit was produced.
    pub fn report(&self) -> Option<&RegressionReport> {
        match self {
            Self::Stable(r) | Self::Drift(r) => Some(r),
            _ => None,
        }
    }
}

/// Why [`CostRegression::fit`] could not produce parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RegressionError {
    /// Fewer than 2 observations.
    TooFewObservations {
        /// How many were accumulated.
        got: u64,
    },
    /// No fit mode was identifiable (the design never varies).
    Unidentifiable,
    /// The best identifiable fit produced a materially negative cost.
    NegativeCost {
        /// The offending fitted `(t_rcv, t_fltr, t_tx)` triple.
        fitted: (f64, f64, f64),
    },
}

impl fmt::Display for RegressionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooFewObservations { got } => {
                write!(f, "need at least 2 observations, got {got}")
            }
            Self::Unidentifiable => {
                f.write_str("design never varies: no cost component is identifiable")
            }
            Self::NegativeCost { fitted } => write!(
                f,
                "fit produced negative cost component (t_rcv={:.3e}, t_fltr={:.3e}, t_tx={:.3e})",
                fitted.0, fitted.1, fitted.2
            ),
        }
    }
}

impl std::error::Error for RegressionError {}

/// Incremental normal-equation sums for the Eq. 1 design
/// `B = t_rcv' + n_fltr·t_fltr + R·t_tx` (where `t_rcv'` lumps receive and
/// storage overheads).
///
/// The accumulator is a plain value type: `Copy`-cheap to stage in
/// per-thread scratch space and [`merge`](Self::merge)-able into a shared
/// table, exactly like the broker's histogram scratch buffers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CostRegression {
    n: u64,
    rejected: u64,
    // Σ over observations of: f = n_fltr, r = R, y = B (seconds).
    sf: f64,
    sr: f64,
    sy: f64,
    sff: f64,
    sfr: f64,
    srr: f64,
    sfy: f64,
    sry: f64,
    syy: f64,
}

// Matches the offline calibrator's tolerance for noise-driven tiny
// negative components (clamped to 0 rather than rejected).
const NEG_TOL: f64 = -1e-7;
// Scale-relative singularity threshold, as in `calibrate`.
const SINGULAR_EPS: f64 = 1e-12;

impl CostRegression {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds in one observation: a message that traversed `n_fltr`
    /// installed filters, was replicated to `r` subscribers, and took
    /// `service_time` seconds of server time.
    ///
    /// Non-finite or non-positive service times and negative or non-finite
    /// replication grades are counted in [`rejected`](Self::rejected) and
    /// otherwise ignored — the live stream occasionally produces zero-tick
    /// timings from clock granularity.
    pub fn observe(&mut self, n_fltr: u32, r: f64, service_time: f64) {
        if !(service_time > 0.0 && service_time.is_finite() && r >= 0.0 && r.is_finite()) {
            self.rejected += 1;
            return;
        }
        let f = n_fltr as f64;
        self.n += 1;
        self.sf += f;
        self.sr += r;
        self.sy += service_time;
        self.sff += f * f;
        self.sfr += f * r;
        self.srr += r * r;
        self.sfy += f * service_time;
        self.sry += r * service_time;
        self.syy += service_time * service_time;
    }

    /// Folds another accumulator into this one (sums are additive).
    pub fn merge(&mut self, other: &CostRegression) {
        self.n += other.n;
        self.rejected += other.rejected;
        self.sf += other.sf;
        self.sr += other.sr;
        self.sy += other.sy;
        self.sff += other.sff;
        self.sfr += other.sfr;
        self.srr += other.srr;
        self.sfy += other.sfy;
        self.sry += other.sry;
        self.syy += other.syy;
    }

    /// Observations accumulated.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether no observation has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Observations dropped as invalid (see [`observe`](Self::observe)).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Mean filter count over the accumulated stream (0 when empty).
    pub fn mean_filters(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sf / self.n as f64
        }
    }

    /// Mean replication grade over the accumulated stream (0 when empty).
    pub fn mean_replication(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sr / self.n as f64
        }
    }

    /// Mean service time over the accumulated stream, seconds (0 when
    /// empty).
    pub fn mean_service_time(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sy / self.n as f64
        }
    }

    /// Runs the adaptive fit: [`FitMode::Full`] when the design identifies
    /// all three constants, degrading to [`FitMode::FixedReceive`] and
    /// [`FitMode::FixedFilter`] with the missing components taken from
    /// `anchor`.
    ///
    /// # Errors
    ///
    /// See [`RegressionError`].
    pub fn fit(&self, anchor: &CostParams) -> Result<FittedCosts, RegressionError> {
        if self.n < 2 {
            return Err(RegressionError::TooFewObservations { got: self.n });
        }
        let n = self.n as f64;
        // Anchored deterministic intercept: receive + storage overhead.
        let d0 = anchor.t_rcv + anchor.t_store;

        // 1. Full 3-parameter solve (needs n >= 3 and a non-singular
        //    design: variation in both n_fltr and R).
        if self.n >= 3 {
            let ata = [
                [n, self.sf, self.sr],
                [self.sf, self.sff, self.sfr],
                [self.sr, self.sfr, self.srr],
            ];
            let aty = [self.sy, self.sfy, self.sry];
            if let Some([c0, c1, c2]) = solve_3x3(ata, aty) {
                if c0 >= NEG_TOL && c1 >= NEG_TOL && c2 >= NEG_TOL {
                    let params = CostParams::new(c0.max(0.0), c1.max(0.0), c2.max(0.0));
                    return Ok(self.diagnose(params, FitMode::Full));
                }
                // Materially negative full fit: fall through to the
                // anchored modes, which are better conditioned.
            }
        }

        // 2. Anchored intercept, 2×2 over rows [n_fltr, R] against
        //    y − (t_rcv + t_store).
        let (a11, a12, a22) = (self.sff, self.sfr, self.srr);
        let b1 = self.sfy - d0 * self.sf;
        let b2 = self.sry - d0 * self.sr;
        let det = a11 * a22 - a12 * a12;
        let scale = a11.abs().max(a22.abs()).max(a12.abs());
        if scale > 0.0 && det.abs() >= SINGULAR_EPS * scale * scale {
            let t_fltr = (b1 * a22 - b2 * a12) / det;
            let t_tx = (a11 * b2 - a12 * b1) / det;
            if t_fltr < NEG_TOL || t_tx < NEG_TOL {
                return Err(RegressionError::NegativeCost { fitted: (anchor.t_rcv, t_fltr, t_tx) });
            }
            let params = CostParams::new(anchor.t_rcv, t_fltr.max(0.0), t_tx.max(0.0))
                .with_t_store(anchor.t_store);
            return Ok(self.diagnose(params, FitMode::FixedReceive));
        }

        // 3. Anchored intercept and filter slope; 1-parameter solve for
        //    t_tx against y − (t_rcv + t_store + n_fltr·t_fltr).
        if self.srr > 0.0 {
            let t_tx = (self.sry - d0 * self.sr - anchor.t_fltr * self.sfr) / self.srr;
            if t_tx < NEG_TOL {
                return Err(RegressionError::NegativeCost {
                    fitted: (anchor.t_rcv, anchor.t_fltr, t_tx),
                });
            }
            let params = CostParams::new(anchor.t_rcv, anchor.t_fltr, t_tx.max(0.0))
                .with_t_store(anchor.t_store);
            return Ok(self.diagnose(params, FitMode::FixedFilter));
        }

        Err(RegressionError::Unidentifiable)
    }

    /// Residual diagnostics for a candidate fit, from the closed-form sums.
    fn diagnose(&self, params: CostParams, mode: FitMode) -> FittedCosts {
        let n = self.n as f64;
        // ŷ = c0 + c1·f + c2·r with c0 the full deterministic intercept.
        let c0 = params.t_rcv + params.t_store;
        let (c1, c2) = (params.t_fltr, params.t_tx);
        // ss_res = Σy² − 2Σy·ŷ + Σŷ², all expressible in the sums; clamp
        // away the tiny negatives floating cancellation can produce.
        let sy_hat = c0 * self.sy + c1 * self.sfy + c2 * self.sry;
        let s_hat2 = c0 * c0 * n
            + c1 * c1 * self.sff
            + c2 * c2 * self.srr
            + 2.0 * (c0 * c1 * self.sf + c0 * c2 * self.sr + c1 * c2 * self.sfr);
        let ss_res = (self.syy - 2.0 * sy_hat + s_hat2).max(0.0);
        let ss_tot = (self.syy - self.sy * self.sy / n).max(0.0);
        FittedCosts {
            params,
            mode,
            residual_rms: (ss_res / n).sqrt(),
            r_squared: if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 },
            observations: self.n,
        }
    }

    /// Judges the accumulated stream against the configured `anchor`
    /// params: the online analogue of
    /// [`ModelMonitor::assess`](crate::monitor::ModelMonitor::assess).
    pub fn assess(
        &self,
        anchor: &CostParams,
        tolerance: &RegressionTolerance,
    ) -> RegressionVerdict {
        if self.n < tolerance.min_samples {
            return RegressionVerdict::Insufficient {
                samples: self.n,
                required: tolerance.min_samples,
            };
        }
        let fitted = match self.fit(anchor) {
            Ok(f) => f,
            Err(_) => return RegressionVerdict::Unidentifiable { samples: self.n },
        };

        let mut deviations = Vec::new();
        let mut check = |component, value: f64, reference: f64, tol: f64| {
            let error = if reference != 0.0 {
                ((value - reference) / reference).abs()
            } else {
                value.abs()
            };
            if error > tol {
                deviations.push(CostDeviation {
                    component,
                    fitted: value,
                    configured: reference,
                    error,
                    tolerance: tol,
                });
            }
        };
        match fitted.mode {
            FitMode::Full => {
                // The fitted intercept lumps receive + storage cost.
                check(
                    "t_rcv",
                    fitted.params.t_rcv + fitted.params.t_store,
                    anchor.t_rcv + anchor.t_store,
                    tolerance.t_rcv,
                );
                check("t_fltr", fitted.params.t_fltr, anchor.t_fltr, tolerance.t_fltr);
                check("t_tx", fitted.params.t_tx, anchor.t_tx, tolerance.t_tx);
            }
            FitMode::FixedReceive => {
                check("t_fltr", fitted.params.t_fltr, anchor.t_fltr, tolerance.t_fltr);
                check("t_tx", fitted.params.t_tx, anchor.t_tx, tolerance.t_tx);
            }
            FitMode::FixedFilter => {
                check("t_tx", fitted.params.t_tx, anchor.t_tx, tolerance.t_tx);
            }
        }

        let report = RegressionReport { fitted, anchor: *anchor, deviations };
        if report.deviations.is_empty() {
            RegressionVerdict::Stable(report)
        } else {
            RegressionVerdict::Drift(report)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic multiplicative noise without pulling in `rand`.
    fn xorshift_noise(seed: u64) -> impl FnMut(f64) -> f64 {
        let mut state = seed.max(1);
        move |amp: f64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            1.0 + amp * (2.0 * u - 1.0)
        }
    }

    #[test]
    fn full_fit_recovers_ground_truth_when_design_varies() {
        let truth = CostParams::CORRELATION_ID;
        let mut reg = CostRegression::new();
        for n in [5u32, 20, 80, 160] {
            for r in [1.0f64, 4.0, 16.0, 40.0] {
                for _ in 0..8 {
                    reg.observe(n, r, truth.mean_service_time(n, r));
                }
            }
        }
        let fit = reg.fit(&CostParams::APPLICATION_PROPERTY).unwrap();
        assert_eq!(fit.mode, FitMode::Full);
        assert!((fit.params.t_rcv - truth.t_rcv).abs() / truth.t_rcv < 1e-6);
        assert!((fit.params.t_fltr - truth.t_fltr).abs() / truth.t_fltr < 1e-9);
        assert!((fit.params.t_tx - truth.t_tx).abs() / truth.t_tx < 1e-9);
        assert!(fit.r_squared > 1.0 - 1e-9);
    }

    #[test]
    fn constant_filters_falls_back_to_anchored_fit() {
        // Per-topic stream: n_fltr is constant, R varies — the 3-parameter
        // design is singular, the anchored 2-parameter fit is not.
        let truth = CostParams::CORRELATION_ID;
        let mut reg = CostRegression::new();
        for i in 0..500u32 {
            let r = 1.0 + (i % 7) as f64;
            reg.observe(50, r, truth.mean_service_time(50, r));
        }
        let fit = reg.fit(&truth).unwrap();
        assert_eq!(fit.mode, FitMode::FixedReceive);
        assert!((fit.params.t_fltr - truth.t_fltr).abs() / truth.t_fltr < 1e-6);
        assert!((fit.params.t_tx - truth.t_tx).abs() / truth.t_tx < 1e-6);
    }

    #[test]
    fn constant_design_falls_back_to_tx_only_fit() {
        let truth = CostParams::CORRELATION_ID;
        let mut reg = CostRegression::new();
        for _ in 0..100 {
            reg.observe(50, 6.0, truth.mean_service_time(50, 6.0));
        }
        let fit = reg.fit(&truth).unwrap();
        assert_eq!(fit.mode, FitMode::FixedFilter);
        assert!((fit.params.t_tx - truth.t_tx).abs() / truth.t_tx < 1e-6);
    }

    #[test]
    fn zero_replication_constant_design_is_unidentifiable() {
        let mut reg = CostRegression::new();
        for _ in 0..100 {
            reg.observe(50, 0.0, 1e-4);
        }
        assert!(matches!(
            reg.fit(&CostParams::CORRELATION_ID),
            Err(RegressionError::Unidentifiable)
        ));
    }

    #[test]
    fn too_few_observations_rejected() {
        let mut reg = CostRegression::new();
        reg.observe(1, 1.0, 1e-4);
        assert!(matches!(
            reg.fit(&CostParams::CORRELATION_ID),
            Err(RegressionError::TooFewObservations { got: 1 })
        ));
    }

    #[test]
    fn invalid_observations_are_counted_not_accumulated() {
        let mut reg = CostRegression::new();
        reg.observe(1, 1.0, 0.0);
        reg.observe(1, 1.0, f64::NAN);
        reg.observe(1, -1.0, 1e-4);
        assert_eq!(reg.len(), 0);
        assert_eq!(reg.rejected(), 3);
    }

    #[test]
    fn merge_matches_single_accumulator() {
        let truth = CostParams::APPLICATION_PROPERTY;
        let (mut a, mut b, mut whole) =
            (CostRegression::new(), CostRegression::new(), CostRegression::new());
        let mut noise = xorshift_noise(11);
        for i in 0..600u32 {
            let (n, r) = (10 + (i % 3) * 40, 1.0 + (i % 9) as f64);
            let y = truth.mean_service_time(n, r) * noise(0.01);
            if i % 2 == 0 {
                a.observe(n, r, y)
            } else {
                b.observe(n, r, y)
            }
            whole.observe(n, r, y);
        }
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.len(), whole.len());
        let f1 = merged.fit(&truth).unwrap();
        let f2 = whole.fit(&truth).unwrap();
        assert!((f1.params.t_fltr - f2.params.t_fltr).abs() < 1e-12);
        assert!((f1.params.t_tx - f2.params.t_tx).abs() < 1e-12);
    }

    #[test]
    fn assess_is_insufficient_below_min_samples() {
        let truth = CostParams::CORRELATION_ID;
        let mut reg = CostRegression::new();
        for i in 0..10u32 {
            reg.observe(5, 1.0 + i as f64, truth.mean_service_time(5, 1.0 + i as f64));
        }
        match reg.assess(&truth, &RegressionTolerance::default()) {
            RegressionVerdict::Insufficient { samples: 10, required } => {
                assert_eq!(required, RegressionTolerance::default().min_samples);
            }
            other => panic!("expected insufficient, got {other:?}"),
        }
    }

    #[test]
    fn assess_flags_drift_when_costs_move() {
        let configured = CostParams::CORRELATION_ID;
        // The live server's true filter cost is 2× the configured one.
        let actual = CostParams::new(configured.t_rcv, configured.t_fltr * 2.0, configured.t_tx);
        let mut reg = CostRegression::new();
        let mut noise = xorshift_noise(3);
        for i in 0..2000u32 {
            let r = 1.0 + (i % 11) as f64;
            reg.observe(80, r, actual.mean_service_time(80, r) * noise(0.02));
        }
        match reg.assess(&configured, &RegressionTolerance::default()) {
            RegressionVerdict::Drift(report) => {
                assert!(report.deviations.iter().any(|d| d.component == "t_fltr"));
            }
            other => panic!("expected drift, got {other:?}"),
        }
    }

    #[test]
    fn assess_is_stable_on_model_with_noise() {
        let truth = CostParams::APPLICATION_PROPERTY;
        let mut reg = CostRegression::new();
        let mut noise = xorshift_noise(17);
        for i in 0..4000u32 {
            let r = (i % 13) as f64;
            reg.observe(30, r, truth.mean_service_time(30, r) * noise(0.05));
        }
        let verdict = reg.assess(&truth, &RegressionTolerance::default());
        assert!(matches!(verdict, RegressionVerdict::Stable(_)), "{verdict:?}");
    }

    #[test]
    fn verdict_kind_tags() {
        assert_eq!(
            RegressionVerdict::Insufficient { samples: 0, required: 1 }.kind(),
            "insufficient"
        );
        assert_eq!(RegressionVerdict::Unidentifiable { samples: 9 }.kind(), "unidentifiable");
    }

    #[test]
    fn anchored_fit_respects_t_store() {
        let anchor = CostParams::CORRELATION_ID.with_t_store(5e-6);
        let mut reg = CostRegression::new();
        for i in 0..500u32 {
            let r = 1.0 + (i % 5) as f64;
            reg.observe(40, r, anchor.mean_service_time(40, r));
        }
        let fit = reg.fit(&anchor).unwrap();
        assert_eq!(fit.mode, FitMode::FixedReceive);
        assert_eq!(fit.params.t_store, anchor.t_store);
        assert!((fit.params.t_fltr - anchor.t_fltr).abs() / anchor.t_fltr < 1e-6);
        assert!((fit.params.t_tx - anchor.t_tx).abs() / anchor.t_tx < 1e-6);
    }
}
