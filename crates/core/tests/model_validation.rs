//! End-to-end validation of the performance model against simulation.
//!
//! 1. The calibration pipeline must recover the Table I ground truth from
//!    noisy simulated-testbed measurements (the paper's §III-B.2 workflow).
//! 2. The analytic M/G/1 waiting-time results (mean, quantiles, CDF) must
//!    agree with discrete-event simulation (the paper cites [23] for the
//!    Gamma approximation's accuracy; we verify it).

use rjms_core::calibrate::{fit_cost_params, Observation};
use rjms_core::model::ServerModel;
use rjms_core::params::CostParams;
use rjms_core::waiting::WaitingTimeAnalysis;
use rjms_desim::mg1sim::{simulate_lindley, Mg1SimConfig};
use rjms_desim::random::ReplicationService;
use rjms_desim::testbed::{run_paper_grid, TestbedConfig};
use rjms_queueing::replication::ReplicationModel;

#[test]
fn calibration_recovers_table_one_from_simulated_testbed() {
    for (label, truth) in [
        ("correlation-ID", CostParams::CORRELATION_ID),
        ("application-property", CostParams::APPLICATION_PROPERTY),
    ] {
        let cfg = TestbedConfig::quick(truth.t_rcv, truth.t_fltr, truth.t_tx);
        let grid = run_paper_grid(&cfg);
        let observations: Vec<Observation> = grid
            .iter()
            .map(|m| Observation {
                n_fltr: m.n_fltr,
                mean_replication: m.mean_replication,
                received_per_sec: m.received_per_sec,
            })
            .collect();
        let cal = fit_cost_params(&observations).expect("calibration succeeds");
        assert!(
            (cal.params.t_fltr - truth.t_fltr).abs() / truth.t_fltr < 0.02,
            "{label}: t_fltr {} vs {}",
            cal.params.t_fltr,
            truth.t_fltr
        );
        assert!(
            (cal.params.t_tx - truth.t_tx).abs() / truth.t_tx < 0.02,
            "{label}: t_tx {} vs {}",
            cal.params.t_tx,
            truth.t_tx
        );
        assert!(cal.r_squared > 0.999, "{label}: R² = {}", cal.r_squared);
    }
}

#[test]
fn model_predicts_simulated_throughput_within_3_percent() {
    // Fig. 4's agreement between solid (measured) and dashed (model) lines.
    let truth = CostParams::CORRELATION_ID;
    let cfg = TestbedConfig::quick(truth.t_rcv, truth.t_fltr, truth.t_tx);
    for m in run_paper_grid(&cfg) {
        let model = ServerModel::new(truth, m.n_fltr);
        let predicted = model.predict_throughput(m.mean_replication);
        let rel = (predicted.received_per_sec - m.received_per_sec).abs() / m.received_per_sec;
        assert!(
            rel < 0.03,
            "n_fltr={} R={}: model {} vs measured {}",
            m.n_fltr,
            m.mean_replication,
            predicted.received_per_sec,
            m.received_per_sec
        );
    }
}

#[test]
fn analytic_mean_waiting_matches_simulation() {
    let params = CostParams::CORRELATION_ID;
    let model = ServerModel::new(params, 60);
    let replication = ReplicationModel::binomial(60.0, 0.25);
    for rho in [0.5, 0.8, 0.9] {
        let analysis = WaitingTimeAnalysis::for_model(&model, replication, rho).unwrap();
        let report = analysis.report();

        let service = ReplicationService {
            deterministic: params.deterministic_part(60),
            t_tx: params.t_tx,
            replication,
        };
        let sim_cfg = Mg1SimConfig {
            arrival_rate: report.arrival_rate,
            samples: 150_000,
            warmup: 20_000,
            seed: 1234,
        };
        let sim = simulate_lindley(&sim_cfg, &service);

        let rel = (sim.waiting.mean() - report.mean_waiting_time).abs() / report.mean_waiting_time;
        assert!(
            rel < 0.08,
            "rho={rho}: sim E[W]={} vs analytic {}",
            sim.waiting.mean(),
            report.mean_waiting_time
        );
        // The waiting probability approaches ρ.
        assert!((sim.waiting_probability - rho).abs() < 0.03);
    }
}

#[test]
fn gamma_approximation_matches_simulated_quantiles() {
    // Fig. 12's quantiles: analytic (Gamma) vs empirical quantiles.
    let params = CostParams::CORRELATION_ID;
    let model = ServerModel::new(params, 40);
    let replication = ReplicationModel::binomial(40.0, 0.3);
    let rho = 0.9;

    let analysis = WaitingTimeAnalysis::for_model(&model, replication, rho).unwrap();
    let report = analysis.report();

    let service = ReplicationService {
        deterministic: params.deterministic_part(40),
        t_tx: params.t_tx,
        replication,
    };
    let sim_cfg = Mg1SimConfig {
        arrival_rate: report.arrival_rate,
        samples: 500_000,
        warmup: 50_000,
        seed: 99,
    };
    let mut sim = simulate_lindley(&sim_cfg, &service);

    let q99_sim = sim.waiting_samples.quantile(0.99);
    let rel99 = (q99_sim - report.q99).abs() / report.q99;
    assert!(rel99 < 0.1, "Q99: sim {} vs gamma {}", q99_sim, report.q99);

    // The deep tail is noisier; allow 20%.
    let q9999_sim = sim.waiting_samples.quantile(0.9999);
    let rel9999 = (q9999_sim - report.q9999).abs() / report.q9999;
    assert!(rel9999 < 0.2, "Q99.99: sim {} vs gamma {}", q9999_sim, report.q9999);
}

#[test]
fn gamma_ccdf_matches_empirical_ccdf() {
    // Fig. 11's complementary CDF comparison at ρ = 0.9.
    let params = CostParams::CORRELATION_ID;
    let model = ServerModel::new(params, 40);
    let replication = ReplicationModel::binomial(40.0, 0.3);
    let analysis = WaitingTimeAnalysis::for_model(&model, replication, 0.9).unwrap();
    let dist = analysis.distribution();
    let e_b = analysis.service().mean();

    let service = ReplicationService {
        deterministic: params.deterministic_part(40),
        t_tx: params.t_tx,
        replication,
    };
    let sim_cfg = Mg1SimConfig {
        arrival_rate: analysis.queue().arrival_rate(),
        samples: 300_000,
        warmup: 30_000,
        seed: 7,
    };
    let mut sim = simulate_lindley(&sim_cfg, &service);

    // Compare P(W > t) on the normalized grid t/E[B] ∈ {5, 10, 20, 30}.
    for mult in [5.0, 10.0, 20.0, 30.0] {
        let t = mult * e_b;
        let analytic = dist.ccdf(t);
        let empirical = sim.waiting_samples.ccdf(t);
        assert!(
            (analytic - empirical).abs() < 0.01 + 0.25 * empirical,
            "t = {mult}·E[B]: analytic {analytic} vs empirical {empirical}"
        );
    }
}
