//! ModelMonitor end-to-end: on ground-truth M/GI/1 traffic generated from
//! the calibrated cost model the verdict is green; when the per-filter
//! cost `t_fltr` is inflated behind the monitor's back, the verdict flips
//! to drift.
//!
//! Ground truth comes from the Lindley recursion (as in
//! `rjms_desim::mg1sim`) driven by the paper's replication service time —
//! deterministic waiting-time samples with a fixed seed, no wall clock, so
//! the test cannot flake on machine load.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rjms_core::monitor::{ModelMonitor, ModelVerdict};
use rjms_core::{CostParams, ReplicationModel, ServerModel};
use rjms_desim::random::{sample_exponential, ReplicationService, ServiceSampler};
use rjms_metrics::Histogram;
use std::time::Duration;

const T_RCV: f64 = 50e-6;
const T_FLTR: f64 = 4e-6;
const T_TX: f64 = 30e-6;
const N_FLTR: u32 = 100;
const MEAN_R: f64 = 5.0;

fn calibrated_monitor() -> ModelMonitor {
    let model = ServerModel::new(CostParams::new(T_RCV, T_FLTR, T_TX), N_FLTR);
    ModelMonitor::new(model, ReplicationModel::binomial(50.0, MEAN_R / 50.0))
}

/// Runs the Lindley recursion against the given *actual* per-filter cost
/// and records waiting/service samples (ns) into fresh histograms, exactly
/// as the broker's dispatcher would.
fn measure(actual_t_fltr: f64, arrival_rate: f64, seed: u64) -> (Histogram, Histogram, Duration) {
    let service = ReplicationService {
        deterministic: T_RCV + N_FLTR as f64 * actual_t_fltr,
        t_tx: T_TX,
        replication: ReplicationModel::binomial(50.0, MEAN_R / 50.0),
    };
    let (samples, warmup) = (200_000usize, 30_000usize);
    let mut rng = StdRng::seed_from_u64(seed);
    let waiting = Histogram::new();
    let service_hist = Histogram::new();
    let mut observed_time = 0.0f64;
    let mut w = 0.0f64;
    for i in 0..warmup + samples {
        let b = service.sample(&mut rng);
        let a = sample_exponential(&mut rng, arrival_rate);
        if i >= warmup {
            waiting.record((w * 1e9).round() as u64);
            service_hist.record((b * 1e9).round() as u64);
            observed_time += a;
        }
        w = (w + b - a).max(0.0);
    }
    (waiting, service_hist, Duration::from_secs_f64(observed_time))
}

#[test]
fn calibrated_run_is_green() {
    // E[B] = 50µs + 100·4µs + 5·30µs = 600µs; λ for ρ = 0.7.
    let arrival_rate = 0.7 / 600e-6;
    let (waiting, service, elapsed) = measure(T_FLTR, arrival_rate, 7);
    let verdict = calibrated_monitor().assess(&waiting.snapshot(), &service.snapshot(), elapsed);
    let report = verdict.report().expect("verdict carries a report");
    assert!(verdict.is_calibrated(), "expected green verdict, got:\n{}", report.render_text());
    // Documented tolerance: measured E[W] and p99 agree with the M/GI/1
    // prediction within 30% / 35% (they are much closer in practice).
    let rel = |m: f64, p: f64| ((m - p) / p).abs();
    assert!(rel(report.measured.mean_waiting_time, report.predicted.mean_waiting_time) < 0.30);
    assert!(rel(report.measured.q99, report.predicted.q99) < 0.35);
    // And the utilizations line up with the configured operating point.
    assert!((report.measured.utilization - 0.7).abs() < 0.05);
}

#[test]
fn inflated_filter_cost_flips_to_drift() {
    // The *broker* now pays 1.5× t_fltr per filter (E[B] = 800µs) but the
    // monitor still holds the calibrated model (600µs).
    let arrival_rate = 0.7 / 600e-6;
    let (waiting, service, elapsed) = measure(1.5 * T_FLTR, arrival_rate, 11);
    let verdict = calibrated_monitor().assess(&waiting.snapshot(), &service.snapshot(), elapsed);
    match verdict {
        ModelVerdict::Drift(report) => {
            let quantities: Vec<_> = report.violations.iter().map(|v| v.quantity).collect();
            assert!(
                quantities.contains(&"E[B]"),
                "E[B] drift should be flagged, got {quantities:?}\n{}",
                report.render_text()
            );
            assert!(
                quantities.contains(&"E[W]"),
                "the waiting-time blow-up should be flagged, got {quantities:?}"
            );
            // Sanity: the measured service mean really is ~800µs.
            assert!((report.measured.mean_service_time - 800e-6).abs() < 40e-6);
        }
        other => panic!("expected drift, got {other:?}"),
    }
}

#[test]
fn drift_on_cost_model_but_not_on_reseeded_calibrated_run() {
    // A different seed on the calibrated system must not flip the verdict:
    // the tolerance absorbs sampling noise.
    let arrival_rate = 0.7 / 600e-6;
    let (waiting, service, elapsed) = measure(T_FLTR, arrival_rate, 12345);
    let verdict = calibrated_monitor().assess(&waiting.snapshot(), &service.snapshot(), elapsed);
    assert!(verdict.is_calibrated(), "{verdict:?}");
}
