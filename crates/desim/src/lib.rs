//! # rjms-desim
//!
//! Discrete-event simulation substrate for the JMS performance study:
//!
//! * [`kernel`] — a minimal event-calendar scheduler over [`time::SimTime`],
//! * [`random`] — exponential / replication-grade / service-time samplers
//!   that share their distributions with the analytic crate so simulation
//!   and analysis cannot drift apart,
//! * [`mg1sim`] — an `M/GI/1-∞` simulator (Lindley recursion and
//!   event-driven variants) used to validate the Pollaczek–Khinchine
//!   formulas and the Gamma approximation of the waiting time,
//! * [`testbed`] — a faithful simulation of the paper's *measurement
//!   methodology* (saturated publishers, trimmed window) against a synthetic
//!   server with the ground-truth cost structure; feeds the calibration
//!   pipeline,
//! * [`stats`] — online statistics, empirical quantiles and batch-means
//!   confidence intervals for simulation output.
//!
//! ## Example: validating E[W] against theory
//!
//! ```
//! use rjms_desim::mg1sim::{simulate_lindley, Mg1SimConfig};
//! use rjms_desim::random::ExponentialService;
//!
//! // M/M/1 at ρ = 0.5 with unit-mean service: E[W] = 1.
//! let cfg = Mg1SimConfig { arrival_rate: 0.5, samples: 100_000, warmup: 10_000, seed: 1 };
//! let result = simulate_lindley(&cfg, &ExponentialService { mean: 1.0 });
//! assert!((result.waiting.mean() - 1.0).abs() < 0.15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod distributed;
pub mod kernel;
pub mod mg1sim;
pub mod random;
pub mod stats;
pub mod testbed;
pub mod time;

pub use kernel::Scheduler;
pub use mg1sim::{simulate_event_driven, simulate_lindley, Mg1SimConfig, Mg1SimResult};
pub use stats::{BatchMeans, OnlineStats, SampleQuantiles};
pub use testbed::{run_measurement, run_paper_grid, TestbedConfig, TestbedMeasurement};
pub use time::SimTime;
