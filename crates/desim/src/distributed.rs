//! Simulation of the distributed JMS architectures (paper §IV-C).
//!
//! PSR (publisher-side replication) runs one broker per publisher: each
//! broker carries the filters of *all* `m` subscribers and receives `λ/n`
//! of the total message rate. SSR (subscriber-side replication) runs one
//! broker per subscriber: each carries only that subscriber's filters but
//! receives the *full* message rate `λ`.
//!
//! Each broker is an independent `M/GI/1-∞` queue; this module simulates
//! the bottleneck broker of either architecture at a requested system
//! throughput and reports its measured utilization and waiting time —
//! validating the closed-form capacities of Eqs. 21–22 (see
//! `tests/distributed_validation.rs` and the root `fig15` integration
//! test).

use crate::mg1sim::{simulate_lindley, Mg1SimConfig, Mg1SimResult};
use crate::random::ReplicationService;
use rjms_queueing::replication::ReplicationModel;
use serde::{Deserialize, Serialize};

/// Cost and population parameters shared by both architectures (mirrors
/// `rjms_core::architecture::DistributedScenario`, duplicated here to keep
/// the simulation substrate independent of the model crate).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributedSimScenario {
    /// Receive overhead per message, seconds.
    pub t_rcv: f64,
    /// Overhead per installed filter, seconds.
    pub t_fltr: f64,
    /// Transmit overhead per copy, seconds.
    pub t_tx: f64,
    /// Number of publishers `n`.
    pub publishers: u32,
    /// Number of subscribers `m`.
    pub subscribers: u32,
    /// Filters per subscriber.
    pub filters_per_subscriber: u32,
    /// Mean replication grade per message (simulated as deterministic,
    /// matching the paper's uniform-assumptions comparison).
    pub mean_replication: f64,
}

/// Result of simulating one (bottleneck) broker of an architecture.
#[derive(Debug)]
pub struct DistributedSimResult {
    /// The per-broker arrival rate that was simulated.
    pub broker_arrival_rate: f64,
    /// Mean service time implied by the scenario, seconds.
    pub mean_service_time: f64,
    /// Full single-queue simulation output.
    pub queue: Mg1SimResult,
}

impl DistributedSimResult {
    /// The measured utilization (via PASTA, the fraction of arrivals that
    /// had to wait approaches ρ).
    pub fn measured_utilization(&self) -> f64 {
        self.queue.waiting_probability
    }
}

impl DistributedSimScenario {
    fn validate(&self) {
        assert!(self.publishers > 0 && self.subscribers > 0, "populations must be positive");
        assert!(self.t_rcv >= 0.0 && self.t_fltr >= 0.0 && self.t_tx >= 0.0, "costs must be >= 0");
        assert!(self.mean_replication >= 0.0, "replication must be >= 0");
    }

    /// Mean service time on a publisher-side broker (all `m` subscribers'
    /// filters installed).
    pub fn psr_service_time(&self) -> f64 {
        self.t_rcv
            + self.subscribers as f64 * self.filters_per_subscriber as f64 * self.t_fltr
            + self.mean_replication * self.t_tx
    }

    /// Mean service time on a subscriber-side broker (one subscriber's
    /// filters installed).
    pub fn ssr_service_time(&self) -> f64 {
        self.t_rcv
            + self.filters_per_subscriber as f64 * self.t_fltr
            + self.mean_replication * self.t_tx
    }

    /// Simulates one publisher-side broker while the *system* carries
    /// `system_rate` messages per second (each broker receives an equal
    /// `system_rate / n` share).
    ///
    /// # Panics
    ///
    /// Panics if the per-broker load is unstable (`ρ >= 1`) or parameters
    /// are invalid.
    pub fn simulate_psr_broker(
        &self,
        system_rate: f64,
        samples: usize,
        seed: u64,
    ) -> DistributedSimResult {
        self.validate();
        let broker_rate = system_rate / self.publishers as f64;
        self.simulate_broker(broker_rate, self.psr_service_time(), samples, seed)
    }

    /// Simulates one subscriber-side broker: every broker receives the
    /// full system rate.
    ///
    /// # Panics
    ///
    /// Panics if the load is unstable (`ρ >= 1`) or parameters are invalid.
    pub fn simulate_ssr_broker(
        &self,
        system_rate: f64,
        samples: usize,
        seed: u64,
    ) -> DistributedSimResult {
        self.validate();
        self.simulate_broker(system_rate, self.ssr_service_time(), samples, seed)
    }

    fn simulate_broker(
        &self,
        arrival_rate: f64,
        mean_service: f64,
        samples: usize,
        seed: u64,
    ) -> DistributedSimResult {
        let deterministic = mean_service - self.mean_replication * self.t_tx;
        let service = ReplicationService {
            deterministic,
            t_tx: self.t_tx,
            replication: ReplicationModel::deterministic(self.mean_replication),
        };
        let queue = simulate_lindley(
            &Mg1SimConfig { arrival_rate, samples, warmup: samples / 10, seed },
            &service,
        );
        DistributedSimResult {
            broker_arrival_rate: arrival_rate,
            mean_service_time: mean_service,
            queue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> DistributedSimScenario {
        DistributedSimScenario {
            t_rcv: 8.52e-7,
            t_fltr: 7.02e-6,
            t_tx: 1.70e-5,
            publishers: 50,
            subscribers: 100,
            filters_per_subscriber: 10,
            mean_replication: 1.0,
        }
    }

    #[test]
    fn service_times_match_eqs_21_22_denominators() {
        let s = scenario();
        let psr = s.psr_service_time();
        let ssr = s.ssr_service_time();
        assert!((psr - (8.52e-7 + 1000.0 * 7.02e-6 + 1.70e-5)).abs() < 1e-12);
        assert!((ssr - (8.52e-7 + 10.0 * 7.02e-6 + 1.70e-5)).abs() < 1e-12);
        assert!(psr > ssr);
    }

    #[test]
    fn psr_broker_at_formula_capacity_runs_at_target_utilization() {
        let s = scenario();
        // Eq. 21 at ρ = 0.9: system capacity = 0.9·n/E[B_psr].
        let system_capacity = 0.9 * s.publishers as f64 / s.psr_service_time();
        let result = s.simulate_psr_broker(system_capacity, 150_000, 21);
        assert!(
            (result.measured_utilization() - 0.9).abs() < 0.02,
            "measured rho = {}",
            result.measured_utilization()
        );
        // Waiting stays finite and around the M/G/1 prediction's scale.
        assert!(result.queue.waiting.mean() < 60.0 * result.mean_service_time);
    }

    #[test]
    fn ssr_broker_at_formula_capacity_runs_at_target_utilization() {
        let s = scenario();
        let system_capacity = 0.9 / s.ssr_service_time(); // Eq. 22
        let result = s.simulate_ssr_broker(system_capacity, 150_000, 23);
        assert!(
            (result.measured_utilization() - 0.9).abs() < 0.02,
            "measured rho = {}",
            result.measured_utilization()
        );
    }

    #[test]
    #[should_panic(expected = "unstable configuration")]
    fn overloading_a_broker_panics() {
        let s = scenario();
        let too_much = 1.2 * s.publishers as f64 / s.psr_service_time();
        s.simulate_psr_broker(too_much, 1_000, 1);
    }

    #[test]
    #[should_panic(expected = "populations must be positive")]
    fn zero_population_rejected() {
        let mut s = scenario();
        s.subscribers = 0;
        s.simulate_ssr_broker(1.0, 100, 1);
    }
}
