//! Random-variate samplers for the simulators.
//!
//! Everything is built on `rand::Rng`; the replication-grade sampler reuses
//! the exact PMFs from [`rjms_queueing::replication`] so the simulated and
//! analytic models cannot drift apart.

use rand::Rng;
use rjms_queueing::replication::ReplicationModel;

/// Samples an exponential inter-arrival time with the given `rate`
/// (mean `1/rate`) by inversion.
///
/// # Panics
///
/// Panics if `rate <= 0`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = rjms_desim::random::sample_exponential(&mut rng, 2.0);
/// assert!(x >= 0.0);
/// ```
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be > 0, got {rate}");
    // 1 - U avoids ln(0).
    -(1.0 - rng.gen::<f64>()).ln() / rate
}

/// Samples a replication grade from any integer-parameter
/// [`ReplicationModel`].
///
/// Deterministic and scaled-Bernoulli models sample in O(1); binomial models
/// draw `n` Bernoulli trials (exact, and fast for the filter counts the
/// paper studies).
///
/// # Panics
///
/// Panics if the model's support parameter is not an integer (see
/// [`ReplicationModel::pmf`]).
pub fn sample_replication<R: Rng + ?Sized>(rng: &mut R, model: &ReplicationModel) -> u32 {
    match *model {
        ReplicationModel::Deterministic { grade } => {
            let r = grade.round();
            assert!((grade - r).abs() < 1e-9, "deterministic grade must be integer");
            r as u32
        }
        ReplicationModel::ScaledBernoulli { n_fltr, p_match } => {
            let n = n_fltr.round();
            assert!((n_fltr - n).abs() < 1e-9, "n_fltr must be integer");
            if rng.gen::<f64>() < p_match {
                n as u32
            } else {
                0
            }
        }
        ReplicationModel::Binomial { n_fltr, p_match } => {
            let n = n_fltr.round();
            assert!((n_fltr - n).abs() < 1e-9, "n_fltr must be integer");
            let n = n as u32;
            let mut successes = 0;
            for _ in 0..n {
                if rng.gen::<f64>() < p_match {
                    successes += 1;
                }
            }
            successes
        }
        ReplicationModel::Geometric { theta } => {
            if theta <= 0.0 {
                return 0;
            }
            // Inversion: R = floor(ln U / ln θ) for U ~ (0, 1].
            let u: f64 = 1.0 - rng.gen::<f64>();
            (u.ln() / theta.ln()).floor().min(u32::MAX as f64) as u32
        }
    }
}

/// A generic service-time sampler used by the M/G/1 simulator.
pub trait ServiceSampler {
    /// Draws one service time in seconds.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// The mean service time (used for utilization checks).
    fn mean(&self) -> f64;
}

/// Deterministic service time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeterministicService {
    /// The constant service duration in seconds.
    pub duration: f64,
}

impl ServiceSampler for DeterministicService {
    fn sample<R: Rng + ?Sized>(&self, _rng: &mut R) -> f64 {
        self.duration
    }

    fn mean(&self) -> f64 {
        self.duration
    }
}

/// Exponential service time with the given mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialService {
    /// Mean service duration in seconds.
    pub mean: f64,
}

impl ServiceSampler for ExponentialService {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        sample_exponential(rng, 1.0 / self.mean)
    }

    fn mean(&self) -> f64 {
        self.mean
    }
}

/// The paper's message service time `B = D + R·t_tx` with a stochastic
/// replication grade.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicationService {
    /// Constant part `D = t_rcv + n_fltr·t_fltr`, in seconds.
    pub deterministic: f64,
    /// Per-copy transmit time, in seconds.
    pub t_tx: f64,
    /// Replication-grade model.
    pub replication: ReplicationModel,
}

impl ServiceSampler for ReplicationService {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let r = sample_replication(rng, &self.replication);
        self.deterministic + r as f64 * self.t_tx
    }

    fn mean(&self) -> f64 {
        self.deterministic + self.replication.moments().m1 * self.t_tx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_mean_converges() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| sample_exponential(&mut rng, 4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn replication_sampler_matches_model_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        for model in [
            ReplicationModel::deterministic(5.0),
            ReplicationModel::scaled_bernoulli(10.0, 0.3),
            ReplicationModel::binomial(20.0, 0.25),
            ReplicationModel::geometric(4.0),
        ] {
            let n = 100_000;
            let mean: f64 =
                (0..n).map(|_| sample_replication(&mut rng, &model) as f64).sum::<f64>() / n as f64;
            let expect = model.moments().m1;
            assert!(
                (mean - expect).abs() < 0.05 * expect.max(1.0),
                "model {model:?}: {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn replication_service_mean() {
        let s = ReplicationService {
            deterministic: 1e-4,
            t_tx: 1.7e-5,
            replication: ReplicationModel::deterministic(10.0),
        };
        assert!((ServiceSampler::mean(&s) - (1e-4 + 1.7e-4)).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(9);
        // Deterministic replication → constant service time.
        let a = s.sample(&mut rng);
        let b = s.sample(&mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_service_is_constant() {
        let s = DeterministicService { duration: 0.5 };
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(s.sample(&mut rng), 0.5);
        assert_eq!(ServiceSampler::mean(&s), 0.5);
    }

    #[test]
    #[should_panic(expected = "rate must be > 0")]
    fn exponential_rejects_zero_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        sample_exponential(&mut rng, 0.0);
    }
}
