//! Discrete-event simulation kernel.
//!
//! A minimal, allocation-friendly event scheduler: events are boxed closures
//! ordered by [`SimTime`] (FIFO within equal timestamps via a sequence
//! number). Simulation components hold `&mut Scheduler` during their event
//! handlers and may schedule further events.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// An event handler: invoked at its scheduled time with the scheduler so it
/// can schedule follow-up events and a mutable reference to the simulation
/// state `S`.
pub type EventFn<S> = Box<dyn FnOnce(&mut Scheduler<S>, &mut S)>;

struct ScheduledEvent<S> {
    time: SimTime,
    seq: u64,
    run: EventFn<S>,
}

impl<S> PartialEq for ScheduledEvent<S> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<S> Eq for ScheduledEvent<S> {}

impl<S> PartialOrd for ScheduledEvent<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<S> Ord for ScheduledEvent<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first ordering.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The event scheduler: a clock plus an ordered pending-event queue.
///
/// # Examples
///
/// ```
/// use rjms_desim::kernel::Scheduler;
/// use rjms_desim::time::SimTime;
///
/// // State = number of arrivals seen.
/// let mut sched: Scheduler<u32> = Scheduler::new();
/// sched.schedule_at(SimTime::from_secs(1.0), |s, count| {
///     *count += 1;
///     // Chain a follow-up event one second later.
///     s.schedule_in(1.0, |_, count| *count += 1);
/// });
/// let mut count = 0;
/// sched.run(&mut count);
/// assert_eq!(count, 2);
/// assert_eq!(sched.now().as_secs(), 2.0);
/// ```
pub struct Scheduler<S> {
    now: SimTime,
    queue: BinaryHeap<ScheduledEvent<S>>,
    next_seq: u64,
    executed: u64,
}

impl<S> fmt::Debug for Scheduler<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl<S> Default for Scheduler<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> Scheduler<S> {
    /// Creates a scheduler at time zero with an empty queue.
    pub fn new() -> Self {
        Self { now: SimTime::ZERO, queue: BinaryHeap::new(), next_seq: 0, executed: 0 }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed_events(&self) -> u64 {
        self.executed
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past.
    pub fn schedule_at<F>(&mut self, time: SimTime, event: F)
    where
        F: FnOnce(&mut Scheduler<S>, &mut S) + 'static,
    {
        assert!(
            time >= self.now,
            "cannot schedule into the past: now={}, requested={}",
            self.now,
            time
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(ScheduledEvent { time, seq, run: Box::new(event) });
    }

    /// Schedules an event `delay` seconds from now.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or NaN.
    pub fn schedule_in<F>(&mut self, delay: f64, event: F)
    where
        F: FnOnce(&mut Scheduler<S>, &mut S) + 'static,
    {
        assert!(delay >= 0.0 && !delay.is_nan(), "delay must be >= 0, got {delay}");
        self.schedule_at(self.now + delay, event);
    }

    /// Runs events until the queue is empty.
    pub fn run(&mut self, state: &mut S) {
        while self.step(state) {}
    }

    /// Runs events with timestamps `<= until`; later events stay queued and
    /// the clock is advanced to `until`.
    pub fn run_until(&mut self, until: SimTime, state: &mut S) {
        while let Some(ev) = self.queue.peek() {
            if ev.time > until {
                break;
            }
            self.step(state);
        }
        if self.now < until {
            self.now = until;
        }
    }

    /// Executes the single earliest event; returns `false` when the queue is
    /// empty.
    pub fn step(&mut self, state: &mut S) -> bool {
        match self.queue.pop() {
            None => false,
            Some(ev) => {
                debug_assert!(ev.time >= self.now, "event queue went backwards");
                self.now = ev.time;
                self.executed += 1;
                (ev.run)(self, state);
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executes_in_time_order() {
        let mut sched: Scheduler<Vec<u32>> = Scheduler::new();
        sched.schedule_at(SimTime::from_secs(3.0), |_, log| log.push(3));
        sched.schedule_at(SimTime::from_secs(1.0), |_, log| log.push(1));
        sched.schedule_at(SimTime::from_secs(2.0), |_, log| log.push(2));
        let mut log = Vec::new();
        sched.run(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
        assert_eq!(sched.executed_events(), 3);
    }

    #[test]
    fn fifo_within_equal_timestamps() {
        let mut sched: Scheduler<Vec<u32>> = Scheduler::new();
        for i in 0..10u32 {
            sched.schedule_at(SimTime::from_secs(1.0), move |_, log: &mut Vec<u32>| log.push(i));
        }
        let mut log = Vec::new();
        sched.run(&mut log);
        assert_eq!(log, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_chain() {
        let mut sched: Scheduler<u32> = Scheduler::new();
        fn tick(s: &mut Scheduler<u32>, count: &mut u32) {
            *count += 1;
            if *count < 5 {
                s.schedule_in(1.0, tick);
            }
        }
        sched.schedule_in(1.0, tick);
        let mut count = 0;
        sched.run(&mut count);
        assert_eq!(count, 5);
        assert_eq!(sched.now().as_secs(), 5.0);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sched: Scheduler<u32> = Scheduler::new();
        for i in 1..=10 {
            sched.schedule_at(SimTime::from_secs(i as f64), |_, c| *c += 1);
        }
        let mut count = 0;
        sched.run_until(SimTime::from_secs(5.5), &mut count);
        assert_eq!(count, 5);
        assert_eq!(sched.now().as_secs(), 5.5);
        assert_eq!(sched.pending_events(), 5);
        // Resume to completion.
        sched.run(&mut count);
        assert_eq!(count, 10);
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut sched: Scheduler<()> = Scheduler::new();
        sched.schedule_at(SimTime::from_secs(42.0), |s, _| {
            assert_eq!(s.now().as_secs(), 42.0);
        });
        sched.run(&mut ());
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn rejects_past_events() {
        let mut sched: Scheduler<()> = Scheduler::new();
        sched.schedule_at(SimTime::from_secs(1.0), |s, _| {
            s.schedule_at(SimTime::from_secs(0.5), |_, _| {});
        });
        sched.run(&mut ());
    }
}
