//! Simulation of the paper's measurement methodology (§III-A).
//!
//! The original experiments loaded a FioranoMQ server to 100% CPU with
//! saturated publishers, ran for 100 s, cut off the first and last 5 s, and
//! counted received/dispatched messages. We cannot run the 2006 testbed, so
//! this module reproduces the *methodology* against a synthetic server whose
//! per-message cost follows the paper's ground-truth structure
//! `B = t_rcv + n_fltr·t_fltr + R·t_tx` plus measurement noise.
//!
//! The purpose is twofold:
//! 1. it regenerates the measured curves of Fig. 4 (and their shape is
//!    compared against the model's prediction, like the paper's dashed vs
//!    solid lines), and
//! 2. it feeds the calibration pipeline (`rjms-core::calibrate`), which must
//!    recover the Table I constants from noisy throughput observations —
//!    end-to-end validation of the fitting code.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rjms_queueing::replication::ReplicationModel;
use serde::{Deserialize, Serialize};

/// Configuration of the simulated testbed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestbedConfig {
    /// Ground-truth receive overhead per message, seconds.
    pub t_rcv: f64,
    /// Ground-truth overhead per installed filter, seconds.
    pub t_fltr: f64,
    /// Ground-truth transmit overhead per message copy, seconds.
    pub t_tx: f64,
    /// Measurement window after warmup, seconds (paper: 90 s).
    pub window_secs: f64,
    /// Warmup cut off before the window, seconds (paper: 5 s).
    pub warmup_secs: f64,
    /// Relative per-message processing-time jitter: each message's cost is
    /// multiplied by `1 + U(-noise, +noise)` (0 disables noise).
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TestbedConfig {
    /// The paper's methodology (90 s window, 5 s warmup, mild noise) with
    /// the given ground-truth costs.
    pub fn paper_methodology(t_rcv: f64, t_fltr: f64, t_tx: f64) -> Self {
        Self { t_rcv, t_fltr, t_tx, window_secs: 90.0, warmup_secs: 5.0, noise: 0.02, seed: 42 }
    }

    /// A faster variant for tests and CI (5 s window).
    pub fn quick(t_rcv: f64, t_fltr: f64, t_tx: f64) -> Self {
        Self { t_rcv, t_fltr, t_tx, window_secs: 5.0, warmup_secs: 0.5, noise: 0.02, seed: 42 }
    }

    fn validate(&self) {
        assert!(
            self.t_rcv >= 0.0 && self.t_fltr >= 0.0 && self.t_tx >= 0.0,
            "cost components must be >= 0"
        );
        assert!(self.window_secs > 0.0, "window must be positive");
        assert!(self.warmup_secs >= 0.0, "warmup must be >= 0");
        assert!((0.0..1.0).contains(&self.noise), "noise must be in [0, 1)");
        assert!(
            self.t_rcv + self.t_fltr + self.t_tx > 0.0,
            "at least one cost component must be positive"
        );
    }
}

/// One measured operating point of the simulated testbed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestbedMeasurement {
    /// Number of installed filters during the run.
    pub n_fltr: u32,
    /// Mean replication grade observed over the window.
    pub mean_replication: f64,
    /// Received throughput (messages/s accepted from publishers).
    pub received_per_sec: f64,
    /// Dispatched throughput (copies/s forwarded to subscribers).
    pub dispatched_per_sec: f64,
    /// Messages counted inside the measurement window.
    pub messages: u64,
}

impl TestbedMeasurement {
    /// Overall throughput (received + dispatched), the paper's Fig. 4
    /// y-axis.
    pub fn overall_per_sec(&self) -> f64 {
        self.received_per_sec + self.dispatched_per_sec
    }
}

/// Runs one saturated-publisher measurement with `n_fltr` installed filters
/// and the given replication-grade workload.
///
/// Saturation means the server is never idle: messages are processed
/// back-to-back, exactly like the paper's fully loaded CPU, so the received
/// throughput converges to `1/E[B]`.
///
/// # Panics
///
/// Panics on invalid configuration (negative costs, empty window, noise
/// outside `[0, 1)`).
///
/// # Examples
///
/// ```
/// use rjms_desim::testbed::{run_measurement, TestbedConfig};
/// use rjms_queueing::replication::ReplicationModel;
///
/// let cfg = TestbedConfig::quick(8.52e-7, 7.02e-6, 1.70e-5);
/// let m = run_measurement(&cfg, 15, &ReplicationModel::deterministic(5.0));
/// // Model: 1/E[B] with E[B] = t_rcv + 15·t_fltr + 5·t_tx.
/// let expected = 1.0 / (8.52e-7 + 15.0 * 7.02e-6 + 5.0 * 1.70e-5);
/// assert!((m.received_per_sec - expected).abs() / expected < 0.05);
/// ```
pub fn run_measurement(
    config: &TestbedConfig,
    n_fltr: u32,
    replication: &ReplicationModel,
) -> TestbedMeasurement {
    config.validate();
    let mut rng =
        StdRng::seed_from_u64(config.seed ^ (n_fltr as u64) << 32 ^ replication.max_grade() as u64);
    let constant = config.t_rcv + n_fltr as f64 * config.t_fltr;

    let end = config.warmup_secs + config.window_secs;
    let mut clock = 0.0f64;
    let mut received = 0u64;
    let mut dispatched = 0u64;

    while clock < end {
        let r = crate::random::sample_replication(&mut rng, replication);
        let mut service = constant + r as f64 * config.t_tx;
        if config.noise > 0.0 {
            service *= 1.0 + rng.gen_range(-config.noise..config.noise);
        }
        clock += service;
        // Count the message if it completed inside the window (paper counts
        // messages in the trimmed 90 s interval).
        if clock > config.warmup_secs && clock <= end {
            received += 1;
            dispatched += r as u64;
        }
    }

    TestbedMeasurement {
        n_fltr,
        mean_replication: if received > 0 { dispatched as f64 / received as f64 } else { 0.0 },
        received_per_sec: received as f64 / config.window_secs,
        dispatched_per_sec: dispatched as f64 / config.window_secs,
        messages: received,
    }
}

/// Runs the paper's full measurement grid (§III-B.2):
/// replication grades `R ∈ {1, 2, 5, 10, 20, 40}` crossed with
/// `n ∈ {5, 10, 20, 40, 80, 160}` additional non-matching filters, i.e.
/// `n_fltr = n + R` installed filters and a deterministic replication grade
/// of `R`.
pub fn run_paper_grid(config: &TestbedConfig) -> Vec<TestbedMeasurement> {
    let replication_grades = [1u32, 2, 5, 10, 20, 40];
    let additional_filters = [5u32, 10, 20, 40, 80, 160];
    let mut out = Vec::with_capacity(replication_grades.len() * additional_filters.len());
    for &r in &replication_grades {
        for &n in &additional_filters {
            out.push(run_measurement(config, n + r, &ReplicationModel::deterministic(r as f64)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const T_RCV: f64 = 8.52e-7;
    const T_FLTR: f64 = 7.02e-6;
    const T_TX: f64 = 1.70e-5;

    #[test]
    fn saturated_throughput_is_inverse_service_time() {
        let cfg = TestbedConfig::quick(T_RCV, T_FLTR, T_TX);
        for (n_fltr, r) in [(6u32, 1u32), (45, 5), (200, 40)] {
            let m = run_measurement(&cfg, n_fltr, &ReplicationModel::deterministic(r as f64));
            let e_b = T_RCV + n_fltr as f64 * T_FLTR + r as f64 * T_TX;
            let expect = 1.0 / e_b;
            assert!(
                (m.received_per_sec - expect).abs() / expect < 0.03,
                "n_fltr={n_fltr} R={r}: got {} expected {expect}",
                m.received_per_sec
            );
            assert!((m.mean_replication - r as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn more_filters_reduce_throughput() {
        let cfg = TestbedConfig::quick(T_RCV, T_FLTR, T_TX);
        let r = ReplicationModel::deterministic(5.0);
        let a = run_measurement(&cfg, 10, &r);
        let b = run_measurement(&cfg, 100, &r);
        assert!(a.received_per_sec > b.received_per_sec);
    }

    #[test]
    fn higher_replication_increases_overall_throughput_at_few_filters() {
        // Paper Fig. 4: overall throughput grows with R for small n_fltr.
        let cfg = TestbedConfig::quick(T_RCV, T_FLTR, T_TX);
        let low = run_measurement(&cfg, 6, &ReplicationModel::deterministic(1.0));
        let high = run_measurement(&cfg, 45, &ReplicationModel::deterministic(40.0));
        assert!(high.overall_per_sec() > low.overall_per_sec());
    }

    #[test]
    fn stochastic_replication_mean_observed() {
        let cfg = TestbedConfig::quick(T_RCV, T_FLTR, T_TX);
        let model = ReplicationModel::binomial(20.0, 0.25);
        let m = run_measurement(&cfg, 20, &model);
        assert!((m.mean_replication - 5.0).abs() < 0.3, "observed mean R = {}", m.mean_replication);
    }

    #[test]
    fn paper_grid_has_36_points() {
        let mut cfg = TestbedConfig::quick(T_RCV, T_FLTR, T_TX);
        cfg.window_secs = 1.0;
        let grid = run_paper_grid(&cfg);
        assert_eq!(grid.len(), 36);
        // All points measured a sensible number of messages.
        for p in &grid {
            assert!(p.messages > 100, "too few messages at {p:?}");
        }
    }

    #[test]
    fn zero_noise_is_deterministic() {
        let mut cfg = TestbedConfig::quick(T_RCV, T_FLTR, T_TX);
        cfg.noise = 0.0;
        let r = ReplicationModel::deterministic(2.0);
        let a = run_measurement(&cfg, 10, &r);
        let b = run_measurement(&cfg, 10, &r);
        assert_eq!(a.received_per_sec, b.received_per_sec);
    }

    #[test]
    #[should_panic(expected = "noise must be in [0, 1)")]
    fn rejects_bad_noise() {
        let mut cfg = TestbedConfig::quick(T_RCV, T_FLTR, T_TX);
        cfg.noise = 1.5;
        run_measurement(&cfg, 1, &ReplicationModel::deterministic(1.0));
    }
}
