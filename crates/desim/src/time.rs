//! Simulated time.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds from simulation start.
///
/// `SimTime` is a totally ordered wrapper around `f64` that rejects NaN at
/// construction, so it can safely key the event queue.
///
/// # Examples
///
/// ```
/// use rjms_desim::time::SimTime;
/// let t = SimTime::ZERO + 1.5;
/// assert_eq!(t.as_secs(), 1.5);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or negative.
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        assert!(secs >= 0.0, "SimTime cannot be negative, got {secs}");
        SimTime(secs)
    }

    /// Seconds since simulation start.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Duration from `earlier` to `self`, in seconds (clamped at 0).
    pub fn duration_since(self, earlier: SimTime) -> f64 {
        (self.0 - earlier.0).max(0.0)
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: construction rejects NaN.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    fn add(self, secs: f64) -> SimTime {
        SimTime::from_secs(self.0 + secs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, secs: f64) {
        *self = *self + secs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;

    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_secs(1.0);
        let b = a + 0.5;
        assert!(b > a);
        assert_eq!(b - a, 0.5);
        assert_eq!(b.duration_since(a), 0.5);
        assert_eq!(a.duration_since(b), 0.0);
    }

    #[test]
    fn add_assign() {
        let mut t = SimTime::ZERO;
        t += 2.0;
        assert_eq!(t.as_secs(), 2.0);
    }

    #[test]
    #[should_panic(expected = "cannot be NaN")]
    fn rejects_nan() {
        SimTime::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn rejects_negative() {
        SimTime::from_secs(-1.0);
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime::from_secs(1.25).to_string(), "1.250000s");
    }
}
