//! Discrete-event simulation of the `M/GI/1-∞` queue.
//!
//! Used to *validate* the analytic waiting-time results of
//! [`rjms_queueing::mg1`]: Poisson arrivals, one server, FIFO order,
//! unbounded buffer. The simulator records every message's waiting time
//! (time from arrival to start of service) and summarizes mean, moments and
//! empirical quantiles.
//!
//! For a FIFO single-server queue the recursion
//! `W_{n+1} = max(0, W_n + B_n − A_{n+1})` (Lindley) is much faster than an
//! event calendar, but the event-driven variant exercises the [`kernel`]
//! and also tracks the queue-length process; both are provided and tested
//! against each other.
//!
//! [`kernel`]: crate::kernel

use crate::kernel::Scheduler;
use crate::random::ServiceSampler;
use crate::stats::{OnlineStats, SampleQuantiles};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of an M/G/1 simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mg1SimConfig {
    /// Poisson arrival rate λ (messages per second).
    pub arrival_rate: f64,
    /// Number of *recorded* waiting-time samples.
    pub samples: usize,
    /// Number of initial samples discarded as warmup.
    pub warmup: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for Mg1SimConfig {
    fn default() -> Self {
        Self { arrival_rate: 1.0, samples: 100_000, warmup: 10_000, seed: 42 }
    }
}

/// Results of an M/G/1 simulation run.
#[derive(Debug)]
pub struct Mg1SimResult {
    /// Waiting-time summary statistics.
    pub waiting: OnlineStats,
    /// All recorded waiting-time samples (for quantiles / CDF comparison).
    pub waiting_samples: SampleQuantiles,
    /// Service-time summary (sanity check against the configured sampler).
    pub service: OnlineStats,
    /// Fraction of messages that had to wait (should approach ρ).
    pub waiting_probability: f64,
    /// Peak number of messages simultaneously in the queue (buffer bound).
    pub peak_queue_length: usize,
}

/// Runs the M/G/1 simulation with the (fast) Lindley recursion.
///
/// # Panics
///
/// Panics if the configured utilization `λ·E[B] >= 1` (no steady state) or
/// `samples` is 0.
///
/// # Examples
///
/// ```
/// use rjms_desim::mg1sim::{simulate_lindley, Mg1SimConfig};
/// use rjms_desim::random::ExponentialService;
///
/// // M/M/1 at ρ = 0.5: E[W] = 1.0 for unit-mean service.
/// let cfg = Mg1SimConfig { arrival_rate: 0.5, samples: 200_000, warmup: 10_000, seed: 7 };
/// let res = simulate_lindley(&cfg, &ExponentialService { mean: 1.0 });
/// assert!((res.waiting.mean() - 1.0).abs() < 0.1);
/// ```
pub fn simulate_lindley<S: ServiceSampler>(config: &Mg1SimConfig, service: &S) -> Mg1SimResult {
    validate(config, service);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut waiting = OnlineStats::new();
    let mut waiting_samples = SampleQuantiles::with_capacity(config.samples);
    let mut service_stats = OnlineStats::new();
    let mut delayed = 0u64;

    let mut w = 0.0f64; // waiting time of the current message
    let total = config.warmup + config.samples;
    for i in 0..total {
        let b = service.sample(&mut rng);
        let a = crate::random::sample_exponential(&mut rng, config.arrival_rate);
        if i >= config.warmup {
            waiting.push(w);
            waiting_samples.push(w);
            service_stats.push(b);
            if w > 0.0 {
                delayed += 1;
            }
        }
        // Lindley recursion: waiting time of the next arrival.
        w = (w + b - a).max(0.0);
    }

    Mg1SimResult {
        waiting,
        waiting_samples,
        service: service_stats,
        waiting_probability: delayed as f64 / config.samples as f64,
        peak_queue_length: 0, // not tracked by the recursion
    }
}

/// State of the event-driven M/G/1 simulation.
struct EventDriven<S> {
    rng: StdRng,
    arrival_rate: f64,
    service: S,
    /// Arrival timestamps of queued messages (FIFO).
    queue: std::collections::VecDeque<f64>,
    server_busy: bool,
    recorded: usize,
    warmup: usize,
    target: usize,
    waiting: OnlineStats,
    waiting_samples: SampleQuantiles,
    service_stats: OnlineStats,
    delayed: u64,
    peak_queue: usize,
    arrivals_seen: usize,
}

/// Runs the M/G/1 simulation with an explicit event calendar.
///
/// Slower than [`simulate_lindley`] but additionally tracks the
/// queue-length process; the two implementations are cross-validated in the
/// test suite.
///
/// # Panics
///
/// Panics under the same conditions as [`simulate_lindley`].
pub fn simulate_event_driven<S: ServiceSampler + 'static>(
    config: &Mg1SimConfig,
    service: S,
) -> Mg1SimResult {
    validate(config, &service);
    let mut state = EventDriven {
        rng: StdRng::seed_from_u64(config.seed),
        arrival_rate: config.arrival_rate,
        service,
        queue: std::collections::VecDeque::new(),
        server_busy: false,
        recorded: 0,
        warmup: config.warmup,
        target: config.warmup + config.samples,
        waiting: OnlineStats::new(),
        waiting_samples: SampleQuantiles::with_capacity(config.samples),
        service_stats: OnlineStats::new(),
        delayed: 0,
        peak_queue: 0,
        arrivals_seen: 0,
    };
    let mut sched: Scheduler<EventDriven<S>> = Scheduler::new();
    schedule_arrival(&mut sched, &mut state);
    while state.recorded < state.target {
        if !sched.step(&mut state) {
            break;
        }
    }
    Mg1SimResult {
        waiting: state.waiting,
        waiting_samples: state.waiting_samples,
        service: state.service_stats,
        waiting_probability: state.delayed as f64
            / (state.recorded.saturating_sub(state.warmup)).max(1) as f64,
        peak_queue_length: state.peak_queue,
    }
}

fn schedule_arrival<S: ServiceSampler + 'static>(
    sched: &mut Scheduler<EventDriven<S>>,
    state: &mut EventDriven<S>,
) {
    let gap = crate::random::sample_exponential(&mut state.rng, state.arrival_rate);
    sched.schedule_in(gap, arrival_event::<S>);
}

fn arrival_event<S: ServiceSampler + 'static>(
    sched: &mut Scheduler<EventDriven<S>>,
    state: &mut EventDriven<S>,
) {
    state.arrivals_seen += 1;
    let now = sched.now().as_secs();
    if state.server_busy {
        state.queue.push_back(now);
        state.peak_queue = state.peak_queue.max(state.queue.len());
    } else {
        state.server_busy = true;
        record_wait(state, 0.0);
        start_service(sched, state);
    }
    if state.arrivals_seen < state.target + 1 {
        schedule_arrival(sched, state);
    }
}

fn start_service<S: ServiceSampler + 'static>(
    sched: &mut Scheduler<EventDriven<S>>,
    state: &mut EventDriven<S>,
) {
    let b = state.service.sample(&mut state.rng);
    if state.recorded > state.warmup {
        state.service_stats.push(b);
    }
    sched.schedule_in(b, departure_event::<S>);
}

fn departure_event<S: ServiceSampler + 'static>(
    sched: &mut Scheduler<EventDriven<S>>,
    state: &mut EventDriven<S>,
) {
    match state.queue.pop_front() {
        None => {
            state.server_busy = false;
        }
        Some(arrived_at) => {
            let wait = sched.now().as_secs() - arrived_at;
            record_wait(state, wait);
            start_service(sched, state);
        }
    }
}

fn record_wait<S>(state: &mut EventDriven<S>, wait: f64) {
    state.recorded += 1;
    if state.recorded > state.warmup {
        state.waiting.push(wait);
        state.waiting_samples.push(wait);
        if wait > 0.0 {
            state.delayed += 1;
        }
    }
}

fn validate<S: ServiceSampler>(config: &Mg1SimConfig, service: &S) {
    assert!(config.samples > 0, "samples must be > 0");
    let rho = config.arrival_rate * service.mean();
    assert!(
        rho < 1.0,
        "unstable configuration: utilization {rho} >= 1 (λ={}, E[B]={})",
        config.arrival_rate,
        service.mean()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{DeterministicService, ExponentialService};

    #[test]
    fn mm1_lindley_matches_theory() {
        // M/M/1, ρ = 0.8, unit service: E[W] = ρ/(1-ρ) = 4.
        let cfg = Mg1SimConfig { arrival_rate: 0.8, samples: 400_000, warmup: 50_000, seed: 3 };
        let res = simulate_lindley(&cfg, &ExponentialService { mean: 1.0 });
        assert!((res.waiting.mean() - 4.0).abs() < 0.25, "E[W] = {}", res.waiting.mean());
        assert!((res.waiting_probability - 0.8).abs() < 0.02);
    }

    #[test]
    fn md1_lindley_matches_theory() {
        // M/D/1, ρ = 0.6, b = 1: E[W] = ρ b/(2(1-ρ)) = 0.75.
        let cfg = Mg1SimConfig { arrival_rate: 0.6, samples: 400_000, warmup: 50_000, seed: 5 };
        let res = simulate_lindley(&cfg, &DeterministicService { duration: 1.0 });
        assert!((res.waiting.mean() - 0.75).abs() < 0.05, "E[W] = {}", res.waiting.mean());
    }

    #[test]
    fn event_driven_agrees_with_lindley() {
        let cfg = Mg1SimConfig { arrival_rate: 0.7, samples: 150_000, warmup: 20_000, seed: 11 };
        let service = ExponentialService { mean: 1.0 };
        let a = simulate_lindley(&cfg, &service);
        let b = simulate_event_driven(&cfg, service);
        let diff = (a.waiting.mean() - b.waiting.mean()).abs();
        // Different event orderings, same distribution: means within 5%.
        let tol = 0.05 * a.waiting.mean().max(0.1);
        assert!(diff < tol * 3.0, "lindley {} vs event {}", a.waiting.mean(), b.waiting.mean());
        assert!(b.peak_queue_length > 0);
    }

    #[test]
    fn zero_load_never_waits() {
        let cfg = Mg1SimConfig { arrival_rate: 1e-6, samples: 1_000, warmup: 0, seed: 1 };
        let res = simulate_lindley(&cfg, &DeterministicService { duration: 0.001 });
        assert_eq!(res.waiting.max(), 0.0);
        assert_eq!(res.waiting_probability, 0.0);
    }

    #[test]
    #[should_panic(expected = "unstable configuration")]
    fn rejects_overload() {
        let cfg = Mg1SimConfig { arrival_rate: 2.0, samples: 10, warmup: 0, seed: 1 };
        simulate_lindley(&cfg, &DeterministicService { duration: 1.0 });
    }

    #[test]
    fn reproducible_with_same_seed() {
        let cfg = Mg1SimConfig { arrival_rate: 0.5, samples: 10_000, warmup: 100, seed: 99 };
        let a = simulate_lindley(&cfg, &ExponentialService { mean: 1.0 });
        let b = simulate_lindley(&cfg, &ExponentialService { mean: 1.0 });
        assert_eq!(a.waiting.mean(), b.waiting.mean());
        assert_eq!(a.waiting.count(), b.waiting.count());
    }
}
