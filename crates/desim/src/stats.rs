//! Simulation output statistics.
//!
//! Waiting-time samples from the M/G/1 simulator are summarized by an online
//! mean/variance accumulator ([`OnlineStats`]) and an empirical-quantile
//! estimator ([`SampleQuantiles`]); long runs can additionally use
//! batch-means confidence intervals ([`BatchMeans`]) to judge convergence.

use serde::{Deserialize, Serialize};

/// Online mean / variance / extrema accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use rjms_desim::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    sum3: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self { count: 0, mean: 0.0, m2: 0.0, sum3: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.sum3 += x * x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0)
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Second raw moment `E[X²]`.
    pub fn m2_raw(&self) -> f64 {
        self.variance() + self.mean * self.mean
    }

    /// Third raw moment `E[X³]`.
    pub fn m3_raw(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum3 / self.count as f64
        }
    }

    /// Coefficient of variation; 0 when the mean is 0.
    pub fn cvar(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Empirical quantile estimator that stores all samples.
///
/// Memory is one `f64` per sample; the experiments draw up to a few million
/// samples, which is fine. Quantiles use the nearest-rank method, matching
/// the paper's definition `Q_p[W] = min{t : P(W <= t) >= p}`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SampleQuantiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl SampleQuantiles {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an estimator with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { samples: Vec::with_capacity(capacity), sorted: true }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The nearest-rank `p`-quantile.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or no samples were recorded.
    pub fn quantile(&mut self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile requires p in [0, 1], got {p}");
        assert!(!self.samples.is_empty(), "no samples recorded");
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
        self.samples[rank - 1]
    }

    /// Empirical `P(X <= t)`.
    ///
    /// Returns 0 for an empty sample.
    pub fn cdf(&mut self, t: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        // Index of the first element > t.
        let idx = self.samples.partition_point(|&x| x <= t);
        idx as f64 / self.samples.len() as f64
    }

    /// Empirical complementary CDF `P(X > t)`.
    pub fn ccdf(&mut self, t: f64) -> f64 {
        1.0 - self.cdf(t)
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_by(|a, b| a.partial_cmp(b).expect("samples are never NaN"));
            self.sorted = true;
        }
    }
}

/// Batch-means confidence interval for steady-state simulation output.
///
/// Splits the observation stream into `batches` consecutive batches and
/// treats batch means as approximately independent normal observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchMeans {
    batch_size: usize,
    current_sum: f64,
    current_count: usize,
    batch_means: Vec<f64>,
}

impl BatchMeans {
    /// Creates an accumulator with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is 0.
    pub fn new(batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be > 0");
        Self { batch_size, current_sum: 0.0, current_count: 0, batch_means: Vec::new() }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.current_sum += x;
        self.current_count += 1;
        if self.current_count == self.batch_size {
            self.batch_means.push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_count = 0;
        }
    }

    /// Number of completed batches.
    pub fn batches(&self) -> usize {
        self.batch_means.len()
    }

    /// Mean of batch means.
    pub fn mean(&self) -> f64 {
        if self.batch_means.is_empty() {
            return 0.0;
        }
        self.batch_means.iter().sum::<f64>() / self.batch_means.len() as f64
    }

    /// Approximate 95% confidence half-width (`1.96·s/√k`); `None` with
    /// fewer than 2 completed batches.
    pub fn half_width_95(&self) -> Option<f64> {
        let k = self.batch_means.len();
        if k < 2 {
            return None;
        }
        let mean = self.mean();
        let var =
            self.batch_means.iter().map(|m| (m - mean) * (m - mean)).sum::<f64>() / (k - 1) as f64;
        Some(1.96 * (var / k as f64).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_raw_moments() {
        let mut s = OnlineStats::new();
        for x in [1.0, 2.0, 3.0] {
            s.push(x);
        }
        assert!((s.m2_raw() - 14.0 / 3.0).abs() < 1e-12);
        assert!((s.m3_raw() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.cvar(), 0.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut q = SampleQuantiles::new();
        for x in 1..=100 {
            q.push(x as f64);
        }
        assert_eq!(q.quantile(0.5), 50.0);
        assert_eq!(q.quantile(0.99), 99.0);
        assert_eq!(q.quantile(1.0), 100.0);
        assert_eq!(q.quantile(0.0), 1.0);
        assert_eq!(q.quantile(0.001), 1.0);
    }

    #[test]
    fn empirical_cdf() {
        let mut q = SampleQuantiles::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            q.push(x);
        }
        assert_eq!(q.cdf(0.5), 0.0);
        assert_eq!(q.cdf(2.0), 0.5);
        assert_eq!(q.cdf(10.0), 1.0);
        assert_eq!(q.ccdf(2.0), 0.5);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn quantile_of_empty_panics() {
        SampleQuantiles::new().quantile(0.5);
    }

    #[test]
    fn batch_means_confidence() {
        let mut b = BatchMeans::new(10);
        for i in 0..100 {
            b.push((i % 10) as f64);
        }
        assert_eq!(b.batches(), 10);
        assert!((b.mean() - 4.5).abs() < 1e-12);
        // All batch means identical → zero half-width.
        assert_eq!(b.half_width_95(), Some(0.0));
    }

    #[test]
    fn batch_means_incomplete_batch_ignored() {
        let mut b = BatchMeans::new(10);
        for _ in 0..15 {
            b.push(1.0);
        }
        assert_eq!(b.batches(), 1);
        assert_eq!(b.half_width_95(), None);
    }
}
