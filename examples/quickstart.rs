//! Quickstart: publish/subscribe with message selectors.
//!
//! Run with: `cargo run --example quickstart`

use rjms::broker::{Broker, BrokerConfig, Filter, Message, Priority};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Start a broker and create a topic (topics are configured up front,
    //    as in JMS).
    let broker = Broker::start(BrokerConfig::default());
    broker.create_topic("stocks")?;

    // 2. Subscribe with different filters.
    //    A full JMS selector (application-property filtering):
    let cheap_acme = broker
        .subscription("stocks")
        .filter(Filter::selector("symbol = 'ACME' AND price < 50.0")?)
        .open()?;
    //    A correlation-ID range filter (the paper's cheap filter type):
    let region_7_to_13 =
        broker.subscription("stocks").filter(Filter::correlation_id("[7;13]")?).open()?;
    //    No filter: receives everything in the topic.
    let firehose = broker.subscription("stocks").open()?;

    // 3. Publish a few messages.
    let publisher = broker.publisher("stocks")?;
    publisher.publish(
        Message::builder()
            .correlation_id("#9")
            .property("symbol", "ACME")
            .property("price", 42.5)
            .priority(Priority::new(7))
            .body(&b"tick"[..])
            .build(),
    )?;
    publisher.publish(
        Message::builder()
            .correlation_id("#42")
            .property("symbol", "ACME")
            .property("price", 99.0)
            .build(),
    )?;

    // 4. Consume.
    let m = cheap_acme
        .receive_timeout(Duration::from_secs(1))
        .expect("first message matches the selector");
    println!("selector subscriber got {} at price {:?}", m.id(), m.property("price").unwrap());
    assert!(cheap_acme.receive_timeout(Duration::from_millis(100)).is_none());

    let m = region_7_to_13
        .receive_timeout(Duration::from_secs(1))
        .expect("correlation id #9 lies in [7;13]");
    println!("range subscriber got correlation id {:?}", m.correlation_id().unwrap());

    let both: Vec<_> = (0..2)
        .map(|_| firehose.receive_timeout(Duration::from_secs(1)).expect("unfiltered"))
        .collect();
    println!("firehose subscriber got {} messages", both.len());

    // 5. Broker statistics: 2 received, 4 copies dispatched.
    let snapshot = broker.snapshot();
    println!(
        "broker stats: received={} dispatched={} filter_evaluations={}",
        snapshot.messages.received,
        snapshot.messages.dispatched,
        snapshot.messages.filter_evaluations
    );

    broker.shutdown();
    Ok(())
}
