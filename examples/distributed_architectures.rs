//! PSR vs SSR advisor: which distributed JMS architecture fits a given
//! deployment (paper §IV-C)?
//!
//! Run with: `cargo run --example distributed_architectures`

use rjms::model::architecture::DistributedScenario;
use rjms::model::params::CostParams;

fn advise(name: &str, publishers: u32, subscribers: u32) {
    let s = DistributedScenario {
        params: CostParams::CORRELATION_ID,
        publishers,
        subscribers,
        filters_per_subscriber: 10,
        mean_replication: 1.0,
        rho: 0.9,
    };
    let psr = s.psr_capacity();
    let ssr = s.ssr_capacity();
    println!("\n== {name}: n = {publishers} publishers, m = {subscribers} subscribers ==");
    println!(
        "  PSR system capacity : {psr:>12.1} msg/s (per server: {:.1})",
        s.psr_per_server_capacity()
    );
    println!("  SSR system capacity : {ssr:>12.1} msg/s");
    println!(
        "  network load        : PSR {:.0} vs SSR {:.0} copies/s",
        s.psr_network_load(),
        s.ssr_network_load()
    );
    println!("  crossover           : PSR wins above n ≈ {:.1}", s.crossover_publishers());
    let verdict = if s.psr_outperforms_ssr() {
        if s.psr_per_server_capacity() < 50.0 {
            "PSR — but per-server capacity is so low that waiting times will hurt"
        } else {
            "PSR"
        }
    } else {
        "SSR"
    };
    println!("  recommendation      : {verdict}");
}

fn main() {
    println!("PSR = one broker per publisher (subscribers register everywhere)");
    println!("SSR = one broker per subscriber (publishers multicast everywhere)");

    advise("sensor farm", 5_000, 20);
    advise("news fan-out", 10, 50_000);
    advise("balanced enterprise bus", 200, 200);
    advise("paper's cautionary case", 10_000, 10_000);

    println!();
    println!("conclusion (as in the paper): PSR scales with publishers, SSR with");
    println!("subscribers — neither scales in both dimensions at once.");
}
