//! The paper's measurement setup over real TCP: a broker process boundary
//! between saturated publishers, the server, and draining subscribers —
//! §III-A's five-machine testbed, shrunk onto localhost.
//!
//! The server burns the Table I costs per message; the remote publishers
//! saturate it through the network; throughput is measured on the server's
//! own counters over a trimmed window and compared against Eq. 1.
//!
//! Run with: `cargo run --release --example networked_measurement`

use rjms::broker::{BrokerConfig, CostModel, Message, ThroughputProbe};
use rjms::model::model::ServerModel;
use rjms::model::params::CostParams;
use rjms::net::client::RemoteBroker;
use rjms::net::server::BrokerServer;
use rjms::net::wire::WireFilter;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Inflate the paper's costs 20× so that TCP overhead is negligible
    // relative to the modeled CPU costs, keeping the run short.
    let scale = 20.0;
    let cost = CostModel::new(8.52e-7 * scale, 7.02e-6 * scale, 1.70e-5 * scale);
    let params = CostParams::new(cost.t_rcv, cost.t_fltr, cost.t_tx);

    let n_fltr = 30u32;
    let replication = 5u32;

    let server = BrokerServer::start(
        BrokerConfig::builder().publish_queue_capacity(64).cost_model(cost).build(),
        "127.0.0.1:0",
    )?;
    let addr = server.local_addr();
    println!("server with calibrated cost model on {addr}");
    server.broker().create_topic("bench")?;

    // Subscriber "machine": `replication` matching + rest non-matching, each
    // drained by a thread.
    let consumer = RemoteBroker::connect(addr)?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut drains = Vec::new();
    for i in 0..n_fltr {
        let pattern = if i < replication { "#0".to_owned() } else { format!("#{}", i + 1) };
        let sub = consumer.subscribe("bench", WireFilter::CorrelationId(pattern))?;
        let stop = Arc::clone(&stop);
        drains.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let _ = sub.receive_timeout(Duration::from_millis(20));
            }
        }));
    }

    // Publisher "machines": 3 connections publishing flat out.
    let mut publishers = Vec::new();
    for _ in 0..3 {
        let client = RemoteBroker::connect(addr)?;
        let stop = Arc::clone(&stop);
        publishers.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if client
                    .publish("bench", &Message::builder().correlation_id("#0").build())
                    .is_err()
                {
                    break;
                }
            }
        }));
    }

    // Warmup, then a trimmed measurement window (paper methodology).
    std::thread::sleep(Duration::from_millis(500));
    let probe = ThroughputProbe::begin(server.broker());
    std::thread::sleep(Duration::from_secs(3));
    let throughput = probe.end(server.broker());

    stop.store(true, Ordering::Relaxed);
    for h in publishers.into_iter().chain(drains) {
        let _ = h.join();
    }

    let predicted = ServerModel::new(params, n_fltr).predict_throughput(replication as f64);
    println!(
        "measured : {:.1} msg/s received, R = {:.2}",
        throughput.received_per_sec,
        throughput.replication_grade().unwrap_or(0.0)
    );
    println!("model    : {:.1} msg/s received (Eq. 1)", predicted.received_per_sec);
    let rel = (predicted.received_per_sec - throughput.received_per_sec).abs()
        / throughput.received_per_sec;
    println!("rel. err : {:.1}%  (model excludes network + native dispatch overhead)", rel * 100.0);

    server.shutdown();
    Ok(())
}
