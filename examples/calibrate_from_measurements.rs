//! Calibrating the cost model from measurements — the paper's §III-B
//! workflow against the simulated testbed, and optionally against the real
//! threaded broker.
//!
//! Run with: `cargo run --release --example calibrate_from_measurements`

use rjms::desim::testbed::{run_paper_grid, TestbedConfig};
use rjms::model::calibrate::{fit_cost_params, Observation};
use rjms::model::model::ServerModel;
use rjms::model::params::CostParams;

fn main() {
    // Ground truth: the Table I constants (what the 2006 testbed "was").
    let truth = CostParams::CORRELATION_ID;
    println!("ground truth        : {truth}");

    // 1. Run the paper's 36-point measurement grid on the simulated testbed
    //    (saturated publishers, 90 s trimmed window, 2% jitter).
    let cfg = TestbedConfig::paper_methodology(truth.t_rcv, truth.t_fltr, truth.t_tx);
    let grid = run_paper_grid(&cfg);
    println!("measured {} operating points; examples:", grid.len());
    for m in grid.iter().step_by(13) {
        println!(
            "  n_fltr = {:>3}, R = {:>4.1}: received {:>8.1} msg/s, overall {:>9.1} msg/s",
            m.n_fltr,
            m.mean_replication,
            m.received_per_sec,
            m.overall_per_sec()
        );
    }

    // 2. Fit the three cost constants by least squares.
    let observations: Vec<Observation> = grid
        .iter()
        .map(|m| Observation {
            n_fltr: m.n_fltr,
            mean_replication: m.mean_replication,
            received_per_sec: m.received_per_sec,
        })
        .collect();
    let calibration = fit_cost_params(&observations).expect("grid is well conditioned");
    println!("\nfitted              : {}", calibration.params);
    println!(
        "fit quality         : R² = {:.6}, rms residual = {:.2e} s over {} points",
        calibration.r_squared, calibration.residual_rms, calibration.observations
    );

    // 3. Use the freshly calibrated model for a prediction and compare it
    //    with a new measurement at an unseen operating point.
    let n_fltr = 64u32;
    let e_r = 8.0;
    let predicted = ServerModel::new(calibration.params, n_fltr).predict_throughput(e_r);
    let measured = rjms::desim::testbed::run_measurement(
        &cfg,
        n_fltr,
        &rjms::queueing::replication::ReplicationModel::deterministic(e_r),
    );
    println!("\nhold-out check at n_fltr = {n_fltr}, R = {e_r}:");
    println!("  model    : {:>9.1} msg/s received", predicted.received_per_sec);
    println!("  measured : {:>9.1} msg/s received", measured.received_per_sec);
    let rel =
        (predicted.received_per_sec - measured.received_per_sec).abs() / measured.received_per_sec;
    println!("  rel. err : {:.2}%", rel * 100.0);
}
