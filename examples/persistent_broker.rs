//! Write-ahead persistence and crash recovery.
//!
//! The example runs itself twice. The first run (a child process) starts a
//! persistent broker, registers a durable subscription, publishes a batch
//! and then dies with `abort()` — no clean shutdown, no checkpoint flush.
//! The second run (the parent) opens the same journal directory, replays
//! the log and re-delivers every message the crashed process accepted.
//!
//! ```sh
//! cargo run --example persistent_broker
//! ```

use rjms::broker::{Broker, BrokerConfig, FsyncPolicy, Message, PersistenceConfig};
use std::time::Duration;

const MESSAGES: u64 = 5;

fn config(dir: &std::path::Path) -> BrokerConfig {
    // fsync=Always: every accepted publish is on disk before delivery, so
    // even an abort() loses nothing. See the `ext_persistence_cost` bench
    // for what that durability costs per message.
    BrokerConfig::builder()
        .persistence(PersistenceConfig::new(dir).journal(|j| j.fsync(FsyncPolicy::Always)))
        .build()
}

/// Child: publish a batch to a durable subscriber's backlog, then crash.
fn crash_phase(dir: &std::path::Path) -> ! {
    let broker = Broker::start(config(dir));
    broker.create_topic("orders").expect("create topic");
    // Register the durable name, then disconnect: messages are retained.
    drop(broker.subscription("orders").durable("audit").open().expect("register durable"));

    let publisher = broker.publisher("orders").expect("publisher");
    for seq in 0..MESSAGES as i64 {
        publisher
            .publish(Message::builder().property("seq", seq).body(format!("order #{seq}")).build())
            .expect("publish");
    }
    // Wait until the dispatcher has journaled the batch...
    while broker.snapshot().messages.received < MESSAGES {
        std::thread::sleep(Duration::from_millis(2));
    }
    println!("[child] published {MESSAGES} messages, crashing without shutdown");
    // ...then die hard: no Drop handlers, no checkpoint flush, no fsync.
    std::process::abort();
}

fn main() {
    let dir = std::env::temp_dir().join("rjms-persistent-broker-example");
    if std::env::var_os("RJMS_EXAMPLE_CRASH").is_some() {
        crash_phase(&dir);
    }
    let _ = std::fs::remove_dir_all(&dir);

    let exe = std::env::current_exe().expect("current exe");
    let status = std::process::Command::new(exe)
        .env("RJMS_EXAMPLE_CRASH", "1")
        .status()
        .expect("spawn child");
    println!("[parent] publisher process died: {status}");

    // Restart on the same journal directory: replay rebuilds the topic, the
    // durable registration and its retained backlog.
    let broker = Broker::start(config(&dir));
    let journal = broker.snapshot().journal.expect("persistence enabled");
    println!(
        "[parent] recovery replayed {} frames ({} torn bytes truncated)",
        journal.frames_recovered, journal.torn_bytes_truncated
    );

    let sub = broker.subscription("orders").durable("audit").open().expect("reconnect");
    for seq in 0..MESSAGES as i64 {
        let m = sub.receive_timeout(Duration::from_secs(2)).expect("re-delivered message");
        assert_eq!(m.property("seq"), Some(&seq.into()));
        println!(
            "[parent] recovered seq={seq}: {:?}",
            std::str::from_utf8(m.body()).unwrap_or("<binary>")
        );
    }
    assert!(sub.receive_timeout(Duration::from_millis(100)).is_none(), "nothing extra");
    println!("[parent] all {MESSAGES} messages survived the crash");

    broker.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
