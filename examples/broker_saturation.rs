//! Saturated-broker measurement on the *real* threaded broker: reproduces
//! the paper's measurement setup in wall-clock time. The broker's dispatcher
//! burns the Table I costs per message / filter / copy; saturated publishers
//! experience push-back; measured throughput must follow
//! `1/(t_rcv + n_fltr·t_fltr + R·t_tx)` — Eq. 1 live.
//!
//! Run with: `cargo run --release --example broker_saturation`

use rjms::broker::{Broker, BrokerConfig, CostModel, Filter, Message, ThroughputProbe};
use rjms::model::calibrate::{fit_cost_params_fixed_rcv, Observation};
use rjms::model::model::ServerModel;
use rjms::model::params::CostParams;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn measure(n_fltr: u32, replication: u32, window: Duration) -> (f64, f64) {
    let cost = CostModel::CORRELATION_ID;
    let broker = Broker::start(
        BrokerConfig::builder()
            .publish_queue_capacity(64)
            .subscriber_queue_capacity(1 << 16)
            .cost_model(cost)
            .build(),
    );
    broker.create_topic("bench").unwrap();

    // `replication` matching subscribers + (n_fltr - replication) others.
    let mut subscribers = Vec::new();
    for _ in 0..replication {
        subscribers.push(
            broker
                .subscription("bench")
                .filter(Filter::correlation_id("#0").unwrap())
                .open()
                .unwrap(),
        );
    }
    for i in replication..n_fltr {
        subscribers.push(
            broker
                .subscription("bench")
                .filter(Filter::correlation_id(&format!("#{}", i + 1)).unwrap())
                .open()
                .unwrap(),
        );
    }
    // Drain matching subscribers in background so their queues never fill.
    let stop = Arc::new(AtomicBool::new(false));
    let drains: Vec<_> = subscribers
        .into_iter()
        .map(|sub| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _ = sub.receive_timeout(Duration::from_millis(20));
                }
            })
        })
        .collect();

    // Saturated publishers (the paper uses 5).
    let publishers: Vec<_> = (0..5)
        .map(|_| {
            let p = broker.publisher("bench").unwrap();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if p.publish(Message::builder().correlation_id("#0").build()).is_err() {
                        break;
                    }
                }
            })
        })
        .collect();

    // Warm up, then measure a trimmed window.
    std::thread::sleep(Duration::from_millis(300));
    let probe = ThroughputProbe::begin(&broker);
    std::thread::sleep(window);
    let throughput = probe.end(&broker);

    stop.store(true, Ordering::Relaxed);
    for h in publishers {
        let _ = h.join();
    }
    for h in drains {
        let _ = h.join();
    }
    broker.shutdown();

    (throughput.received_per_sec, throughput.replication_grade().unwrap_or(0.0))
}

fn main() {
    println!("saturated wall-clock measurement of the threaded broker");
    println!("(dispatcher burns the paper's Table I costs; 5 saturated publishers)\n");

    // Step 1 — measure a grid, exactly like the paper measured FioranoMQ.
    // n_fltr and R must vary independently or the fit cannot separate
    // t_fltr from t_tx (and the intercept t_rcv becomes meaningless).
    let grid = [
        (6u32, 1u32),
        (30, 1),
        (120, 1),
        (10, 5),
        (60, 5),
        (30, 10),
        (120, 10),
        (60, 20),
        (120, 40),
    ];
    let mut observations = Vec::new();
    let mut measured_points = Vec::new();
    for (n_fltr, r) in grid {
        let (received, obs_r) = measure(n_fltr, r, Duration::from_secs(2));
        observations.push(Observation {
            n_fltr,
            mean_replication: obs_r,
            received_per_sec: received,
        });
        measured_points.push((n_fltr, r, received, obs_r));
    }

    // Step 2 — fit this broker's own cost constants (its "Table I").
    // The intercept is fixed at the configured spin t_rcv: it is orders of
    // magnitude below the slope terms and a free intercept soaks up the
    // broker's mild non-linearity instead.
    let calibration = fit_cost_params_fixed_rcv(&observations, CostModel::CORRELATION_ID.t_rcv)
        .expect("well-conditioned grid");
    println!("configured spin costs : {}", CostParams::CORRELATION_ID);
    println!("fitted broker costs   : {}", calibration.params);
    println!(
        "fit quality           : R² = {:.4} (excess over spin = native dispatch cost)\n",
        calibration.r_squared
    );

    // Step 3 — the fitted model predicts the measurements, as in Fig. 4.
    println!(
        "{:>7} {:>4} {:>15} {:>15} {:>9}",
        "n_fltr", "R", "measured msg/s", "model msg/s", "rel err"
    );
    for (n_fltr, r, received, _) in measured_points {
        let model = ServerModel::new(calibration.params, n_fltr).predict_throughput(r as f64);
        let rel = (model.received_per_sec - received).abs() / received;
        println!(
            "{:>7} {:>4} {:>15.0} {:>15.0} {:>8.1}%",
            n_fltr,
            r,
            received,
            model.received_per_sec,
            rel * 100.0
        );
    }

    println!();
    println!("the real broker's saturated throughput follows the linear cost model");
    println!("(Eq. 1); fitting its own constants — the paper's methodology — absorbs");
    println!("the native dispatch overhead on top of the configured spin costs.");
}
