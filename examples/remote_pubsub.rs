//! Remote publish/subscribe over TCP — the broker, a publisher and a
//! subscriber as they would run on the paper's separate testbed machines
//! (here: one process, three connections on localhost).
//!
//! Run with: `cargo run --example remote_pubsub`
//!
//! For truly separate processes, use the CLI tools:
//! `rjms-server`, `rjms-pub`, `rjms-sub`.

use rjms::broker::{BrokerConfig, Message};
use rjms::net::client::RemoteBroker;
use rjms::net::server::BrokerServer;
use rjms::net::wire::WireFilter;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The "server machine".
    let server = BrokerServer::start(BrokerConfig::default(), "127.0.0.1:0")?;
    println!("broker listening on {}", server.local_addr());

    // The "subscriber machine".
    let consumer = RemoteBroker::connect(server.local_addr())?;
    consumer.create_topic("ticks")?;
    let cheap = consumer.subscribe("ticks", WireFilter::Selector("price < 100.0".into()))?;
    let all = consumer.subscribe_pattern("ticks", WireFilter::None)?;

    // The "publisher machine".
    let producer = RemoteBroker::connect(server.local_addr())?;
    for (symbol, price) in [("ACME", 42.0), ("GLOBEX", 250.0), ("INITECH", 99.9)] {
        producer.publish(
            "ticks",
            &Message::builder().property("symbol", symbol).property("price", price).build(),
        )?;
    }

    // Server-side filtering: only the two cheap ticks cross the wire to
    // `cheap`.
    for _ in 0..2 {
        let m = cheap.receive_timeout(Duration::from_secs(2)).expect("cheap tick");
        println!(
            "cheap subscriber got {:?} at {:?}",
            m.property("symbol").unwrap(),
            m.property("price").unwrap()
        );
    }
    assert!(cheap.receive_timeout(Duration::from_millis(100)).is_none());

    let mut count = 0;
    while all.receive_timeout(Duration::from_millis(200)).is_some() {
        count += 1;
    }
    println!("unfiltered subscriber got {count} ticks");

    // Broker-side statistics, exactly as in the embedded case.
    let messages = server.broker().snapshot().messages;
    println!(
        "server stats: received={} dispatched={} filter_evaluations={}",
        messages.received, messages.dispatched, messages.filter_evaluations
    );

    server.shutdown();
    Ok(())
}
