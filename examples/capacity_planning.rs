//! Capacity planning for the paper's motivating scenario: a presence
//! service where user devices publish presence updates and users subscribe
//! to their friends' updates.
//!
//! Uses the paper's performance model (Eq. 1 / Eq. 2 with the Table I
//! constants) to answer: how many users can one server support, which
//! filter type should be used, and do per-consumer filters help or hurt?
//!
//! Run with: `cargo run --example capacity_planning`

use rjms::model::capacity::{break_even_match_probability, filter_benefit, server_capacity};
use rjms::model::params::{CostParams, FilterType};
use rjms::model::report::plan_report;
use rjms::model::scenario::ApplicationScenario;

fn main() {
    println!("== Presence-service capacity study ==\n");

    // Each user's device publishes ~1 update per minute; each user has one
    // subscription (filter) matching their friends' updates — say 0.5% of
    // all messages.
    let updates_per_user_per_sec = 1.0 / 60.0;
    let match_probability = 0.005;

    println!(
        "{:>8}  {:>12}  {:>12}  {:>10}  {:>9}",
        "users", "load msg/s", "capacity", "util", "feasible"
    );
    for users in [100u32, 1_000, 5_000, 10_000, 20_000, 50_000] {
        let scenario = ApplicationScenario::builder(FilterType::CorrelationId)
            .subscribers(users)
            .filters_per_subscriber(1)
            .match_probability(match_probability)
            .offered_load(users as f64 * updates_per_user_per_sec)
            .build();
        println!(
            "{:>8}  {:>12.1}  {:>12.1}  {:>9.1}%  {:>9}",
            users,
            scenario.offered_load(),
            scenario.capacity(0.9),
            scenario.utilization() * 100.0,
            if scenario.is_feasible() { "yes" } else { "NO" }
        );
    }

    println!("\n== Which filter type? ==");
    for (label, ft) in [
        ("correlation-ID", FilterType::CorrelationId),
        ("application-property", FilterType::ApplicationProperty),
    ] {
        let s = ApplicationScenario::builder(ft)
            .subscribers(10_000)
            .filters_per_subscriber(1)
            .match_probability(match_probability)
            .offered_load(10_000.0 / 60.0)
            .build();
        println!(
            "  {label:<22} E[B] = {:.3} ms, capacity = {:.1} msg/s, utilization = {:.1}%",
            s.mean_service_time() * 1e3,
            s.capacity(0.9),
            s.utilization() * 100.0
        );
    }

    println!("\n== Do filters pay for themselves? (Eq. 3) ==");
    let corr = CostParams::CORRELATION_ID;
    let b = filter_benefit(&corr, 1, match_probability);
    println!(
        "  one corr-ID filter at p_match = {:.1}%: cost {:.2} µs < saving {:.2} µs → {}",
        match_probability * 100.0,
        b.filter_cost * 1e6,
        b.transmission_saving * 1e6,
        if b.beneficial { "install the filter" } else { "skip the filter" }
    );
    for n in 1..=3u32 {
        match break_even_match_probability(&corr, n) {
            Some(p) => {
                println!("  {n} filter(s) per user pay off while p_match < {:.1}%", p * 100.0)
            }
            None => println!("  {n} filter(s) per user can never increase server capacity"),
        }
    }

    println!("\n== Raw capacity lookup (Eq. 2, rho = 0.9, corr-ID) ==");
    for (n_fltr, e_r) in [(100u32, 1.0f64), (1_000, 1.0), (10_000, 1.0), (10_000, 50.0)] {
        println!(
            "  n_fltr = {n_fltr:>6}, E[R] = {e_r:>4}: {:>9.1} msg/s",
            server_capacity(&corr, n_fltr, e_r, 0.9)
        );
    }

    // The one-call summary for the 10k-user deployment.
    println!();
    let flagship = ApplicationScenario::builder(FilterType::CorrelationId)
        .subscribers(10_000)
        .filters_per_subscriber(1)
        .match_probability(match_probability)
        .offered_load(10_000.0 * updates_per_user_per_sec)
        .build();
    print!("{}", plan_report(&flagship));
}
