//! Durable subscriptions and topic wildcards: the broker features beyond
//! the paper's measured non-durable mode.
//!
//! Run with: `cargo run --example durable_subscriptions`

use rjms::broker::{Broker, BrokerConfig, Filter, Message};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let broker = Broker::start(BrokerConfig::default());
    broker.create_topic("billing.invoices")?;
    broker.create_topic("billing.payments")?;

    // A wildcard subscriber sees the whole `billing.` hierarchy — including
    // topics created later.
    let auditor = broker.subscription("billing.>").open()?;

    // A durable subscriber survives disconnects: while offline, matching
    // messages are retained by the broker (the paper's "durable mode").
    let worker = broker
        .subscription("billing.invoices")
        .durable("invoice-processor")
        .filter(Filter::selector("amount > 0")?)
        .open()?;
    println!("durable consumer connected as {:?}", worker.durable_name().unwrap());

    let invoices = broker.publisher("billing.invoices")?;
    invoices.publish(Message::builder().property("amount", 100i64).build())?;
    let m = worker.receive_timeout(Duration::from_secs(1)).expect("live delivery");
    println!("worker processed invoice of {:?}", m.property("amount").unwrap());

    // The worker goes offline...
    drop(worker);
    invoices.publish(Message::builder().property("amount", 250i64).build())?;
    invoices.publish(Message::builder().property("amount", 375i64).build())?;
    std::thread::sleep(Duration::from_millis(100));
    println!(
        "while offline, broker retained {} invoice(s)",
        broker.retained_count("billing.invoices", "invoice-processor")
    );

    // ... and reconnects: the backlog is delivered first, in order.
    let worker = broker
        .subscription("billing.invoices")
        .durable("invoice-processor")
        .filter(Filter::selector("amount > 0")?)
        .open()?;
    while let Some(m) = worker.receive_timeout(Duration::from_millis(200)) {
        println!("worker caught up on invoice of {:?}", m.property("amount").unwrap());
    }

    // The auditor meanwhile saw everything in the hierarchy, including a
    // topic created after it subscribed.
    broker.create_topic("billing.refunds")?;
    broker
        .publisher("billing.refunds")?
        .publish(Message::builder().property("amount", -50i64).build())?;
    let mut audited = 0;
    while auditor.receive_timeout(Duration::from_millis(200)).is_some() {
        audited += 1;
    }
    println!("auditor observed {audited} messages across billing.*");

    drop(worker);
    broker.unsubscribe_durable("billing.invoices", "invoice-processor")?;
    broker.shutdown();
    Ok(())
}
