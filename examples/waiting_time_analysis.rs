//! Waiting-time analysis for an application scenario, cross-checked against
//! discrete-event simulation — the paper's §IV-B pipeline end to end.
//!
//! Run with: `cargo run --release --example waiting_time_analysis`

use rjms::desim::mg1sim::{simulate_lindley, Mg1SimConfig};
use rjms::desim::random::ReplicationService;
use rjms::model::model::ServerModel;
use rjms::model::params::CostParams;
use rjms::model::waiting::WaitingTimeAnalysis;
use rjms::queueing::replication::ReplicationModel;

fn main() {
    // Scenario: 200 correlation-ID filters installed, each matching 5% of
    // messages independently (binomial replication grade).
    let params = CostParams::CORRELATION_ID;
    let n_fltr = 200u32;
    let replication = ReplicationModel::binomial(n_fltr as f64, 0.05);
    let model = ServerModel::new(params, n_fltr);

    println!("scenario: {n_fltr} corr-ID filters, p_match = 5% → E[R] = 10\n");
    println!(
        "{:>5}  {:>10} {:>10} {:>11} {:>11} {:>11} {:>12}",
        "rho", "E[B] ms", "E[W] ms", "Q99 ms", "Q99.99 ms", "sim E[W]", "E[queue]"
    );

    for rho in [0.3, 0.5, 0.7, 0.9, 0.95] {
        let analysis =
            WaitingTimeAnalysis::for_model(&model, replication, rho).expect("stable utilization");
        let report = analysis.report();

        // Validate the analytic mean against a quick M/G/1 simulation.
        let service = ReplicationService {
            deterministic: params.deterministic_part(n_fltr),
            t_tx: params.t_tx,
            replication,
        };
        let sim = simulate_lindley(
            &Mg1SimConfig {
                arrival_rate: report.arrival_rate,
                samples: 100_000,
                warmup: 10_000,
                seed: 2024,
            },
            &service,
        );

        println!(
            "{:>5.2}  {:>10.3} {:>10.3} {:>11.3} {:>11.3} {:>11.3} {:>12.1}",
            rho,
            report.mean_service_time * 1e3,
            report.mean_waiting_time * 1e3,
            report.q99 * 1e3,
            report.q9999 * 1e3,
            sim.waiting.mean() * 1e3,
            report.mean_queue_length,
        );
    }

    println!();
    println!("observations (mirroring the paper):");
    println!("  - the waiting time explodes only as rho → 1;");
    println!("  - at rho = 0.9 the 99.99% quantile stays below 50·E[B];");
    println!("  - the analytic means match the simulated M/G/1 queue;");
    println!("  - E[queue] estimates the buffer the server must provision.");
}
